#!/usr/bin/env python3
"""Data-integrity demo: the Fig. 7b pipeline on real cells with real ECC.

Executes the paper's modified refresh bit-for-bit on a cell-exact block:
program with the conventional coding, invalidate some lower pages,
classify every wordline (Table I), voltage-adjust the IDA cases, inject a
disturb error, and show the ECC-protected pipeline recovers it — the
"free from any data loss" claim of Sec. III-B/III-C, executed.

Run:  python examples/data_integrity_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core import classify_validity, conventional_tlc
from repro.ecc import DecodeStatus, EccEngine
from repro.flash.chip import CellChip


def main() -> None:
    rng = np.random.default_rng(42)
    chip = CellChip(conventional_tlc(), num_blocks=1, wordlines_per_block=6,
                    cells_per_wordline=64)
    engine = EccEngine(codec_data_bits=64)

    # Program the block and remember what was written.
    written = {}
    for wl in range(6):
        pages = chip.random_pages(rng)
        chip.program_wordline(0, wl, pages)
        for bit in range(3):
            written[(wl, bit)] = pages[bit]
    print("programmed 6 wordlines (18 pages) with the conventional coding")

    # Updates elsewhere invalidate some lower pages.
    validity = {
        0: (True, True, True),    # case 1
        1: (False, True, True),   # case 2
        2: (True, False, True),   # case 3
        3: (False, False, True),  # case 4
        4: (True, True, False),   # case 5
        5: (False, False, False), # case 8
    }

    # Fig. 7b steps 1-2: read everything valid and hold the ECC-encoded
    # copies in "DRAM".
    dram = {key: engine.encode(page) for key, page in written.items()}

    # Steps 3-4: classify and adjust.
    adjusted = []
    for wl, flags in validity.items():
        decision = classify_validity(flags)
        print(f"wordline {wl}: case {decision.case} -> {decision.action.value}"
              + (f", keep bits {decision.adjust_bits}" if decision.adjust_bits else ""))
        if decision.applies_ida:
            chip.adjust_wordline(0, wl, decision.adjust_bits)
            adjusted.append((wl, decision.adjust_bits))

    # Step 5-6: verify every kept page bit-for-bit.
    clean = 0
    for wl, bits in adjusted:
        for bit in bits:
            if np.array_equal(chip.read_page(0, wl, bit), written[(wl, bit)]):
                clean += 1
    print(f"\nafter adjustment: {clean} kept pages read back bit-identical")

    # Now inject a disturb error into a kept page's stored codeword and
    # show the pipeline recovers (step 7-8 of Fig. 7b).
    target = (1, 2)  # wordline 1 MSB, kept through a case-2 adjustment
    corrupted = engine.codec.inject_errors(dram[target], [13])
    result = engine.decode(corrupted)
    assert result.status is DecodeStatus.CORRECTED
    assert np.array_equal(result.data, written[target])
    print("injected a single-bit disturb into wordline 1's MSB codeword: "
          f"ECC decode -> {result.status.value}, data recovered exactly")

    # Sense counts after the pipeline.
    print("\nsense counts after the modified refresh:")
    for wl in range(4):
        decision = classify_validity(validity[wl])
        for bit in decision.adjust_bits:
            name = ("LSB", "CSB", "MSB")[bit]
            print(f"  wordline {wl} {name}: {chip.page_senses(0, wl, bit)} senses")


if __name__ == "__main__":
    main()
