#!/usr/bin/env python3
"""Quickstart: the IDA coding in five minutes.

Walks the paper's core idea bottom-up:

1. the conventional TLC coding and its asymmetric read costs (Fig. 2);
2. what invalidating the LSB makes possible — the IDA merge (Fig. 5);
3. the same effect executed on real (simulated) cells, bit-for-bit;
4. a small end-to-end SSD simulation: baseline vs IDA-Coding-E20.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import IdaTransform, ReadLatencyModel, conventional_tlc
from repro.experiments import (
    RunScale,
    baseline,
    ida,
    manifest_for_run,
    run_workload,
    write_run_manifest,
)
from repro.flash.cell import WordlineCells
from repro.workloads import workload


def step1_conventional_coding() -> None:
    print("=" * 70)
    print("1. The conventional TLC coding (paper Fig. 2)")
    print("=" * 70)
    coding = conventional_tlc()
    print(coding.describe())
    model = ReadLatencyModel(tr_base_us=50.0, dtr_us=50.0)
    for bit, name in enumerate(("LSB", "CSB", "MSB")):
        print(
            f"{name} read: {coding.senses(bit)} senses "
            f"-> {model.page_latency_us(coding, bit):.0f} us"
        )
    print()


def step2_ida_merge() -> None:
    print("=" * 70)
    print("2. Invalidate the LSB and merge duplicate states (paper Fig. 5)")
    print("=" * 70)
    transform = IdaTransform(conventional_tlc(), valid_bits=(1, 2))
    print(transform.describe())
    model = ReadLatencyModel()
    print(
        f"CSB read is now {model.ida_latency_us(transform, 1):.0f} us, "
        f"MSB read {model.ida_latency_us(transform, 2):.0f} us."
    )
    print()


def step3_real_cells() -> None:
    print("=" * 70)
    print("3. The same thing on explicit voltage states, bit-for-bit")
    print("=" * 70)
    rng = np.random.default_rng(7)
    cells = WordlineCells(conventional_tlc(), size=16)
    pages = [rng.integers(0, 2, 16, dtype=np.int8) for _ in range(3)]
    cells.program(pages)
    print("programmed states:", cells.states.tolist())
    cells.apply_ida((1, 2))
    print("after adjustment: ", cells.states.tolist(), "(only states S5-S8 remain)")
    assert np.array_equal(cells.read_page(1), pages[1])
    assert np.array_equal(cells.read_page(2), pages[2])
    print("CSB and MSB pages read back identically; senses:",
          cells.senses(1), "and", cells.senses(2))
    print()


def step4_end_to_end() -> None:
    print("=" * 70)
    print("4. End to end: baseline vs IDA-Coding-E20 on usr_1 (quick scale)")
    print("=" * 70)
    scale = RunScale.quick()
    spec = workload("usr_1")
    base = run_workload(baseline(), spec, scale)
    fast = run_workload(ida(0.2), spec, scale)
    norm = fast.mean_read_response_us / base.mean_read_response_us
    print(f"baseline mean read response: {base.mean_read_response_us:8.1f} us")
    print(f"IDA-E20  mean read response: {fast.mean_read_response_us:8.1f} us")
    print(f"normalized: {norm:.3f} ({(1 - norm) * 100:.1f}% improvement; "
          "paper reports 28% at full scale)")
    mix = fast.metrics.read_mix
    print(f"{mix.ida_fast_reads} of {mix.total} page reads were served from "
          "IDA-reprogrammed wordlines")
    # Every run can leave a structured artifact behind: config hash, seed,
    # metrics summary — the input to regression tracking and plots.
    out = Path(tempfile.mkdtemp()) / "quickstart_run.json"
    manifest = manifest_for_run(fast)
    write_run_manifest(manifest, out)
    print(f"run manifest written to {out} (config {manifest['config_hash']})")


def main() -> None:
    step1_conventional_coding()
    step2_ida_merge()
    step3_real_cells()
    step4_end_to_end()


if __name__ == "__main__":
    main()
