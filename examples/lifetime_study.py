#!/usr/bin/env python3
"""Lifetime study: wear, RBER, read retry, and IDA (paper Sec. V-F).

Part 1 traces the device physics: how RBER grows with program/erase wear
and retention age, and what that does to LDPC decode failures and the
expected extra sensing passes per read.

Part 2 runs the Fig. 11 experiment at quick scale: baseline vs IDA-E20
early in the device lifetime (no retries) and late (frequent retries),
showing the benefit *grows* late in life — every retry repeats the page's
memory-access time, so cheap IDA senses compound.

Run:  python examples/lifetime_study.py
"""

from __future__ import annotations

from repro.ecc import LdpcModel
from repro.experiments import RunScale, baseline, ida, run_workload
from repro.experiments.reporting import ascii_table
from repro.flash.errors import RberModel, ReadRetryModel
from repro.workloads import workload


def part1_physics() -> None:
    print("=" * 70)
    print("1. RBER growth and read retries over the device lifetime")
    print("=" * 70)
    rber_model = RberModel()
    ldpc = LdpcModel()
    rows = []
    for pe, retention in [(0, 1), (500, 7), (1500, 30), (2500, 60), (3000, 90)]:
        rber = rber_model.rber(pe, retention)
        retry = ReadRetryModel.for_rber(rber)
        rows.append(
            [
                pe,
                retention,
                f"{rber:.2e}",
                f"{ldpc.hard_failure_probability(rber):.3f}",
                f"{retry.expected_retries():.2f}",
            ]
        )
    print(
        ascii_table(
            ["P/E cycles", "retention (d)", "RBER", "P(hard decode fails)",
             "E[extra passes]"],
            rows,
        )
    )
    print()


def part2_fig11() -> None:
    print("=" * 70)
    print("2. Fig. 11: IDA benefit by lifetime phase (usr_1, quick scale)")
    print("=" * 70)
    scale = RunScale.quick()
    spec = workload("usr_1")
    rows = []
    for phase, fail_prob in (("early", 0.0), ("late", 0.45)):
        base = run_workload(baseline().with_retry(fail_prob), spec, scale)
        fast = run_workload(ida(0.2).with_retry(fail_prob), spec, scale)
        norm = fast.mean_read_response_us / base.mean_read_response_us
        rows.append(
            [
                phase,
                f"{base.mean_read_response_us:.0f}",
                f"{fast.mean_read_response_us:.0f}",
                f"{norm:.3f}",
                f"{fast.metrics.read_retries}",
            ]
        )
    print(
        ascii_table(
            ["phase", "baseline RT (us)", "IDA-E20 RT (us)", "normalized",
             "retries (IDA run)"],
            rows,
        )
    )
    print("\nPaper: 28% improvement early grows to 42.3% late in the lifetime.")


def main() -> None:
    part1_physics()
    part2_fig11()


if __name__ == "__main__":
    main()
