#!/usr/bin/env python3
"""Coding explorer: every coding x every invalidation scenario.

Prints, for the conventional TLC/MLC/QLC codings and the vendor-alternate
2-3-2 TLC coding, the per-bit sense counts before and after the IDA merge
for each possible surviving-bit suffix — i.e. the full generalisation of
the paper's Figs. 5 and 6 plus Table I's reprogrammed modes.

Run:  python examples/coding_explorer.py
"""

from __future__ import annotations

from repro.core import (
    IdaTransform,
    conventional_mlc,
    conventional_qlc,
    conventional_tlc,
    tlc_232,
)
from repro.experiments.reporting import ascii_table


def explore(coding) -> None:
    print("=" * 70)
    print(coding.describe())
    print()
    headers = ["surviving bits", "merged states"] + [
        f"bit{b} senses" for b in range(coding.bits)
    ]
    rows = []
    rows.append(
        ["(all valid)", str(coding.num_states)]
        + [str(coding.senses(b)) for b in range(coding.bits)]
    )
    for start in range(1, coding.bits):
        valid = tuple(range(start, coding.bits))
        transform = IdaTransform(coding, valid)
        cells = [
            f"bits {start}..{coding.bits - 1}",
            str(len(transform.merged_states)),
        ]
        for b in range(coding.bits):
            if b in valid:
                cells.append(f"{coding.senses(b)} -> {transform.senses(b)}")
            else:
                cells.append("invalid")
        rows.append(cells)
    print(ascii_table(headers, rows, title=f"IDA merges for {coding.name!r}"))
    print()


def main() -> None:
    for coding in (
        conventional_tlc(),
        tlc_232(),
        conventional_mlc(),
        conventional_qlc(),
    ):
        explore(coding)
    print(
        "Note the paper's headline cases: TLC CSB 2->1 and MSB 4->2 (Fig. 5),\n"
        "TLC MSB-only 4->1 (Table I cases 3-4), and QLC 8->2 / 4->1 (Fig. 6)."
    )


if __name__ == "__main__":
    main()
