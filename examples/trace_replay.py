#!/usr/bin/env python3
"""Replay an MSR-Cambridge-format trace through the simulator.

Demonstrates the trace path a downstream user would take with the *real*
MSR traces [25]: parse the CSV, characterise it (the Table III columns),
and replay it against the baseline and IDA-E20 systems.  Ships with a
built-in round trip — it writes one of the synthetic clones out in MSR
CSV format first — so it runs self-contained; point it at a real file to
use actual traces.

Run:  python examples/trace_replay.py [path/to/trace.csv]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments import RunScale, baseline, build_run_manifest, ida, write_run_manifest
from repro.experiments.runner import build_simulator
from repro.obs import JsonlSink, Tracer
from repro.sim.scheduler import HostRequest
from repro.workloads import (
    generate_workload,
    read_msr_csv,
    workload,
    write_msr_csv,
)


def characterise(trace) -> None:
    print(f"trace {trace.name!r}: {len(trace)} requests")
    print(f"  read ratio:        {trace.read_ratio():.1%}")
    print(f"  mean read size:    {trace.mean_read_size_kb():.1f} KB")
    print(f"  read-data ratio:   {trace.read_data_ratio():.1%}")
    print(f"  duration:          {trace.duration_us() / 1e6:.1f} s")
    print(f"  footprint:         {trace.footprint_pages(8192)} pages")


def replay(trace, system, scale: RunScale, trace_path: Path | None = None):
    """Replay ``trace`` against ``system``; returns (metrics, manifest)."""
    tracer = Tracer(JsonlSink(trace_path)) if trace_path is not None else None
    sim = build_simulator(
        system, scale, duration_us=max(trace.duration_us(), 1.0), tracer=tracer
    )
    page_size = sim.geometry.page_size_bytes
    footprint = trace.footprint_pages(page_size)
    period = sim.ftl.refresh_policy.period_us
    sim.preload(range(footprint + 1), -1.4 * period, -0.4 * period)
    requests = [
        HostRequest(i, io.time_us, io.is_read, io.lpns(page_size), io.size_bytes)
        for i, io in enumerate(trace)
    ]
    metrics = sim.run_requests(requests)
    if tracer is not None:
        tracer.close()
    manifest = build_run_manifest(
        {"trace": trace.name, "system": system, "scale": scale},
        metrics,
        utilisation=sim.utilisation_report(),
        queue_wait=sim.queue_wait_report(),
        trace_path=trace_path,
    )
    return metrics, manifest


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        # Self-contained demo: clone proj_3 and write it in MSR format.
        spec = workload("proj_3").scaled(1000, 6000)
        generated = generate_workload(spec)
        path = Path(tempfile.mkdtemp()) / "proj_3.csv"
        write_msr_csv(generated.trace, path)
        print(f"(no trace given; wrote a synthetic clone to {path})\n")

    trace = read_msr_csv(path)
    characterise(trace)
    print()

    scale = RunScale.quick()
    out_dir = Path(tempfile.mkdtemp())
    base_metrics, base_manifest = replay(trace, baseline(), scale)
    ida_metrics, ida_manifest = replay(
        trace, ida(0.2), scale, trace_path=out_dir / "ida_replay.jsonl"
    )
    base_rt = base_metrics.read_response.mean_us
    ida_rt = ida_metrics.read_response.mean_us
    print(f"baseline mean read response: {base_rt:.1f} us")
    print(f"IDA-E20  mean read response: {ida_rt:.1f} us")
    print(f"normalized: {ida_rt / base_rt:.3f}")

    # The replay doubles as an artifact-format smoke test: both runs
    # leave manifests, and the IDA run leaves an inspectable trace.
    for name, manifest in (("baseline", base_manifest), ("ida-e20", ida_manifest)):
        out = write_run_manifest(manifest, out_dir / f"{name}.json")
        print(f"{name} manifest: {out} (config {manifest['config_hash']})")
    print(f"inspect the traced run with: ida-repro inspect {out_dir / 'ida_replay.jsonl'}")


if __name__ == "__main__":
    main()
