#!/usr/bin/env python3
"""Refresh trade-off study: error rate vs benefit on one workload.

Reproduces the Fig. 8 story for a single workload at quick scale: as the
voltage-adjustment disturb rate E rises, more kept pages must be written
back to the new block, the refresh gets more expensive and fewer pages
stay IDA-coded — so the read-response benefit decays and eventually
vanishes (the paper's E80 point).  Also prints the per-block Table IV
accounting for each E.

Run:  python examples/refresh_tradeoff.py [workload] (default: usr_1)
"""

from __future__ import annotations

import sys

from repro.experiments import RunScale, baseline, ida, run_workload
from repro.experiments.reporting import ascii_table
from repro.workloads import workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "usr_1"
    scale = RunScale.quick()
    spec = workload(name)
    print(f"workload {name}, quick scale "
          f"({scale.num_requests} requests, {scale.footprint_pages} pages)")

    base = run_workload(baseline(), spec, scale)
    print(f"baseline mean read response: {base.mean_read_response_us:.1f} us\n")

    rows = []
    for error_rate in (0.0, 0.1, 0.2, 0.4, 0.5, 0.8):
        result = run_workload(ida(error_rate), spec, scale)
        reports = [r for r in result.refresh_reports if r.n_adjusted_wordlines]
        count = max(1, len(reports))
        rows.append(
            [
                f"E{int(error_rate * 100)}",
                f"{result.mean_read_response_us / base.mean_read_response_us:.3f}",
                f"{sum(r.n_valid for r in reports) / count:.0f}",
                f"{sum(r.extra_reads for r in reports) / count:.0f}",
                f"{sum(r.extra_writes for r in reports) / count:.0f}",
                f"{result.metrics.read_mix.ida_fast_reads}",
            ]
        )
    print(
        ascii_table(
            [
                "system",
                "norm. read RT",
                "valid/blk",
                "extra reads/blk",
                "extra writes/blk",
                "IDA-served reads",
            ],
            rows,
            title="Error-rate sweep (paper Fig. 8 + Table IV)",
        )
    )
    print(
        "\nExpected shape: normalized RT rises toward 1.0 with E; extra\n"
        "writes track E x extra reads; IDA-served reads shrink as more\n"
        "disturbed pages are evicted to conventional blocks."
    )


if __name__ == "__main__":
    main()
