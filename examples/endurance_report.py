#!/usr/bin/env python3
"""Endurance report: the paper's "no lifetime trade-off" claims, measured.

Sec. III-B/III-C argue that IDA (i) leaves erase counts untouched — the
voltage adjustment reprograms without erasing — and (ii) slightly
*reduces* total writes, because kept pages are adjusted in place instead
of being rewritten into new blocks.  This example runs baseline vs
IDA-E20 on one workload and prints the wear ledger: erase statistics,
write amplification, and the remaining-lifetime estimate.

Run:  python examples/endurance_report.py [workload] (default: src2_0)
"""

from __future__ import annotations

import sys

from repro.experiments import RunScale, baseline, ida
from repro.experiments.reporting import ascii_table
from repro.experiments.runner import (
    _to_host_requests,
    build_simulator,
)
from repro.ftl.wear import collect_wear, write_amplification
from repro.workloads import generate_workload, workload


def run_and_report(system, spec, scale):
    generated = generate_workload(spec)
    sim = build_simulator(system, scale, spec.duration_us)
    period = sim.ftl.refresh_policy.period_us
    sim.preload(generated.fill_lpns, -1.4 * period, -0.4 * period)
    sim.age(generated.aging_lpns, -0.35 * period)
    sim.run_requests(_to_host_requests(generated, sim.geometry.page_size_bytes))
    wear = collect_wear(sim.ftl.table)
    return {
        "system": system.name,
        "erases": wear.total_erases,
        "max erases/block": wear.max_erases,
        "wear spread": wear.wear_spread,
        "WAF": f"{write_amplification(sim.ftl.counters):.2f}",
        "life remaining": f"{wear.remaining_lifetime_fraction():.1%}",
        "refresh page writes": sim.ftl.counters.refresh_page_moves
        + sim.ftl.counters.refresh_corrupted_pages,
    }


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "src2_0"
    scale = RunScale.quick()
    spec = workload(name).scaled(scale.num_requests, scale.footprint_pages)
    rows = [run_and_report(system, spec, scale) for system in (baseline(), ida(0.2))]
    headers = list(rows[0])
    print(
        ascii_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=f"Endurance ledger, {name} (quick scale)",
        )
    )
    base_writes, ida_writes = (r["refresh page writes"] for r in rows)
    print(
        f"\nIDA refresh wrote {base_writes - ida_writes} fewer pages than the "
        "baseline refresh\n(kept pages are voltage-adjusted in place), at "
        "equal-or-lower erase counts —\nthe paper's endurance argument."
    )


if __name__ == "__main__":
    main()
