"""Fig. 10 — device throughput under IDA-E20 (closed loop).

Paper: +10% average throughput; every workload gains.
"""

from __future__ import annotations

from repro.experiments import format_fig10, run_fig10

from .conftest import bench_workloads, run_once


def test_fig10_throughput(benchmark, macro_scale):
    result = run_once(benchmark, run_fig10, macro_scale, bench_workloads())
    print()
    print(format_fig10(result))
    assert result.average() > 1.0
