"""Fig. 4 — read-mix and invalid-lower-page exposure (the motivation).

Paper: reads spread evenly over LSB/CSB/MSB; ~18% of CSB reads and ~30%
of MSB reads find their lower pages invalid.
"""

from __future__ import annotations

from repro.experiments import format_fig4, run_fig4

from .conftest import bench_workloads, run_once


def test_fig4_read_mix(benchmark, macro_scale):
    result = run_once(
        benchmark, run_fig4, macro_scale, bench_workloads(), include_extra=False
    )
    print()
    print(format_fig4(result))
    for row in result.main:
        # Page types are roughly evenly hit.
        assert 0.15 < row.lsb_share < 0.55
        assert 0.15 < row.msb_share < 0.55
        # The IDA opportunity exists everywhere.
        assert row.msb_with_invalid_lower > 0.05
