"""Table IV — voltage-adjustment overhead per refreshed block.

Paper (IDA-E20, 192-page blocks): ~113 valid pages per target block,
~58 extra reads (the reprogrammed-page integrity check), ~11 extra
writes (the 20% disturbed pages written back).
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table4, run_table4

from .conftest import bench_workloads, run_once


def test_table4_overheads(benchmark, macro_scale):
    result = run_once(benchmark, run_table4, macro_scale, bench_workloads())
    print()
    print(format_table4(result))
    for row in result.rows:
        assert row.refreshes > 0
        assert 60 < row.avg_valid_pages < 192
        # Extra reads ~ half the valid pages (the kept CSB/MSB pages).
        assert 0.25 * row.avg_valid_pages < row.avg_extra_reads < 0.8 * row.avg_valid_pages
        # Extra writes = E20 x extra reads.
        assert row.avg_extra_writes == pytest.approx(
            0.2 * row.avg_extra_reads, rel=0.35
        )
