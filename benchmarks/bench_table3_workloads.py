"""Table III — workload characteristics of the synthetic clones.

Each clone's measured read ratio / read size / read-data ratio must land
on its paper row (they are generator inputs); the invalid-MSB exposure is
an emergent property and must land in the right ballpark.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table3, run_table3

from .conftest import bench_workloads, run_once


def test_table3_characteristics(benchmark, macro_scale):
    result = run_once(benchmark, run_table3, macro_scale, bench_workloads())
    print()
    print(format_table3(result))
    for row in result.rows:
        assert row.read_ratio_pct == pytest.approx(row.paper[0], abs=3.0)
        assert row.read_size_kb == pytest.approx(row.paper[1], rel=0.25)
        # Exposure: right order of magnitude (it is emergent, not dialed).
        assert row.msb_invalid_pct > 0.25 * row.paper[3]
