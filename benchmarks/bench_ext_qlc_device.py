"""Extension — the QLC evaluation the paper leaves as future work.

Paper's prediction (Sec. V-G): IDA helps QLC more than TLC, and devices
with milder read variation (the 2-3-2 TLC coding) less.  Expected
ordering of average improvements: qlc > tlc > tlc232 > 0-ish.
"""

from __future__ import annotations

from repro.experiments import format_qlc, run_qlc_extension

from .conftest import bench_workloads, run_once


def test_ext_qlc_ordering(benchmark, macro_scale):
    result = run_once(
        benchmark,
        run_qlc_extension,
        macro_scale,
        bench_workloads(),
        devices=("tlc", "qlc", "tlc232"),
    )
    print()
    print(format_qlc(result))
    assert result.average("qlc") > result.average("tlc") - 1.0
    assert result.average("qlc") > result.average("tlc232")
