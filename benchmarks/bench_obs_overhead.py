#!/usr/bin/env python3
"""Microbenchmark: cost of the observability hooks on uninstrumented runs.

The tracer's null fast path must keep untraced simulations within noise
(the acceptance bar is <= 3% overhead).  This script times the same
(system, workload, seed) run three ways:

* ``untraced``  — ``tracer=None`` (the default every experiment uses);
* ``null``      — an explicit :class:`NullTracer` (same fast path, proves
  the guard itself is free);
* ``traced``    — a real tracer into an in-memory sink, for context.

Run:  python benchmarks/bench_obs_overhead.py [--scale quick] [--reps 5]
                                              [--check] [--threshold 3.0]

With ``--check`` the process exits non-zero when the null-tracer median
exceeds the untraced median by more than ``--threshold`` percent.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time

from repro.experiments import RunScale, ida, run_workload
from repro.obs import MemorySink, NullTracer, Tracer
from repro.workloads import workload


def time_run(scale: RunScale, tracer, reps: int) -> list[float]:
    spec = workload("usr_1")
    times = []
    for _ in range(reps):
        started = time.perf_counter()
        run_workload(ida(0.2), spec, scale, seed=11, tracer=tracer)
        times.append(time.perf_counter() - started)
    return times


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"], default="quick")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--check", action="store_true",
                        help="fail if null-tracer overhead exceeds the threshold")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max tolerated overhead in percent (default: 3)")
    args = parser.parse_args(argv)

    scale = getattr(RunScale, args.scale)()
    # Warm-up: first run pays numpy / allocator warm caches.
    time_run(scale, None, 1)

    untraced = statistics.median(time_run(scale, None, args.reps))
    null = statistics.median(time_run(scale, NullTracer(), args.reps))
    traced = statistics.median(time_run(scale, Tracer(MemorySink()), args.reps))

    overhead_null = (null / untraced - 1.0) * 100.0
    overhead_traced = (traced / untraced - 1.0) * 100.0
    print(f"scale={args.scale} reps={args.reps} (median wall seconds)")
    print(f"  untraced    : {untraced:.3f} s")
    print(f"  null tracer : {null:.3f} s  ({overhead_null:+.1f}%)")
    print(f"  full tracer : {traced:.3f} s  ({overhead_traced:+.1f}%)")

    if args.check and overhead_null > args.threshold:
        print(f"FAIL: null-tracer overhead {overhead_null:.1f}% "
              f"> {args.threshold:.1f}%")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
