#!/usr/bin/env python3
"""Microbenchmark: cost of the observability hooks on uninstrumented runs.

The tracer's null fast path must keep untraced simulations within noise
(the acceptance bar is <= 3% overhead), and the profiler's stage-boundary
hooks must be equally free when no profiler is attached (<= 5%).  This
script times the same (system, workload, seed) run six ways, in two
sections:

tracer section
  * ``untraced``  — ``tracer=None`` (the default every experiment uses);
  * ``null``      — an explicit :class:`NullTracer` (same fast path,
    proves the guard itself is free);
  * ``traced``    — a real tracer into an in-memory sink, for context.

profiler section
  * ``disabled``  — ``profiler=None`` (every pre-existing call site);
  * ``aggregate`` — ``SimProfiler(keep_events=False)``, the worker-pool
    configuration (attribution only, no trace slices);
  * ``full``      — ``SimProfiler()`` retaining Chrome-trace slices.

telemetry section
  * ``disabled``  — ``health=None`` (the default): the FTL / ECC / host
    instrument points all hit their ``is None`` guards and nothing else;
  * ``enabled``   — a full :class:`HealthMonitor` with metrics registry
    and SLO engine attached (sampled on the auto interval collector).

Run:  python benchmarks/bench_obs_overhead.py [--scale quick] [--reps 5]
                                              [--check] [--threshold 3.0]
                                              [--profiler-threshold 5.0]
                                              [--record PATH]
                                              [--baseline PATH]

With ``--check`` the process exits non-zero when the null-tracer or
health-disabled best-of-reps time exceeds the untraced one by more
than ``--threshold`` percent, or the profiler-disabled time exceeds it
by more than ``--profiler-threshold`` percent.  ``--record`` /
``--baseline`` mirror ``bench_pipeline.py``: record times on a
reference tree (committed as ``benchmarks/BENCH_obs.json`` and, with
the health variants, ``benchmarks/BENCH_health.json``), then
``--check --baseline`` on a changed tree fails if any variant slowed
beyond the profiler threshold.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import RunScale, ida, run_workload
from repro.obs import (
    HealthMonitor,
    MemorySink,
    MetricsRegistry,
    NullTracer,
    SimProfiler,
    SloEngine,
    Tracer,
)
from repro.workloads import workload


def _health_monitor() -> HealthMonitor:
    return HealthMonitor(registry=MetricsRegistry(), slo=SloEngine())


#: variant name -> (tracer, profiler, health) factories; rebuilt per rep.
VARIANTS = {
    "untraced": (None, None, None),
    "null_tracer": (NullTracer, None, None),
    "full_tracer": (lambda: Tracer(MemorySink()), None, None),
    "profiler_disabled": (None, None, None),
    "profiler_aggregate": (None, lambda: SimProfiler(keep_events=False), None),
    "profiler_full": (None, lambda: SimProfiler(), None),
    "health_disabled": (None, None, None),
    "health_enabled": (None, None, _health_monitor),
}


def time_variants(scale: RunScale, reps: int) -> dict[str, float]:
    """Best (minimum) wall seconds per variant, interleaved round-robin.

    Variants are interleaved (one rep of each, then the next round)
    rather than timed in sequential blocks, so slow machine drift —
    thermal throttling, a noisy CI neighbour — lands on every variant
    equally instead of inflating whichever happened to run last.  The
    best-of-reps time is reported rather than the median: scheduler and
    allocator noise only ever adds time, so the minimum is the tightest
    (and by far the most repeatable) estimate of each variant's true
    cost, which a percent-level overhead gate needs.
    """
    spec = workload("usr_1")
    times: dict[str, list[float]] = {name: [] for name in VARIANTS}
    for _ in range(reps):
        for name, factories in VARIANTS.items():
            tracer_factory, profiler_factory, health_factory = factories
            tracer = tracer_factory() if tracer_factory else None
            profiler = profiler_factory() if profiler_factory else None
            health = health_factory() if health_factory else None
            started = time.perf_counter()
            run_workload(ida(0.2), spec, scale, seed=11, tracer=tracer,
                         profiler=profiler, health=health)
            times[name].append(time.perf_counter() - started)
    return {name: min(seq) for name, seq in times.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"], default="quick")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--check", action="store_true",
                        help="fail if passive-hook overhead exceeds the thresholds")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max tolerated null-tracer overhead in percent (default: 3)")
    parser.add_argument("--profiler-threshold", type=float, default=5.0,
                        help="max tolerated profiler-disabled overhead and "
                             "baseline slowdown in percent (default: 5)")
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="write the measured best-of-reps times to PATH (JSON)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline JSON from --record on the reference tree")
    args = parser.parse_args(argv)

    scale = getattr(RunScale, args.scale)()
    # Warm-up: first run pays numpy / allocator warm caches.
    time_variants(scale, 1)

    best = time_variants(scale, args.reps)
    untraced = best["untraced"]

    def pct(value: float) -> float:
        return (value / untraced - 1.0) * 100.0

    report = {"scale": args.scale, "reps": args.reps, "variants": best}
    labels = {
        "untraced": "untraced",
        "null_tracer": "null tracer",
        "full_tracer": "full tracer",
        "profiler_disabled": "no profiler",
        "profiler_aggregate": "prof (aggr)",
        "profiler_full": "prof (full)",
        "health_disabled": "no health ",
        "health_enabled": "health mon",
    }
    print(f"scale={args.scale} reps={args.reps} (best-of-reps wall seconds)")
    print(f"  untraced    : {untraced:.3f} s")
    for name, value in best.items():
        if name == "untraced":
            continue
        print(f"  {labels[name]} : {value:.3f} s  ({pct(value):+.1f}%)")

    if args.record:
        path = Path(args.record)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"recorded -> {path}")

    failed = False
    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        base_variants = base.get("variants", {})
        for name, current in report["variants"].items():
            reference = base_variants.get(name)
            if reference is None:
                print(f"  {name}: no baseline entry, skipped")
                continue
            delta = (current / reference - 1.0) * 100.0
            verdict = "OK" if delta <= args.profiler_threshold else "FAIL"
            print(f"  {name:<18}: {delta:+.1f}% vs baseline "
                  f"({reference:.3f} s)  [{verdict}]")
            failed = failed or delta > args.profiler_threshold

    if args.check:
        null_overhead = pct(best["null_tracer"])
        disabled_overhead = pct(best["profiler_disabled"])
        health_overhead = pct(best["health_disabled"])
        if null_overhead > args.threshold:
            print(f"FAIL: null-tracer overhead {null_overhead:.1f}% "
                  f"> {args.threshold:.1f}%")
            failed = True
        if disabled_overhead > args.profiler_threshold:
            print(f"FAIL: profiler-disabled overhead {disabled_overhead:.1f}% "
                  f"> {args.profiler_threshold:.1f}%")
            failed = True
        if health_overhead > args.threshold:
            print(f"FAIL: health-disabled overhead {health_overhead:.1f}% "
                  f"> {args.threshold:.1f}%")
            failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
