"""Fig. 5 — the TLC IDA merge (LSB invalidated).

Micro-benchmarks the merge computation and the cell-level voltage
adjustment, and prints the paper's move table (S1->S8 ... S4->S5, CSB
2->1 senses at V6, MSB 4->2 at V5/V7).
"""

from __future__ import annotations

import numpy as np

from repro.core import IdaTransform, conventional_tlc, merge_states
from repro.flash.cell import WordlineCells


def test_fig5_merge(benchmark):
    coding = conventional_tlc()
    move = benchmark(merge_states, coding, (1, 2))
    assert move == (7, 6, 5, 4, 4, 5, 6, 7)
    transform = IdaTransform(coding, (1, 2))
    print()
    print(transform.describe())
    assert transform.senses(1) == 1
    assert transform.senses(2) == 2


def test_fig5_cell_adjustment(benchmark):
    coding = conventional_tlc()
    rng = np.random.default_rng(0)
    pages = [rng.integers(0, 2, 4096, dtype=np.int8) for _ in range(3)]

    def adjust_one_wordline():
        cells = WordlineCells(coding, 4096)
        cells.program(pages)
        cells.apply_ida((1, 2))
        return cells.senses(2)

    assert benchmark(adjust_one_wordline) == 2
