"""Fig. 11 — lifetime phases: IDA under read-retry.

Paper: 28% improvement early in the SSD lifetime grows to 42.3% late,
when LDPC read-retries multiply every page's memory-access time.
"""

from __future__ import annotations

from repro.experiments import format_fig11, run_fig11

from .conftest import bench_workloads, run_once


def test_fig11_lifetime_phases(benchmark, macro_scale):
    result = run_once(benchmark, run_fig11, macro_scale, bench_workloads())
    print()
    print(format_fig11(result))
    early = result.average("early")
    late = result.average("late")
    assert early < 1.0
    # Retries amplify the benefit (allow a little scheduling noise).
    assert late <= early + 0.02
