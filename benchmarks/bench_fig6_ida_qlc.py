"""Fig. 6 — the QLC IDA merge (two lower bits invalidated).

Paper: Bit 4 drops from 8 senses to 2, Bit 3 from 4 to 1 after merging
the sixteen states down to four.
"""

from __future__ import annotations

from repro.core import IdaTransform, conventional_qlc


def test_fig6_qlc_merge(benchmark):
    coding = conventional_qlc()
    transform = benchmark(IdaTransform, coding, (2, 3))
    print()
    print(transform.describe())
    assert coding.senses(3) == 8 and transform.senses(3) == 2
    assert coding.senses(2) == 4 and transform.senses(2) == 1
    assert len(transform.merged_states) == 4
