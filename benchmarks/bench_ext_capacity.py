"""Extension — the Sec. III-C capacity / GC-cost claims.

Paper: IDA grows the in-use block census by only 2-4% of the device, and
a write-intensive follow-up phase sees GC invocations / erases rise by at
most ~3% — IDA blocks are reclaimed promptly.
"""

from __future__ import annotations

from repro.experiments.capacity_analysis import format_capacity, run_capacity_analysis

from .conftest import run_once

WORKLOADS = ["proj_1", "usr_1", "src2_0"]


def test_ext_capacity(benchmark, macro_scale):
    results = run_once(
        benchmark, run_capacity_analysis, macro_scale, WORKLOADS
    )
    print()
    print(format_capacity(results))
    for result in results:
        # Bounded census growth (scaled device => looser bound than the
        # paper's 2-4%, but the same order).
        assert result.in_use_increase_fraction() < 0.25
        # The write phase must not blow up erase counts.
        assert result.erase_increase_fraction() < 0.30
