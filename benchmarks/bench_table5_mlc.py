"""Table V — IDA-E20 on an MLC device.

Paper: 14.9% average read response-time improvement on an MLC SSD
(65 / 115 us LSB / MSB reads) — significant, but lower than TLC's 28%
because MLC has only one slow page type and a narrower latency spread.

In this reproduction the MLC effect lands near zero (0-2%, inside
run-to-run noise — see EXPERIMENTS.md): with a single 50 us-slower page
type, the direct savings are a few microseconds per read against a
queue-dominated response.  The robust reproduced claim is the paper's
*ordering* — MLC benefits far less than TLC (and QLC more; see
``bench_ext_qlc_device``) — so this bench asserts MLC << TLC rather
than a sign that noise can flip.
"""

from __future__ import annotations

from repro.experiments import run_table5, format_table5

from .conftest import bench_workloads, run_once


def test_table5_mlc(benchmark, macro_scale):
    result = run_once(
        benchmark, run_table5, macro_scale, bench_workloads(), device="mlc"
    )
    print()
    print(format_table5(result))
    # No regression: the MLC device is never meaningfully hurt...
    assert result.average() > -2.5
    # ...and the improvement stays well below TLC's (paper: 14.9 vs 28).
    assert result.average() < 6.0
