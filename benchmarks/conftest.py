"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact.  Macro benches
replay simulations; to keep ``pytest benchmarks/ --benchmark-only``
under ~15 minutes they default to a representative five-workload subset
and a medium scale.  Set ``REPRO_BENCH_FULL=1`` for the paper's full
eleven workloads (or use the ``ida-repro`` CLI, which exposes every
artifact at any scale).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import RunScale

#: Representative subset spanning the paper's best (proj_1, usr_1),
#: median (hm_1, src2_0) and small-request (proj_3) behaviours.
SUBSET = ["proj_1", "proj_3", "hm_1", "src2_0", "usr_1"]


def bench_workloads() -> list[str] | None:
    """Workload list for macro benches (None = all eleven)."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return None
    return list(SUBSET)


@pytest.fixture(scope="session")
def macro_scale() -> RunScale:
    """Simulation scale for the macro (full-stack) benches."""
    from dataclasses import replace

    scale = RunScale.bench()
    if os.environ.get("REPRO_BENCH_FULL"):
        return scale
    return replace(scale, num_requests=3000)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive artifact regeneration exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
