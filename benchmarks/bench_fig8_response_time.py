"""Fig. 8 — the headline result: normalized read response vs error rate.

Paper: IDA-E20 improves mean read response by 28% on average (E0: 31%,
E50: 20.2%, E80: <7%); benefit decreases monotonically with E.
"""

from __future__ import annotations

from repro.experiments import format_fig8, run_fig8

from .conftest import bench_workloads, run_once


def test_fig8_error_rate_series(benchmark, macro_scale):
    result = run_once(
        benchmark,
        run_fig8,
        macro_scale,
        bench_workloads(),
        error_rates=(0.0, 0.2, 0.5, 0.8),
    )
    print()
    print(format_fig8(result))
    e0 = result.average("ida-e0")
    e20 = result.average("ida-e20")
    e50 = result.average("ida-e50")
    e80 = result.average("ida-e80")
    # IDA wins at the paper's operating point...
    assert e20 < 1.0
    # ...the ideal system is the upper bound...
    assert e0 <= e20 + 0.02
    # ...and the benefit decays toward nothing as E grows.
    assert e0 < e80
    assert e50 <= e80 + 0.03
