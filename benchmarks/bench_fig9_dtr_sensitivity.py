"""Fig. 9 — device sensitivity: benefit vs the read-latency step dtR.

Paper: IDA-E20 improves read response by 14% at dtR=30us, 28% at 50us,
49% at 70us — monotone in dtR.
"""

from __future__ import annotations

from repro.experiments import format_fig9, run_fig9

from .conftest import bench_workloads, run_once


def test_fig9_dtr_series(benchmark, macro_scale):
    result = run_once(
        benchmark,
        run_fig9,
        macro_scale,
        bench_workloads(),
        dtr_values=(30.0, 50.0, 70.0),
    )
    print()
    print(format_fig9(result))
    assert result.average(70.0) <= result.average(30.0) + 0.02
    assert result.average(50.0) < 1.0
