"""Extension — ablations of the design choices DESIGN.md calls out.

* Adjustment cost: the paper charges a full program per wordline but
  argues ~0.5x is achievable; the cheaper charge should not hurt.
* Refresh frequency: more cycles per trace = more conversion
  opportunities (and more refresh overhead) — the bench reports the
  trade-off curve.
* Allocation strategy: the IDA benefit should survive a different
  stripe order (it is a coding effect, not an allocation artifact).
"""

from __future__ import annotations

from repro.experiments import (
    format_ablation,
    run_adjust_cost_ablation,
    run_allocation_ablation,
    run_refresh_frequency_ablation,
)

from .conftest import run_once

WORKLOADS = ["proj_1", "usr_1", "src2_0"]


def test_ablation_adjust_cost(benchmark, macro_scale):
    result = run_once(
        benchmark, run_adjust_cost_ablation, macro_scale, WORKLOADS,
        fractions=(0.5, 1.0),
    )
    print()
    print(format_ablation(result))
    # The cheaper (proportional) charge should be at least as good.
    assert result.average("adjust=0.5x") >= result.average("adjust=1x") - 2.0


def test_ablation_refresh_frequency(benchmark, macro_scale):
    result = run_once(
        benchmark, run_refresh_frequency_ablation, macro_scale, WORKLOADS,
        cycles=(1.5, 3.0),
    )
    print()
    print(format_ablation(result))
    assert result.improvement_pct  # report-only: the curve is the artifact


def test_ablation_allocation(benchmark, macro_scale):
    result = run_once(
        benchmark, run_allocation_ablation, macro_scale, WORKLOADS,
        strategies=("cwdp", "pdwc"),
    )
    print()
    print(format_ablation(result))
    # IDA helps under both stripe orders.
    assert result.average("alloc=cwdp") > -2.0
    assert result.average("alloc=pdwc") > -2.0
