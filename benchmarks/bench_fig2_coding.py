"""Fig. 2 — the conventional TLC coding and its read structure.

Micro-benchmarks the coding layer's hot paths (boundary computation and
sense-rule reads) and prints the Fig. 2 state table so the artifact is
visible in the bench log.
"""

from __future__ import annotations

from repro.core import conventional_tlc, standard_coding


def test_fig2_state_table(benchmark):
    coding = conventional_tlc()

    def build_and_query():
        c = standard_coding(3)
        return [c.senses(bit) for bit in range(3)]

    senses = benchmark(build_and_query)
    assert senses == [1, 2, 4]
    print()
    print(coding.describe())


def test_fig2_sense_rule_read(benchmark):
    coding = conventional_tlc()

    def read_all():
        total = 0
        for state in range(8):
            for bit in range(3):
                total += coding.read_bit_by_sensing(state, bit)
        return total

    assert benchmark(read_all) == sum(sum(s) for s in coding.states)
