#!/usr/bin/env python3
"""Benchmark: sequential vs process-pool sweep execution + snapshot cache.

Section 1 (always runs) — pool speedup: the same batch of
:class:`~repro.experiments.parallel.RunUnit`\\ s through
``execute_units`` inline (``jobs=1``) and on a worker pool, always
asserting exact payload parity, and reports the wall-clock speedup.
With ``--check`` the script fails (exit 1) when the speedup falls below
``--min-speedup`` — unless the machine has fewer cores than ``--jobs``,
in which case the assertion is skipped (exit 0): a pool cannot beat
inline execution without the cores to back it.

Section 2 (opt-in) — warm-state snapshot cache effectiveness: a
fig9-style sweep (one workload, one seed, baseline/IDA variants across
dtR values — every unit shares a single warm-state cache key) runs on
the pool with the snapshot cache off and then on, asserting payload
parity between the two.  The cell is deliberately preload-dominated
(large footprint, few timed requests, ``refresh_cycles`` small enough
that no refresh scan lands inside the timed window) so the cache's win
— skipping the per-unit device warm-up — is what the clock measures.
``--check-snapshots`` gates the speedup at ``--min-snapshot-speedup``
(default 2x); ``--snapshot-report PATH`` dumps the hit/miss/fallback
counts and timings as JSON for CI artifact upload.

``--append-trajectory PATH`` appends one entry (pool speedup and, when
measured, the snapshot-cache numbers) to a JSON-array history file
shared with ``bench_pipeline.py``.  Entries are tagged with
``bench``/``scale`` and compared only against predecessors from the
same bench at the same scale — cross-scale numbers are incomparable.

Run:  python benchmarks/bench_parallel_sweep.py [--scale quick]
          [--units 8] [--jobs 4] [--check] [--min-speedup 1.5]
          [--snapshots] [--check-snapshots] [--min-snapshot-speedup 2.0]
          [--snapshot-report PATH] [--append-trajectory PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

from repro.experiments import RunUnit, RunScale, baseline, execute_units, ida
from repro.experiments.parallel import warm_key_for_unit

WORKLOADS = ["proj_1", "proj_3", "hm_1", "src2_0", "usr_1"]

# The shared-warm-state cell: quick-scale topology, a large preload
# footprint, and a timed window short enough (refresh_cycles < 1/16,
# the refresh daemon's scan granularity) that no refresh scan fires
# inside it.  All the footprint-proportional work lands in the warm-up,
# which is exactly what the snapshot cache elides.
SNAPSHOT_WORKLOAD = "usr_1"
SNAPSHOT_DTR_VALUES = (20.0, 40.0, 60.0)


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_units(count: int, scale: RunScale, seed: int) -> list[RunUnit]:
    units = []
    for index in range(count):
        system = baseline() if index % 2 == 0 else ida(0.2)
        units.append(
            RunUnit(system, WORKLOADS[index % len(WORKLOADS)], scale, seed=seed)
        )
    return units


def snapshot_scale(requests: int, footprint: int) -> RunScale:
    return dataclasses.replace(
        RunScale.quick(),
        num_requests=requests,
        footprint_pages=footprint,
        blocks_per_plane=max(4, footprint // 500),
        refresh_cycles=0.05,
    )


def build_shared_units(count: int, scale: RunScale, seed: int) -> list[RunUnit]:
    """Fig9-style sweep sharing one warm-state key.

    One workload, one seed, one scale; what varies is the system's dtR
    timing, error rate and scheduling policy — all excluded from the
    warm key, so every unit preloads the same device state.
    """
    variants = []
    for dtr in SNAPSHOT_DTR_VALUES:
        variants.append(baseline().with_dtr(dtr))
        variants.append(ida(0.0).with_dtr(dtr))
        variants.append(ida(0.2).with_dtr(dtr))
        variants.append(ida(0.2).with_dtr(dtr).with_policy("fcfs"))
    units = [
        RunUnit(variants[i % len(variants)], SNAPSHOT_WORKLOAD, scale, seed=seed)
        for i in range(count)
    ]
    keys = {warm_key_for_unit(unit) for unit in units}
    assert len(keys) == 1, (
        f"shared-warm-state sweep split across {len(keys)} snapshot keys"
    )
    return units


def _assert_parity(units, left, right, label: str) -> None:
    for unit, a, b in zip(units, left, right):
        assert a.read_response == b.read_response, (
            f"{label} parity violation on {unit.describe()}"
        )
        assert a.write_response == b.write_response, (
            f"{label} parity violation on {unit.describe()}"
        )


def run_snapshot_bench(args) -> dict:
    """Time the shared-warm-state sweep with the cache off, then on."""
    scale = snapshot_scale(args.snapshot_requests, args.snapshot_footprint)
    units = build_shared_units(args.snapshot_units, scale, args.seed)
    print(f"snapshot cell: units={len(units)} jobs={args.jobs} "
          f"requests={scale.num_requests} footprint={scale.footprint_pages} "
          f"refresh_cycles={scale.refresh_cycles}")

    started = time.perf_counter()
    cold = execute_units(units, jobs=args.jobs)
    cold_s = time.perf_counter() - started

    stats: dict = {}
    started = time.perf_counter()
    warm = execute_units(
        units, jobs=args.jobs, snapshots=True, snapshot_stats=stats
    )
    warm_s = time.perf_counter() - started

    _assert_parity(units, cold, warm, "snapshot")
    print(f"  parity    : OK ({len(units)} payloads identical, cache on/off)")

    speedup = cold_s / warm_s if warm_s > 0 else 0.0
    print(f"  cache off : {cold_s:.2f} s")
    print(f"  cache on  : {warm_s:.2f} s  (speedup {speedup:.2f}x)")
    print(f"  cache     : {stats.get('hits', 0)} hit(s), "
          f"{stats.get('misses', 0)} miss(es), "
          f"{stats.get('fallbacks', 0)} fallback(s)")
    return {
        "units": len(units),
        "jobs": args.jobs,
        "requests": scale.num_requests,
        "footprint_pages": scale.footprint_pages,
        "refresh_cycles": scale.refresh_cycles,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "hits": stats.get("hits", 0),
        "misses": stats.get("misses", 0),
        "fallbacks": stats.get("fallbacks", 0),
    }


def _git_rev() -> str | None:
    """Current short revision, or None outside a git checkout."""
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def append_trajectory(path: Path, entry: dict) -> None:
    """Append ``entry`` and report deltas vs the last comparable entry.

    Comparable means: same ``bench`` and same ``scale``.  The history
    file is shared with ``bench_pipeline.py``, whose entries carry
    different metrics at different scales — mixing them would compare
    apples to oranges, so anything else is skipped.
    """
    history: list = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            print(f"warning: {path} is not valid JSON, starting fresh")
        if not isinstance(history, list):
            print(f"warning: {path} is not a JSON array, starting fresh")
            history = []
    predecessor = next(
        (e for e in reversed(history)
         if e.get("bench") == entry["bench"] and e.get("scale") == entry["scale"]),
        None,
    )
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=1) + "\n")
    print(f"trajectory -> {path} ({len(history)} entries)")
    if predecessor is None:
        print(f"  no same-scale predecessor (bench={entry['bench']}, "
              f"scale={entry['scale']}) — nothing to compare")
        return
    for field in ("pool_speedup", "snapshot_speedup"):
        now, then = entry.get(field), predecessor.get(field)
        if now is None or not then:
            continue
        delta = (now / then - 1.0) * 100.0
        print(f"  {field}: {now:.2f}x vs {then:.2f}x "
              f"at {predecessor.get('git_rev')} ({delta:+.1f}%)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"],
                        default="quick")
    parser.add_argument("--units", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--check", action="store_true",
                        help="fail below --min-speedup (skipped when the "
                             "machine has fewer cores than --jobs)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    parser.add_argument("--snapshots", action="store_true",
                        help="also measure the warm-state snapshot cache on "
                             "a shared-warm-state sweep")
    parser.add_argument("--check-snapshots", action="store_true",
                        help="fail when the snapshot-cache speedup falls "
                             "below --min-snapshot-speedup (implies "
                             "--snapshots)")
    parser.add_argument("--min-snapshot-speedup", type=float, default=2.0)
    parser.add_argument("--snapshot-units", type=int, default=12)
    parser.add_argument("--snapshot-requests", type=int, default=100)
    parser.add_argument("--snapshot-footprint", type=int, default=48_000)
    parser.add_argument("--snapshot-report", metavar="PATH", default=None,
                        help="write snapshot cache timings + hit/miss "
                             "counts to PATH (JSON; implies --snapshots)")
    parser.add_argument("--append-trajectory", metavar="PATH", default=None,
                        help="append this run's speedups to a JSON-array "
                             "history file (created if missing); compared "
                             "against same-bench same-scale predecessors "
                             "only")
    args = parser.parse_args(argv)
    want_snapshots = bool(
        args.snapshots or args.check_snapshots or args.snapshot_report
    )

    scale = getattr(RunScale, args.scale)()
    units = build_units(args.units, scale, args.seed)
    cores = available_cores()
    print(f"scale={args.scale} units={args.units} jobs={args.jobs} "
          f"cores={cores}")

    started = time.perf_counter()
    sequential = execute_units(units, jobs=1)
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = execute_units(units, jobs=args.jobs)
    parallel_s = time.perf_counter() - started

    _assert_parity(units, sequential, parallel, "pool")
    print(f"  parity    : OK ({len(units)} payloads identical)")

    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    print(f"  sequential: {sequential_s:.2f} s")
    print(f"  parallel  : {parallel_s:.2f} s  (speedup {speedup:.2f}x)")

    snapshot = run_snapshot_bench(args) if want_snapshots else None
    if snapshot is not None and args.snapshot_report:
        report_path = Path(args.snapshot_report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(snapshot, indent=1) + "\n")
        print(f"snapshot report -> {report_path}")

    if args.append_trajectory:
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": _git_rev(),
            "bench": "parallel_sweep",
            "scale": args.scale,
            "units": args.units,
            "jobs": args.jobs,
            "pool_speedup": speedup,
        }
        if snapshot is not None:
            entry["snapshot_speedup"] = snapshot["speedup"]
            entry["snapshot"] = snapshot
        append_trajectory(Path(args.append_trajectory), entry)

    failed = False
    if args.check:
        if cores < args.jobs:
            print(f"  check skipped: {cores} core(s) < {args.jobs} jobs")
        elif speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x < {args.min_speedup:.2f}x")
            failed = True
        else:
            print(f"  check OK: speedup >= {args.min_speedup:.2f}x")

    if args.check_snapshots and snapshot is not None:
        # No core-count skip here: both sides of the comparison run on
        # the same pool, so the machine's parallelism cancels out.
        if snapshot["speedup"] < args.min_snapshot_speedup:
            print(f"FAIL: snapshot-cache speedup {snapshot['speedup']:.2f}x "
                  f"< {args.min_snapshot_speedup:.2f}x")
            failed = True
        elif snapshot["fallbacks"] > 0:
            print(f"FAIL: {snapshot['fallbacks']} snapshot fallback(s) — "
                  f"cache silently degraded to cold preloads")
            failed = True
        else:
            print(f"  snapshot check OK: speedup >= "
                  f"{args.min_snapshot_speedup:.2f}x, no fallbacks")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
