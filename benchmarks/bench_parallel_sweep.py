#!/usr/bin/env python3
"""Benchmark: sequential vs process-pool sweep execution.

Runs the same batch of :class:`~repro.experiments.parallel.RunUnit`\\ s
through ``execute_units`` inline (``jobs=1``) and on a worker pool,
always asserting exact payload parity, and reports the wall-clock
speedup.  With ``--check`` the script fails (exit 1) when the speedup
falls below ``--min-speedup`` — unless the machine has fewer cores than
``--jobs``, in which case the assertion is skipped (exit 0): a pool
cannot beat inline execution without the cores to back it.

Run:  python benchmarks/bench_parallel_sweep.py [--scale quick]
          [--units 8] [--jobs 4] [--check] [--min-speedup 1.5]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import RunUnit, RunScale, baseline, execute_units, ida

WORKLOADS = ["proj_1", "proj_3", "hm_1", "src2_0", "usr_1"]


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_units(count: int, scale: RunScale, seed: int) -> list[RunUnit]:
    units = []
    for index in range(count):
        system = baseline() if index % 2 == 0 else ida(0.2)
        units.append(
            RunUnit(system, WORKLOADS[index % len(WORKLOADS)], scale, seed=seed)
        )
    return units


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"],
                        default="quick")
    parser.add_argument("--units", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--check", action="store_true",
                        help="fail below --min-speedup (skipped when the "
                             "machine has fewer cores than --jobs)")
    parser.add_argument("--min-speedup", type=float, default=1.5)
    args = parser.parse_args(argv)

    scale = getattr(RunScale, args.scale)()
    units = build_units(args.units, scale, args.seed)
    cores = available_cores()
    print(f"scale={args.scale} units={args.units} jobs={args.jobs} "
          f"cores={cores}")

    started = time.perf_counter()
    sequential = execute_units(units, jobs=1)
    sequential_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = execute_units(units, jobs=args.jobs)
    parallel_s = time.perf_counter() - started

    for unit, seq, par in zip(units, sequential, parallel):
        assert seq.read_response == par.read_response, (
            f"parity violation on {unit.describe()}"
        )
        assert seq.write_response == par.write_response, (
            f"parity violation on {unit.describe()}"
        )
    print(f"  parity    : OK ({len(units)} payloads identical)")

    speedup = sequential_s / parallel_s if parallel_s > 0 else 0.0
    print(f"  sequential: {sequential_s:.2f} s")
    print(f"  parallel  : {parallel_s:.2f} s  (speedup {speedup:.2f}x)")

    if args.check:
        if cores < args.jobs:
            print(f"  check skipped: {cores} core(s) < {args.jobs} jobs")
            return 0
        if speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup:.2f}x < {args.min_speedup:.2f}x")
            return 1
        print(f"  check OK: speedup >= {args.min_speedup:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
