#!/usr/bin/env python3
"""Microbenchmark: simulated-ops throughput of the staged op pipeline.

The op-pipeline refactor (closure webs -> :class:`OpPipeline` stage
machine) must not slow simulation down: the acceptance gate is "no worse
than 5% below the pre-refactor baseline".  Because absolute wall time is
machine-dependent, the comparison runs in two steps:

* on the *pre-refactor* tree:   ``bench_pipeline.py --record base.json``
* on the *post-refactor* tree:  ``bench_pipeline.py --check --baseline base.json``

which fails (exit 1) when the new median wall time exceeds the recorded
one by more than ``--threshold`` percent.  Without ``--baseline`` the
script just reports wall seconds and simulated physical ops per second
(``SimMetrics.phys_ops_dispatched`` over median wall time) for the
read-first and fcfs policies.

Run:  python benchmarks/bench_pipeline.py [--scale quick] [--reps 5]
                                          [--record PATH]
                                          [--check --baseline PATH]
                                          [--append-trajectory PATH]

``--append-trajectory`` appends one compact entry (ops/sec per policy,
engine events/sec, batch-backend cohort ops/sec, scale, timestamp, git
revision when available) to a JSON-array file — CI points it at
``benchmarks/BENCH_trajectory.json`` so the throughput history
accumulates one point per run and regressions show up as a trend, not
just a single-gate pass/fail.  Entries from different scales are
*incomparable* (a tiny run does a fraction of a quick run's work), so
the trend comparison only ever looks at the latest predecessor with the
same ``scale`` — entries at other scales, or from other benchmarks
sharing the file (``bench_parallel_sweep.py`` tags its entries with a
different ``bench``), are skipped.  ``--check-trajectory`` turns the
comparison into a gate: exit 1 when read-first ops/sec falls more than
``--trajectory-threshold`` percent below the same-scale predecessor.

``--check-backends`` gates the batch execution backend: the vectorized
cohort read-path math must beat the scalar-equivalent loop by >= 3x on
plain numpy, >= 5x when numba kernels are active (the jitted gate is
skipped, loudly, when numba is unavailable), and stream admission must
not be slower than per-event heap admission.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import RunScale, ida, run_workload
from repro.flash.errors import ReadRetryModel
from repro.flash.timing import TimingSpec
from repro.sim import kernels
from repro.sim.accel import accel_active, leading_failure_counter
from repro.sim.engine import SimEngine
from repro.workloads import workload


def time_engine(events: int, reps: int) -> list[float]:
    """Raw event-loop throughput: self-rescheduling tick chains.

    Exercises exactly the ``SimEngine.run`` hot loop (pop, clock advance,
    callback dispatch, re-push) with trivial callbacks, so changes to the
    loop show up undiluted by FTL work.
    """
    chains = 64
    per_chain = events // chains
    times: list[float] = []
    for _ in range(reps):
        engine = SimEngine()

        def make_tick(period: float):
            remaining = per_chain

            def tick() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining > 0:
                    engine.after(period, tick)

            return tick

        for chain in range(chains):
            engine.after(0.5 + chain * 0.01, make_tick(1.0 + chain * 0.01))
        started = time.perf_counter()
        engine.run()
        times.append(time.perf_counter() - started)
        assert engine.processed == chains * per_chain
    return times


def time_runs(
    scale: RunScale, policy: str, reps: int, backend: str = "reference"
) -> tuple[list[float], int]:
    """Median-able wall times plus the per-run dispatched-op count."""
    spec = workload("usr_1")
    system = ida(0.2).with_policy(policy)
    times: list[float] = []
    ops = 0
    for _ in range(reps):
        started = time.perf_counter()
        result = run_workload(system, spec, scale, seed=11, backend=backend)
        times.append(time.perf_counter() - started)
        ops = result.metrics.phys_ops_dispatched
    return times, ops


def time_backend_cohort(reps: int, cohort: int = 50_000) -> dict:
    """Vectorized cohort read-path math vs its scalar-equivalent loop.

    The batch backend's win comes from computing sense latency, retry
    counts and service time for a same-timestamp cohort as array ops;
    the reference path makes three scalar model calls per read.  Both
    sides run the *same* seeded RNG stream and must agree exactly —
    the timing comparison doubles as a parity assertion.
    """
    timing = TimingSpec.tlc_table2()
    model = ReadRetryModel(fail_prob=0.45, max_retries=7)
    senses = np.tile(np.array([1, 2, 2, 4, 4, 4, 8], dtype=np.int64),
                     cohort // 7 + 1)[:cohort]
    counter = leading_failure_counter()
    lut = kernels.read_latency_lut(timing, 8)
    fail_lut = kernels.page_fail_lut(model, 8)

    scalar_times: list[float] = []
    scalar_total = 0.0
    for _ in range(reps):
        rng = np.random.default_rng(11)
        started = time.perf_counter()
        total = 0.0
        for s in senses:
            retries = model.sample_retries(rng, int(s))
            passes = 1 + retries
            total += (timing.read_us(int(s)) * passes
                      + timing.transfer_us + timing.ecc_decode_us * passes)
        scalar_times.append(time.perf_counter() - started)
        scalar_total = total

    vector_times: list[float] = []
    vector_total = 0.0
    for _ in range(reps):
        rng = np.random.default_rng(11)
        started = time.perf_counter()
        retries = kernels.sample_retry_counts(
            rng, model, senses, fail_lut=fail_lut, counter=counter
        )
        service = kernels.read_service_us(
            lut[senses], retries, timing.transfer_us, timing.ecc_decode_us
        )
        vector_times.append(time.perf_counter() - started)
        vector_total = float(service.sum())
    assert abs(scalar_total - vector_total) < 1e-6 * max(1.0, scalar_total), \
        "vectorized cohort math diverged from the scalar path"

    scalar_median = statistics.median(scalar_times)
    vector_median = statistics.median(vector_times)
    return {
        "cohort": cohort,
        "scalar_median_s": scalar_median,
        "vector_median_s": vector_median,
        "speedup": scalar_median / vector_median if vector_median > 0 else 0.0,
        "ops_per_s": cohort / vector_median if vector_median > 0 else 0.0,
        "numba_active": accel_active(),
    }


def time_stream_admission(events: int, reps: int) -> dict:
    """Sorted-stream admission vs per-event heap admission.

    The batch backend admits the whole (pre-sorted) request schedule via
    ``SimEngine.add_stream``; the reference path heap-pushes each event.
    Measures admission + drain of an already-sorted schedule both ways.
    """
    schedule = [(float(i) * 0.5, i) for i in range(events)]

    def noop() -> None:
        pass

    at_times: list[float] = []
    for _ in range(reps):
        engine = SimEngine()
        started = time.perf_counter()
        for t, _ in schedule:
            engine.at(t, noop)
        engine.run()
        at_times.append(time.perf_counter() - started)

    stream_times: list[float] = []
    for _ in range(reps):
        engine = SimEngine()
        started = time.perf_counter()
        engine.add_stream((t, noop) for t, _ in schedule)
        engine.run_until_idle(track_peak=False)
        stream_times.append(time.perf_counter() - started)

    at_median = statistics.median(at_times)
    stream_median = statistics.median(stream_times)
    return {
        "events": events,
        "at_median_s": at_median,
        "stream_median_s": stream_median,
        "speedup": at_median / stream_median if stream_median > 0 else 0.0,
        "events_per_s": events / stream_median if stream_median > 0 else 0.0,
    }


def _git_rev() -> str | None:
    """Current short revision, or None outside a git checkout."""
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"], default="quick")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="write the measured medians to PATH (JSON)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline JSON from --record on the reference tree")
    parser.add_argument("--check", action="store_true",
                        help="fail if slower than the baseline beyond the threshold")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated slowdown in percent (default: 5)")
    parser.add_argument("--append-trajectory", metavar="PATH", default=None,
                        help="append this run's ops/sec to a JSON-array "
                             "history file (created if missing); trend "
                             "comparison uses same-scale predecessors only")
    parser.add_argument("--check-trajectory", action="store_true",
                        help="fail when read-first ops/sec drops more than "
                             "--trajectory-threshold percent below the "
                             "latest same-scale trajectory entry")
    parser.add_argument("--trajectory-threshold", type=float, default=50.0,
                        help="max tolerated same-scale ops/sec drop in "
                             "percent (default: 50 — generous, because "
                             "trajectory points come from heterogeneous "
                             "machines)")
    parser.add_argument("--check-backends", action="store_true",
                        help="fail unless the vectorized cohort math beats "
                             "the scalar loop by the backend gates "
                             "(3x numpy, 5x jitted)")
    args = parser.parse_args(argv)
    if args.check and not args.baseline:
        parser.error("--check requires --baseline")
    if args.check_trajectory and not args.append_trajectory:
        parser.error("--check-trajectory requires --append-trajectory")

    scale = getattr(RunScale, args.scale)()
    time_runs(scale, "read-first", 1)  # warm-up

    report: dict = {"scale": args.scale, "reps": args.reps, "policies": {}}
    print(f"scale={args.scale} reps={args.reps} (median wall seconds)")
    for policy in ("read-first", "fcfs"):
        times, ops = time_runs(scale, policy, args.reps)
        median = statistics.median(times)
        ops_per_s = ops / median if median > 0 else 0.0
        report["policies"][policy] = {
            "median_s": median,
            "phys_ops": ops,
            "ops_per_s": ops_per_s,
        }
        print(f"  {policy:<11}: {median:.3f} s  "
              f"({ops} phys ops, {ops_per_s:,.0f} ops/s)")

    engine_events = 512_000
    engine_times = time_engine(engine_events, args.reps)
    engine_median = statistics.median(engine_times)
    events_per_s = engine_events / engine_median if engine_median > 0 else 0.0
    report["engine"] = {
        "median_s": engine_median,
        "events": engine_events,
        "events_per_s": events_per_s,
    }
    print(f"  {'engine':<11}: {engine_median:.3f} s  "
          f"({engine_events} events, {events_per_s:,.0f} events/s)")

    cohort = time_backend_cohort(args.reps)
    admission = time_stream_admission(256_000, args.reps)
    report["backends"] = {"cohort": cohort, "admission": admission}
    kind = "numba" if cohort["numba_active"] else "numpy"
    print(f"  {'cohort':<11}: {cohort['vector_median_s']:.3f} s vs "
          f"{cohort['scalar_median_s']:.3f} s scalar  "
          f"({cohort['speedup']:.1f}x, {cohort['ops_per_s']:,.0f} ops/s, {kind})")
    print(f"  {'admission':<11}: {admission['stream_median_s']:.3f} s vs "
          f"{admission['at_median_s']:.3f} s heap  "
          f"({admission['speedup']:.1f}x, "
          f"{admission['events_per_s']:,.0f} events/s)")

    if args.record:
        path = Path(args.record)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"recorded -> {path}")

    trajectory_failed = False
    if args.append_trajectory:
        path = Path(args.append_trajectory)
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": _git_rev(),
            "bench": "pipeline",
            "scale": args.scale,
            "reps": args.reps,
            "ops_per_s": {
                policy: stats["ops_per_s"]
                for policy, stats in report["policies"].items()
            },
            "engine_events_per_s": report["engine"]["events_per_s"],
            "batch_cohort_ops_per_s": cohort["ops_per_s"],
            "batch_cohort_speedup": cohort["speedup"],
            "stream_admission_events_per_s": admission["events_per_s"],
            "numba_active": cohort["numba_active"],
        }
        history: list = []
        if path.exists():
            try:
                history = json.loads(path.read_text())
            except json.JSONDecodeError:
                print(f"warning: {path} is not valid JSON, starting fresh")
            if not isinstance(history, list):
                print(f"warning: {path} is not a JSON array, starting fresh")
                history = []
        # Only a same-scale pipeline entry is a valid comparison point:
        # other scales do a different amount of simulated work per run,
        # and other benches (bench_parallel_sweep) record different
        # metrics entirely.  Early entries predate the ``bench`` tag, so
        # the ``ops_per_s`` key doubles as the pipeline discriminator.
        predecessor = next(
            (e for e in reversed(history)
             if e.get("scale") == args.scale and "ops_per_s" in e
             and e.get("bench", "pipeline") == "pipeline"),
            None,
        )
        history.append(entry)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(history, indent=1) + "\n")
        print(f"trajectory -> {path} ({len(history)} entries)")
        if predecessor is None:
            print(f"  no same-scale predecessor at scale={args.scale} — "
                  f"nothing to compare")
        else:
            for policy, now in entry["ops_per_s"].items():
                then = predecessor["ops_per_s"].get(policy)
                if not then:
                    continue
                delta = (now / then - 1.0) * 100.0
                print(f"  {policy:<11}: {now:,.0f} ops/s vs {then:,.0f} "
                      f"at {predecessor.get('git_rev')} ({delta:+.1f}%)")
                if policy == "read-first" and -delta > args.trajectory_threshold:
                    trajectory_failed = True
            then = predecessor.get("engine_events_per_s")
            if then:
                delta = (entry["engine_events_per_s"] / then - 1.0) * 100.0
                print(f"  {'engine':<11}: "
                      f"{entry['engine_events_per_s']:,.0f} events/s vs "
                      f"{then:,.0f} at {predecessor.get('git_rev')} "
                      f"({delta:+.1f}%)")
        if args.check_trajectory and trajectory_failed:
            print(f"FAIL: read-first ops/s dropped more than "
                  f"{args.trajectory_threshold:.0f}% below the same-scale "
                  f"trajectory predecessor")
            return 1

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        failed = False
        for policy, current in report["policies"].items():
            reference = base.get("policies", {}).get(policy)
            if reference is None:
                print(f"  {policy}: no baseline entry, skipped")
                continue
            delta = (current["median_s"] / reference["median_s"] - 1.0) * 100.0
            verdict = "OK" if delta <= args.threshold else "FAIL"
            print(f"  {policy:<11}: {delta:+.1f}% vs baseline "
                  f"({reference['median_s']:.3f} s)  [{verdict}]")
            failed = failed or delta > args.threshold
        engine_base = base.get("engine")
        if engine_base is None:
            print("  engine: no baseline entry, skipped")
        else:
            delta = (
                report["engine"]["median_s"] / engine_base["median_s"] - 1.0
            ) * 100.0
            verdict = "OK" if delta <= args.threshold else "FAIL"
            print(f"  {'engine':<11}: {delta:+.1f}% vs baseline "
                  f"({engine_base['median_s']:.3f} s)  [{verdict}]")
            failed = failed or delta > args.threshold
        if args.check and failed:
            print(f"FAIL: slowdown exceeds {args.threshold:.1f}%")
            return 1

    if args.check_backends:
        # numpy floor always applies; the jitted gate only when numba
        # actually ran (a numpy-only environment cannot meet 5x jitted
        # numbers and must not pretend to).
        gate = 5.0 if cohort["numba_active"] else 3.0
        kind = "numba" if cohort["numba_active"] else "numpy"
        if not cohort["numba_active"]:
            print("  backend gate: numba unavailable/disabled — "
                  "5x jitted gate skipped, enforcing 3x numpy floor")
        if cohort["speedup"] < gate:
            print(f"FAIL: cohort speedup {cohort['speedup']:.1f}x "
                  f"below the {gate:.0f}x {kind} gate")
            return 1
        if admission["speedup"] < 1.0:
            print(f"FAIL: stream admission slower than heap admission "
                  f"({admission['speedup']:.2f}x)")
            return 1
        print(f"  backend gate: cohort {cohort['speedup']:.1f}x >= "
              f"{gate:.0f}x ({kind}), admission "
              f"{admission['speedup']:.2f}x >= 1x  [OK]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
