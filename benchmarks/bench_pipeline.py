#!/usr/bin/env python3
"""Microbenchmark: simulated-ops throughput of the staged op pipeline.

The op-pipeline refactor (closure webs -> :class:`OpPipeline` stage
machine) must not slow simulation down: the acceptance gate is "no worse
than 5% below the pre-refactor baseline".  Because absolute wall time is
machine-dependent, the comparison runs in two steps:

* on the *pre-refactor* tree:   ``bench_pipeline.py --record base.json``
* on the *post-refactor* tree:  ``bench_pipeline.py --check --baseline base.json``

which fails (exit 1) when the new median wall time exceeds the recorded
one by more than ``--threshold`` percent.  Without ``--baseline`` the
script just reports wall seconds and simulated physical ops per second
(``SimMetrics.phys_ops_dispatched`` over median wall time) for the
read-first and fcfs policies.

Run:  python benchmarks/bench_pipeline.py [--scale quick] [--reps 5]
                                          [--record PATH]
                                          [--check --baseline PATH]
                                          [--append-trajectory PATH]

``--append-trajectory`` appends one compact entry (ops/sec per policy,
engine events/sec, scale, timestamp, git revision when available) to a
JSON-array file — CI points it at ``benchmarks/BENCH_trajectory.json``
so the throughput history accumulates one point per run and regressions
show up as a trend, not just a single-gate pass/fail.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.experiments import RunScale, ida, run_workload
from repro.sim.engine import SimEngine
from repro.workloads import workload


def time_engine(events: int, reps: int) -> list[float]:
    """Raw event-loop throughput: self-rescheduling tick chains.

    Exercises exactly the ``SimEngine.run`` hot loop (pop, clock advance,
    callback dispatch, re-push) with trivial callbacks, so changes to the
    loop show up undiluted by FTL work.
    """
    chains = 64
    per_chain = events // chains
    times: list[float] = []
    for _ in range(reps):
        engine = SimEngine()

        def make_tick(period: float):
            remaining = per_chain

            def tick() -> None:
                nonlocal remaining
                remaining -= 1
                if remaining > 0:
                    engine.after(period, tick)

            return tick

        for chain in range(chains):
            engine.after(0.5 + chain * 0.01, make_tick(1.0 + chain * 0.01))
        started = time.perf_counter()
        engine.run()
        times.append(time.perf_counter() - started)
        assert engine.processed == chains * per_chain
    return times


def time_runs(scale: RunScale, policy: str, reps: int) -> tuple[list[float], int]:
    """Median-able wall times plus the per-run dispatched-op count."""
    spec = workload("usr_1")
    system = ida(0.2).with_policy(policy)
    times: list[float] = []
    ops = 0
    for _ in range(reps):
        started = time.perf_counter()
        result = run_workload(system, spec, scale, seed=11)
        times.append(time.perf_counter() - started)
        ops = result.metrics.phys_ops_dispatched
    return times, ops


def _git_rev() -> str | None:
    """Current short revision, or None outside a git checkout."""
    import subprocess

    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=["tiny", "quick", "bench"], default="quick")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="write the measured medians to PATH (JSON)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline JSON from --record on the reference tree")
    parser.add_argument("--check", action="store_true",
                        help="fail if slower than the baseline beyond the threshold")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated slowdown in percent (default: 5)")
    parser.add_argument("--append-trajectory", metavar="PATH", default=None,
                        help="append this run's ops/sec to a JSON-array "
                             "history file (created if missing)")
    args = parser.parse_args(argv)
    if args.check and not args.baseline:
        parser.error("--check requires --baseline")

    scale = getattr(RunScale, args.scale)()
    time_runs(scale, "read-first", 1)  # warm-up

    report: dict = {"scale": args.scale, "reps": args.reps, "policies": {}}
    print(f"scale={args.scale} reps={args.reps} (median wall seconds)")
    for policy in ("read-first", "fcfs"):
        times, ops = time_runs(scale, policy, args.reps)
        median = statistics.median(times)
        ops_per_s = ops / median if median > 0 else 0.0
        report["policies"][policy] = {
            "median_s": median,
            "phys_ops": ops,
            "ops_per_s": ops_per_s,
        }
        print(f"  {policy:<11}: {median:.3f} s  "
              f"({ops} phys ops, {ops_per_s:,.0f} ops/s)")

    engine_events = 512_000
    engine_times = time_engine(engine_events, args.reps)
    engine_median = statistics.median(engine_times)
    events_per_s = engine_events / engine_median if engine_median > 0 else 0.0
    report["engine"] = {
        "median_s": engine_median,
        "events": engine_events,
        "events_per_s": events_per_s,
    }
    print(f"  {'engine':<11}: {engine_median:.3f} s  "
          f"({engine_events} events, {events_per_s:,.0f} events/s)")

    if args.record:
        path = Path(args.record)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"recorded -> {path}")

    if args.append_trajectory:
        path = Path(args.append_trajectory)
        entry = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "git_rev": _git_rev(),
            "scale": args.scale,
            "reps": args.reps,
            "ops_per_s": {
                policy: stats["ops_per_s"]
                for policy, stats in report["policies"].items()
            },
            "engine_events_per_s": report["engine"]["events_per_s"],
        }
        history: list = []
        if path.exists():
            try:
                history = json.loads(path.read_text())
            except json.JSONDecodeError:
                print(f"warning: {path} is not valid JSON, starting fresh")
            if not isinstance(history, list):
                print(f"warning: {path} is not a JSON array, starting fresh")
                history = []
        history.append(entry)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(history, indent=1) + "\n")
        print(f"trajectory -> {path} ({len(history)} entries)")

    if args.baseline:
        base = json.loads(Path(args.baseline).read_text())
        failed = False
        for policy, current in report["policies"].items():
            reference = base.get("policies", {}).get(policy)
            if reference is None:
                print(f"  {policy}: no baseline entry, skipped")
                continue
            delta = (current["median_s"] / reference["median_s"] - 1.0) * 100.0
            verdict = "OK" if delta <= args.threshold else "FAIL"
            print(f"  {policy:<11}: {delta:+.1f}% vs baseline "
                  f"({reference['median_s']:.3f} s)  [{verdict}]")
            failed = failed or delta > args.threshold
        engine_base = base.get("engine")
        if engine_base is None:
            print("  engine: no baseline entry, skipped")
        else:
            delta = (
                report["engine"]["median_s"] / engine_base["median_s"] - 1.0
            ) * 100.0
            verdict = "OK" if delta <= args.threshold else "FAIL"
            print(f"  {'engine':<11}: {delta:+.1f}% vs baseline "
                  f"({engine_base['median_s']:.3f} s)  [{verdict}]")
            failed = failed or delta > args.threshold
        if args.check and failed:
            print(f"FAIL: slowdown exceeds {args.threshold:.1f}%")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
