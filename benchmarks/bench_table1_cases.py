"""Table I — wordline case classification.

Prints the eight-case table and micro-benchmarks the classifier (it runs
once per wordline per refresh in the simulator's hot path).
"""

from __future__ import annotations

from repro.core import TLC_CASE_TABLE, classify_validity
from repro.experiments.reporting import ascii_table


def test_table1_classification(benchmark):
    def classify_all():
        return [
            classify_validity((lsb, csb, msb))
            for lsb in (True, False)
            for csb in (True, False)
            for msb in (True, False)
        ]

    decisions = benchmark(classify_all)
    assert len(decisions) == 8

    rows = []
    for case in range(1, 9):
        decision = TLC_CASE_TABLE[case]
        rows.append(
            [
                case,
                decision.action.value,
                ",".join("LCM"[b] for b in decision.pages_to_move) or "-",
                ",".join("LCM"[b] for b in decision.adjust_bits) or "-",
            ]
        )
    print()
    print(
        ascii_table(
            ["case", "action", "move pages", "adjust bits"],
            rows,
            title="Table I: refresh decision per wordline case",
        )
    )
