"""The fault injector: arms a :class:`FaultPlan` against a simulator.

The injector hooks the simulator exactly the way the profiler does —
one ``is None`` check per op dispatch and per stage boundary — so a run
without a plan pays nothing (the fig8 golden parity test pins this).
With a plan bound it does three things:

* **trigger** — counts dispatched ops per kind and matches them against
  the plan's ordinals, and schedules the timed events (grown bad, die
  loss) on the simulation engine at bind time;
* **recover** — when a faulted op *completes*, routes it to the FTL's
  graceful-degradation handler and issues whatever relocation work that
  returns as internal background ops;
* **record** — appends one JSON-able record per fired fault (including
  the faulted op's per-stage timing, captured zero-copy at the pipeline
  stage boundaries) to a deterministic event stream that flows into run
  manifests and, when tracing is on, the structured tracer.

Everything here is duck-typed against the simulator (``bind(sim)``)
rather than imported from :mod:`repro.sim`, keeping the package free of
import cycles.
"""

from __future__ import annotations

from .plan import OP_KIND_OF, TIMED_KINDS, FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultInjector", "FaultedOp", "PowerCutError"]


class PowerCutError(RuntimeError):
    """The simulated device lost power mid-run.

    Raised out of the event loop by a :data:`FaultKind.POWER_CUT` event.
    Unlike every other fault there is no in-run recovery: the simulator
    object is dead at this point and the caller remounts the surviving
    :class:`~repro.flash.state.DeviceState` via
    :func:`repro.ftl.recovery.mount_device`.

    Attributes:
        now_us: Simulated time the cut struck.
        ops_dispatched: Physical ops dispatched before the cut (the cut
            op itself, when ordinal-triggered, was *not* issued — its
            request is never acknowledged).
    """

    def __init__(self, now_us: float, ops_dispatched: int) -> None:
        super().__init__(
            f"power cut at t={now_us:.1f}us after "
            f"{ops_dispatched} dispatched ops"
        )
        self.now_us = now_us
        self.ops_dispatched = ops_dispatched


class FaultedOp:
    """Per-op context for an op the plan marked as failing.

    The op pipeline calls :meth:`note_stage` at every stage boundary
    (mirroring the profiler hook), so the fault record shows exactly
    where the doomed op spent its time before the failure surfaced.
    """

    __slots__ = ("event", "op", "dispatch_us", "stages")

    def __init__(self, event: FaultEvent, op, dispatch_us: float) -> None:
        self.event = event
        self.op = op
        self.dispatch_us = dispatch_us
        self.stages: list[tuple[str, float, float]] = []

    def note_stage(
        self, stage, submit_us: float, start_us: float, end_us: float
    ) -> None:
        self.stages.append((stage.name, start_us, end_us))


class FaultInjector:
    """Deterministic fault triggering, recovery routing and recording."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.sim = None
        #: Deterministic fault-event stream (JSON-able dicts, in firing
        #: order) — compared byte-for-byte by the parity tests.
        self.events: list[dict] = []
        self.fired: dict[str, int] = {kind.value: 0 for kind in FaultKind}
        self.fired["read_reclaim"] = 0
        # Op-coupled events keyed by (op-kind value, ordinal); power
        # cuts keyed by ordinal into the stream of ALL dispatched ops.
        self._pending: dict[str, dict[int, FaultEvent]] = {}
        self._power_cuts: dict[int, FaultEvent] = {}
        for event in plan.events:
            if event.kind is FaultKind.POWER_CUT:
                if event.op_ordinal is not None:
                    self._power_cuts[event.op_ordinal] = event
                continue
            if event.kind in TIMED_KINDS:
                continue
            op_kind = OP_KIND_OF[event.kind]
            self._pending.setdefault(op_kind, {})[event.op_ordinal] = event
        self._seen = {value: 0 for value in OP_KIND_OF.values()}
        #: Global dispatched-op counter (every kind), driving power-cut
        #: ordinals — deliberately identical across execution backends,
        #: which route all *timed* ops through the same dispatch path.
        self.ops_seen = 0
        #: When a list, every dispatched op appends its kind value here.
        #: The crash-consistency harness arms this on a cut-free probe
        #: run to learn which ordinals fall in write / GC / refresh /
        #: ADJUST phases before choosing cut points.  ``None`` (default)
        #: costs one check per dispatch.
        self.census: list[str] | None = None

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach to a simulator: arm FTL recovery, schedule timed events."""
        self.sim = sim
        sim.ftl.enable_fault_recovery(self.plan.read_reclaim_threshold)
        for event in self.plan.events:
            if event.kind in TIMED_KINDS:
                sim.engine.at(event.at_us, lambda e=event: self._fire_timed(e))
            elif event.kind is FaultKind.POWER_CUT and event.at_us is not None:
                sim.engine.at(
                    event.at_us, lambda e=event: self._fire_power_cut(e)
                )

    # ------------------------------------------------------------------
    # Triggering (called from SsdSimulator._issue, faults-enabled only)
    # ------------------------------------------------------------------
    def on_dispatch(self, op, host_read: bool) -> FaultedOp | None:
        """Count a dispatched op; return a context if the plan fails it.

        UNCORRECTABLE_READ ordinals index *host* reads only — internal
        (GC/refresh/recovery) reads pass through uncounted.  Power-cut
        ordinals index every dispatched op regardless of kind; a
        matching cut raises :class:`PowerCutError` *before* the op is
        issued, so the surviving device arrays reflect a clean event
        boundary (FTL transitions are eager and complete per request).
        """
        op_kind = op.kind.value
        self.ops_seen += 1
        if self.census is not None:
            self.census.append(op_kind)
        if self._power_cuts:
            cut = self._power_cuts.pop(self.ops_seen, None)
            if cut is not None:
                self._fire_power_cut(cut)
        if op_kind == "read" and not host_read:
            return None
        if op_kind not in self._seen:
            return None
        self._seen[op_kind] += 1
        pending = self._pending.get(op_kind)
        if not pending:
            return None
        event = pending.pop(self._seen[op_kind], None)
        if event is None:
            return None
        return FaultedOp(event, op, self.sim.engine.now)

    def wrap_completion(self, ctx: FaultedOp, inner):
        """Completion callback running recovery before the original one."""

        def completion(start_us: float, end_us: float) -> None:
            self._recover(ctx, end_us)
            inner(start_us, end_us)

        return completion

    def note_read_retries(self, op, retries: int) -> None:
        """Feed host-read retry counts into STRAW-style read reclaim."""
        now = self.sim.engine.now
        ops = self.sim.ftl.note_read_retries(op.block_index, retries, now)
        if ops:
            self._record(
                "read_reclaim",
                now,
                block=op.block_index,
                recovery_ops=len(ops),
            )
            self.sim.issue_internal_sequence(ops)

    # ------------------------------------------------------------------
    # Recovery routing
    # ------------------------------------------------------------------
    def _recover(self, ctx: FaultedOp, now_us: float) -> None:
        event, op = ctx.event, ctx.op
        ftl = self.sim.ftl
        kind = event.kind
        if kind is FaultKind.PROGRAM_FAIL:
            ops = ftl.on_program_failure(op.block_index, op.page, now_us)
        elif kind is FaultKind.ERASE_FAIL:
            ops = ftl.on_erase_failure(op.block_index, now_us)
        elif kind is FaultKind.UNCORRECTABLE_READ:
            ops = ftl.on_uncorrectable_read(op.block_index, op.page, now_us)
        else:  # ADJUST_INTERRUPT
            ops = ftl.on_adjust_interrupted(op.block_index, op.wordline, now_us)
        self._record(
            kind.value,
            now_us,
            op_ordinal=event.op_ordinal,
            block=op.block_index,
            page=op.page,
            wordline=op.wordline,
            recovery_ops=len(ops),
            stages=ctx.stages,
        )
        if ops:
            self.sim.issue_internal_sequence(ops)

    def _fire_power_cut(self, event: FaultEvent) -> None:
        """Record the cut, then kill the run — no in-sim recovery."""
        now = self.sim.engine.now
        self._record(
            event.kind.value,
            now,
            op_ordinal=event.op_ordinal,
            ops_dispatched=self.ops_seen,
        )
        raise PowerCutError(now, self.ops_seen)

    def _fire_timed(self, event: FaultEvent) -> None:
        now = self.sim.engine.now
        ftl = self.sim.ftl
        if event.kind is FaultKind.GROWN_BAD:
            # Hand-written plans may target blocks beyond a scaled-down
            # device; wrap rather than crash so plans port across scales.
            block = event.block % self.sim.geometry.total_blocks
            ops = ftl.retire_block(block, now)
            self._record(
                event.kind.value, now, block=block, recovery_ops=len(ops)
            )
        else:  # DIE_FAIL
            die = event.die % self.sim.geometry.total_dies
            ops = ftl.fail_die(die, now)
            self._record(event.kind.value, now, die=die, recovery_ops=len(ops))
        if ops:
            self.sim.issue_internal_sequence(ops)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, kind: str, now_us: float, **fields) -> None:
        self.fired[kind] += 1
        entry: dict = {"kind": kind, "t_us": now_us}
        entry.update({k: v for k, v in fields.items() if v is not None})
        self.events.append(entry)
        tracer = self.sim.tracer
        if tracer.enabled:
            payload = {k: v for k, v in entry.items() if k != "kind"}
            del payload["t_us"]
            tracer.emit(now_us, "fault", fault_kind=kind, **payload)

    def summary(self) -> dict:
        """JSON-able account of the plan and everything that fired."""
        return {
            "plan": self.plan.to_dict(),
            "fired": dict(self.fired),
            "events": [dict(event) for event in self.events],
        }
