"""Post-run coding and mapping invariants the fault paths must preserve.

The central one is the *torn-reprogram* invariant (ISSUE 5): an IDA
voltage adjustment interrupted mid-refresh must leave the wordline in
either the old or the new coding — never the in-between
:data:`~repro.flash.block.TORN_WL` state, whose cells straddle two
codings and cannot be sensed.  Recovery rolls *forward* (the journaled
intent names the target mode and the pages riding on the wordline), so
at rest no wordline is ever torn.  The checker also pins the supporting
invariants graceful degradation relies on: every valid page is readable
under its wordline's mode, the page map only points at valid pages,
retired (grown-bad) blocks hold no live data, and no adjust-journal
intent is left uncommitted.
"""

from __future__ import annotations

from ..flash.block import CONVENTIONAL_WL, TORN_WL, PageState

__all__ = ["check_coding_invariants"]


def check_coding_invariants(ftl) -> list[str]:
    """Scan an FTL's device state; return human-readable violations.

    An empty list means every invariant holds.  Duck-typed against
    :class:`~repro.ftl.ftl.Ftl` (anything with ``table``, ``map`` and the
    fault-recovery attributes works).
    """
    violations: list[str] = []
    table = ftl.table
    sense_table = table.sense_table

    for block in table.blocks:
        for wordline in range(block.wordlines):
            mode = block.wl_mode(wordline)
            if mode == TORN_WL:
                violations.append(
                    f"block {block.index} wordline {wordline} left torn "
                    "(interrupted IDA reprogram was not resolved)"
                )
            elif mode != CONVENTIONAL_WL and not 1 <= mode < block.bits_per_cell:
                violations.append(
                    f"block {block.index} wordline {wordline} has invalid "
                    f"mode {mode:#x}"
                )
        for page in block.valid_pages():
            try:
                block.senses_for(sense_table, page)
            except KeyError:
                violations.append(
                    f"block {block.index} page {page} is valid but "
                    "unreadable under its wordline mode"
                )

    # The page map must only point at valid pages (and agree with the
    # reverse map, which PageMap itself guarantees).
    for lpn, ppn in ftl.map._forward.items():
        block, page = table.block_of_ppn(ppn)
        if block.state_of(page) is not PageState.VALID:
            violations.append(
                f"LPN {lpn} maps to PPN {ppn} whose page state is "
                f"{block.state_of(page).name}, not VALID"
            )

    # Retired (grown-bad / dead-die) blocks must have been evacuated.
    for pool in table.planes:
        for in_plane in sorted(pool.retired):
            block = pool.block(in_plane)
            if block.valid_count:
                violations.append(
                    f"retired block {block.index} still holds "
                    f"{block.valid_count} valid pages"
                )

    # Every journaled adjust intent must be committed or recovered.
    journal = getattr(ftl, "_journal", None)
    if journal:
        for block_index, wordline in sorted(journal):
            violations.append(
                f"uncommitted adjust-journal intent for block {block_index} "
                f"wordline {wordline}"
            )
    return violations
