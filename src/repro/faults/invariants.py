"""Post-run coding and mapping invariants the fault paths must preserve.

The central one is the *torn-reprogram* invariant (ISSUE 5): an IDA
voltage adjustment interrupted mid-refresh must leave the wordline in
either the old or the new coding — never the in-between
:data:`~repro.flash.block.TORN_WL` state, whose cells straddle two
codings and cannot be sensed.  Recovery rolls *forward* (the journaled
intent names the target mode and the pages riding on the wordline), so
at rest no wordline is ever torn.  The checker also pins the supporting
invariants graceful degradation relies on: every valid page is readable
under its wordline's mode, the page map only points at valid pages,
retired (grown-bad) blocks hold no live data, and no adjust-journal
intent is left uncommitted.
"""

from __future__ import annotations

import numpy as np

from ..flash.block import CONVENTIONAL_WL, TORN_WL, PageState

__all__ = ["check_coding_invariants"]


def check_coding_invariants(ftl) -> list[str]:
    """Scan an FTL's device state; return human-readable violations.

    An empty list means every invariant holds.  Duck-typed against
    :class:`~repro.ftl.ftl.Ftl` (anything with ``table``, ``map`` and the
    fault-recovery attributes works).

    The wordline/page sweeps run as array reductions over the columnar
    :class:`~repro.flash.state.DeviceState` — at the full 512 GB
    topology the per-object version would walk 22 M wordlines in Python.
    """
    violations: list[str] = []
    table = ftl.table
    state = table.state
    bits = state.bits_per_cell
    wpb = state.wordlines_per_block

    wl_modes = state.wl_mode_np
    torn = wl_modes == TORN_WL
    invalid_mode = (
        (wl_modes != CONVENTIONAL_WL) & ~torn & ((wl_modes < 1) | (wl_modes >= bits))
    )
    for wl in np.flatnonzero(torn | invalid_mode):
        block_index, wordline = divmod(int(wl), wpb)
        if torn[wl]:
            violations.append(
                f"block {block_index} wordline {wordline} left torn "
                "(interrupted IDA reprogram was not resolved)"
            )
        else:
            violations.append(
                f"block {block_index} wordline {wordline} has invalid "
                f"mode {int(wl_modes[wl]):#x}"
            )

    # Every valid page must be readable under its wordline's current
    # mode (LUT row 0 = unreadable, mirroring SenseTable.senses raising).
    lut = table.sense_table.lut()
    valid_ppns = np.flatnonzero(state.page_state_np == int(PageState.VALID))
    senses = lut[wl_modes[valid_ppns // bits], valid_ppns % bits]
    for ppn in valid_ppns[senses == 0]:
        block_index, page = divmod(int(ppn), state.pages_per_block)
        violations.append(
            f"block {block_index} page {page} is valid but "
            "unreadable under its wordline mode"
        )

    # The page map must only point at valid pages (and agree with the
    # reverse map, which PageMap itself guarantees).
    for lpn, ppn in ftl.map.items():
        block, page = table.block_of_ppn(ppn)
        if block.state_of(page) is not PageState.VALID:
            violations.append(
                f"LPN {lpn} maps to PPN {ppn} whose page state is "
                f"{block.state_of(page).name}, not VALID"
            )

    # Retired (grown-bad / dead-die) blocks must have been evacuated.
    for pool in table.planes:
        for in_plane in sorted(pool.retired):
            block = pool.block(in_plane)
            if block.valid_count:
                violations.append(
                    f"retired block {block.index} still holds "
                    f"{block.valid_count} valid pages"
                )

    # Every journaled adjust intent must be committed or recovered.
    journal = getattr(ftl, "_journal", None)
    if journal:
        for block_index, wordline in sorted(journal):
            violations.append(
                f"uncommitted adjust-journal intent for block {block_index} "
                f"wordline {wordline}"
            )
    return violations
