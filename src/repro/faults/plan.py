"""Typed fault plans: what goes wrong, and exactly when.

A :class:`FaultPlan` is a *deterministic script* of failures, not a
stochastic process: every event either fires at a fixed simulated time
(``at_us`` — grown bad blocks, die loss) or on the N-th dispatched
physical operation of its kind (``op_ordinal`` — program/erase status
failures, uncorrectable reads, interrupted IDA adjustments).  Two runs
with the same plan therefore see byte-identical fault sequences, which
is what lets the parity tests compare inline and pooled sweeps exactly,
and lets paired baseline/IDA runs share one plan (common random numbers
extend to the fault schedule).

Plans are frozen, hashable and picklable, so they ride on
:class:`~repro.experiments.parallel.RunUnit` across process boundaries,
and they serialise to/from JSON for ``repro run --faults plan.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from enum import Enum
from pathlib import Path

import numpy as np

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "PLAN_SCHEMA",
    "load_plan",
    "save_plan",
]

#: On-disk fault-plan schema version.  Written into every serialised
#: plan; :meth:`FaultPlan.from_dict` rejects plans carrying a different
#: version (a plan without the field predates versioning and is read as
#: version 1).
PLAN_SCHEMA = 1


class FaultKind(Enum):
    """The fault taxonomy (see ``docs/faults.md``)."""

    #: A page program reports status failure; the in-flight page must be
    #: replayed to a fresh block and the block retired.
    PROGRAM_FAIL = "program_fail"
    #: A block erase reports status failure; the block is retired.
    ERASE_FAIL = "erase_fail"
    #: A block goes bad spontaneously at a given simulated time (media
    #: wear-out); its live data is migrated and the block retired.
    GROWN_BAD = "grown_bad"
    #: A host read exhausts the full retry ladder and still fails to
    #: decode; the data is rebuilt from outer protection and relocated.
    UNCORRECTABLE_READ = "uncorrectable_read"
    #: A whole die drops out at a given simulated time; its planes leave
    #: the allocation rotation and live data is rebuilt elsewhere.
    DIE_FAIL = "die_fail"
    #: An IDA voltage adjustment is interrupted mid-reprogram — the
    #: torn-wordline case the recovery invariant pins down.
    ADJUST_INTERRUPT = "adjust_interrupt"
    #: Sudden power-off: the whole simulation halts, either at a fixed
    #: simulated time or on the N-th dispatched physical op of *any*
    #: kind.  Unlike every other kind there is no in-run recovery — the
    #: injector raises :class:`~repro.faults.injector.PowerCutError` and
    #: the crash-consistency harness remounts the device from its
    #: surviving arrays (:func:`repro.ftl.recovery.mount_device`).
    POWER_CUT = "power_cut"


#: Kinds that fire at a simulated time rather than on an op ordinal.
TIMED_KINDS = frozenset({FaultKind.GROWN_BAD, FaultKind.DIE_FAIL})

#: Which :class:`~repro.ftl.ops.OpKind` value each op-coupled kind
#: matches (by the op-kind's ``value`` string, to avoid an import cycle).
OP_KIND_OF = {
    FaultKind.PROGRAM_FAIL: "write",
    FaultKind.ERASE_FAIL: "erase",
    FaultKind.UNCORRECTABLE_READ: "read",
    FaultKind.ADJUST_INTERRUPT: "adjust",
}


@dataclass(frozen=True)
class FaultEvent:
    """One scripted failure.

    Attributes:
        kind: What fails.
        at_us: Simulated firing time — required for the timed kinds
            (:data:`TIMED_KINDS`), forbidden for op-coupled kinds.
        op_ordinal: 1-based index into the stream of dispatched ops of
            the matching kind (programs for PROGRAM_FAIL, erases for
            ERASE_FAIL, *host* page reads for UNCORRECTABLE_READ,
            adjusts for ADJUST_INTERRUPT).  An ordinal beyond what the
            run dispatches simply never fires.
        block: Target block for GROWN_BAD (required there, ignored
            elsewhere — op-coupled faults hit whatever block the N-th op
            targets).
        die: Target die for DIE_FAIL (required there).
    """

    kind: FaultKind
    at_us: float | None = None
    op_ordinal: int | None = None
    block: int | None = None
    die: int | None = None

    def __post_init__(self) -> None:
        if self.kind is FaultKind.POWER_CUT:
            # The one kind living in both trigger domains: a cut fires
            # either at a wall-clock instant or on the N-th dispatched
            # op of ANY kind (the harness's phase-targeted cut points).
            if (self.at_us is None) == (self.op_ordinal is None):
                raise ValueError(
                    "power_cut events need exactly one of at_us / op_ordinal"
                )
            if self.op_ordinal is not None and self.op_ordinal < 1:
                raise ValueError("op_ordinal is 1-based and must be >= 1")
            if self.block is not None or self.die is not None:
                raise ValueError(
                    "power_cut hits the whole device; block/die are invalid"
                )
        elif self.kind in TIMED_KINDS:
            if self.at_us is None:
                raise ValueError(f"{self.kind.value} events need at_us")
            if self.op_ordinal is not None:
                raise ValueError(
                    f"{self.kind.value} events are timed; op_ordinal is invalid"
                )
            if self.kind is FaultKind.GROWN_BAD and self.block is None:
                raise ValueError("grown_bad events need a target block")
            if self.kind is FaultKind.DIE_FAIL and self.die is None:
                raise ValueError("die_fail events need a target die")
        else:
            if self.op_ordinal is None:
                raise ValueError(f"{self.kind.value} events need op_ordinal")
            if self.op_ordinal < 1:
                raise ValueError("op_ordinal is 1-based and must be >= 1")
            if self.at_us is not None:
                raise ValueError(
                    f"{self.kind.value} events are op-coupled; at_us is invalid"
                )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind.value}
        for name in ("at_us", "op_ordinal", "block", "die"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Parse one event dict, rejecting malformed entries clearly.

        Raises:
            ValueError: unknown ``kind``, a non-numeric field, or a
                field combination :meth:`__post_init__` rejects.
        """
        if not isinstance(data, dict):
            raise ValueError(
                f"fault event must be a JSON object, got {type(data).__name__}"
            )
        if "kind" not in data:
            raise ValueError("fault event is missing its 'kind' field")
        try:
            kind = FaultKind(data["kind"])
        except ValueError:
            valid = ", ".join(sorted(k.value for k in FaultKind))
            raise ValueError(
                f"unknown fault kind {data['kind']!r}; valid kinds: {valid}"
            ) from None
        unknown = set(data) - {"kind", "at_us", "op_ordinal", "block", "die"}
        if unknown:
            raise ValueError(
                f"unknown fault event field(s): {', '.join(sorted(unknown))}"
            )
        at_us = data.get("at_us")
        if at_us is not None and not isinstance(at_us, (int, float)):
            raise ValueError(
                f"at_us must be a number, got {type(at_us).__name__}"
            )
        fields: dict = {"at_us": at_us}
        for name in ("op_ordinal", "block", "die"):
            value = data.get(name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                raise ValueError(
                    f"{name} must be an integer, got {value!r}"
                )
            fields[name] = value
        return cls(kind=kind, **fields)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, picklable script of fault events.

    Attributes:
        events: The scripted failures (order is cosmetic; triggering is
            by time / ordinal, and duplicate ordinals for one kind are
            rejected because only one fault can hit one op).
        name: Plan label, recorded in manifests and fault logs.
        seed: Provenance when built by :meth:`generate`; ``None`` for
            hand-written plans.
        read_reclaim_threshold: Cumulative per-block read-retry count
            past which the FTL migrates the block's data away
            (STRAW-style read reclaim); ``None`` disables reclaim.
    """

    events: tuple[FaultEvent, ...] = ()
    name: str = "faults"
    seed: int | None = None
    read_reclaim_threshold: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {type(event).__name__}")
        if (
            self.read_reclaim_threshold is not None
            and self.read_reclaim_threshold < 1
        ):
            raise ValueError("read_reclaim_threshold must be >= 1 (or None)")
        seen: set[tuple[FaultKind, int]] = set()
        for event in self.events:
            if event.op_ordinal is None:
                continue
            key = (event.kind, event.op_ordinal)
            if key in seen:
                raise ValueError(
                    f"duplicate {event.kind.value} at op_ordinal {event.op_ordinal}"
                )
            seen.add(key)

    def __len__(self) -> int:
        return len(self.events)

    def count(self, kind: FaultKind) -> int:
        return sum(1 for event in self.events if event.kind is kind)

    def with_name(self, name: str) -> "FaultPlan":
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        duration_us: float,
        total_blocks: int,
        total_dies: int = 1,
        *,
        program_fails: int = 0,
        erase_fails: int = 0,
        grown_bad: int = 0,
        uncorrectable_reads: int = 0,
        die_fails: int = 0,
        adjust_interrupts: int = 0,
        max_program_ordinal: int = 400,
        max_erase_ordinal: int = 20,
        max_read_ordinal: int = 600,
        max_adjust_ordinal: int = 40,
        read_reclaim_threshold: int | None = None,
        name: str | None = None,
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan from a seed.

        Timed events land in the middle 10-80% of ``duration_us`` so
        they fire while the trace is live; ordinals are drawn without
        replacement from ``[1, max_*_ordinal]``.  The same seed and
        arguments always yield the same plan.
        """
        if duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if total_blocks < 1 or total_dies < 1:
            raise ValueError("total_blocks and total_dies must be >= 1")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []

        def timed(kind: FaultKind, count: int, **target_of) -> None:
            for _ in range(count):
                at = float(rng.uniform(0.1, 0.8)) * duration_us
                targets = {k: int(v(rng)) for k, v in target_of.items()}
                events.append(FaultEvent(kind=kind, at_us=at, **targets))

        def ordinal(kind: FaultKind, count: int, high: int) -> None:
            count = min(count, high)
            picks = rng.choice(np.arange(1, high + 1), size=count, replace=False)
            for pick in sorted(int(p) for p in picks):
                events.append(FaultEvent(kind=kind, op_ordinal=pick))

        timed(
            FaultKind.GROWN_BAD,
            grown_bad,
            block=lambda r: r.integers(0, total_blocks),
        )
        timed(
            FaultKind.DIE_FAIL,
            die_fails,
            die=lambda r: r.integers(0, total_dies),
        )
        ordinal(FaultKind.PROGRAM_FAIL, program_fails, max_program_ordinal)
        ordinal(FaultKind.ERASE_FAIL, erase_fails, max_erase_ordinal)
        ordinal(FaultKind.UNCORRECTABLE_READ, uncorrectable_reads, max_read_ordinal)
        ordinal(FaultKind.ADJUST_INTERRUPT, adjust_interrupts, max_adjust_ordinal)
        return cls(
            events=tuple(events),
            name=name or f"generated-{seed}",
            seed=seed,
            read_reclaim_threshold=read_reclaim_threshold,
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {
            "kind": "fault_plan",
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.read_reclaim_threshold is not None:
            out["read_reclaim_threshold"] = self.read_reclaim_threshold
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Parse a plan dict; errors name the offending entry.

        Raises:
            ValueError: wrong ``kind`` tag, an unsupported ``schema``
                version, a non-list ``events`` field, or any malformed
                event — the message carries ``events[i]`` context so a
                broken hand-written plan is immediately locatable.
        """
        if data.get("kind") not in (None, "fault_plan"):
            raise ValueError(f"not a fault plan: kind={data.get('kind')!r}")
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported fault plan schema {schema!r}; this build "
                f"reads schema {PLAN_SCHEMA}"
            )
        raw_events = data.get("events", ())
        if not isinstance(raw_events, (list, tuple)):
            raise ValueError(
                f"events must be a list, got {type(raw_events).__name__}"
            )
        events = []
        for index, raw in enumerate(raw_events):
            try:
                events.append(FaultEvent.from_dict(raw))
            except ValueError as exc:
                raise ValueError(f"events[{index}]: {exc}") from None
        return cls(
            events=tuple(events),
            name=data.get("name", "faults"),
            seed=data.get("seed"),
            read_reclaim_threshold=data.get("read_reclaim_threshold"),
        )


def load_plan(path: str | Path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    with Path(path).open(encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict):
        raise ValueError(f"{path}: fault plan must be a JSON object")
    return FaultPlan.from_dict(data)


def save_plan(plan: FaultPlan, path: str | Path) -> Path:
    """Write a :class:`FaultPlan` as pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(plan.to_dict(), fh, indent=2)
        fh.write("\n")
    return target
