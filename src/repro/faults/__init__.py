"""Deterministic fault injection and recovery invariants (ISSUE 5).

``repro.faults`` scripts *what goes wrong*: a seeded, typed
:class:`FaultPlan` of program/erase status failures, grown bad blocks,
uncorrectable reads, die loss and interrupted IDA adjustments, fired
either at fixed simulated times or on exact op ordinals.  The
:class:`FaultInjector` arms a plan against a simulator with the same
zero-cost hook discipline as the profiler, and
:func:`check_coding_invariants` pins the recovery guarantees — above
all that a torn IDA reprogram always resolves to one coding or the
other.  See ``docs/faults.md``.
"""

from .injector import FaultedOp, FaultInjector, PowerCutError
from .invariants import check_coding_invariants
from .plan import (
    OP_KIND_OF,
    PLAN_SCHEMA,
    TIMED_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    load_plan,
    save_plan,
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "FaultedOp",
    "PowerCutError",
    "check_coding_invariants",
    "load_plan",
    "save_plan",
    "OP_KIND_OF",
    "PLAN_SCHEMA",
    "TIMED_KINDS",
]
