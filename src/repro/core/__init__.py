"""Core contribution: multi-level-cell codings and the IDA transform."""

from .coding import BitTuple, GrayCoding, sense_level, standard_coding
from .cases import (
    TLC_CASE_TABLE,
    WordlineAction,
    WordlineDecision,
    classify_tlc_case,
    classify_validity,
)
from .ida import IdaTransform, merge_states
from .mlc import MLC_LSB, MLC_MSB, conventional_mlc
from .qlc import QLC_BITS, conventional_qlc
from .readpath import ReadLatencyModel
from .tlc import CSB, LSB, MSB, PAGE_NAMES, conventional_tlc, tlc_232

__all__ = [
    "BitTuple",
    "GrayCoding",
    "sense_level",
    "standard_coding",
    "TLC_CASE_TABLE",
    "WordlineAction",
    "WordlineDecision",
    "classify_tlc_case",
    "classify_validity",
    "IdaTransform",
    "merge_states",
    "MLC_LSB",
    "MLC_MSB",
    "conventional_mlc",
    "QLC_BITS",
    "conventional_qlc",
    "ReadLatencyModel",
    "CSB",
    "LSB",
    "MSB",
    "PAGE_NAMES",
    "conventional_tlc",
    "tlc_232",
]
