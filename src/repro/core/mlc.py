"""Named MLC coding (Sec. V-G).

MLC cells store two bits (LSB, MSB) across four voltage states.  Under the
standard coding the LSB reads with one sense and the MSB with two; the
paper's MLC device reads them in 65 us and 115 us respectively (Micron
MLC+ spec [39]), i.e. ``tR_base = 65 us`` and ``dtR = 50 us``.
"""

from __future__ import annotations

from .coding import GrayCoding, standard_coding

__all__ = ["MLC_LSB", "MLC_MSB", "conventional_mlc"]

#: Bit index of the fast MLC page.
MLC_LSB = 0
#: Bit index of the slow MLC page.
MLC_MSB = 1


def conventional_mlc() -> GrayCoding:
    """The standard MLC coding: senses (LSB, MSB) = (1, 2)."""
    return standard_coding(2, name="mlc-conventional-1-2")
