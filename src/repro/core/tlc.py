"""Named TLC codings.

Two codings appear in the paper:

* the **conventional** 1-2-4 coding of Fig. 2 (LSB/CSB/MSB read with 1/2/4
  senses) — this is the baseline throughout the evaluation; and
* an **alternate 2-3-2** coding some vendors use (Sec. III-B), whose read
  variation is milder (2/3/2 senses) but which still benefits from IDA in
  higher densities.
"""

from __future__ import annotations

from .coding import GrayCoding, standard_coding

__all__ = [
    "LSB",
    "CSB",
    "MSB",
    "PAGE_NAMES",
    "conventional_tlc",
    "tlc_232",
]

#: Bit index of the least-significant (fast) page of a TLC wordline.
LSB = 0
#: Bit index of the center page.
CSB = 1
#: Bit index of the most-significant (slow) page.
MSB = 2

#: Human-readable page-type names, indexed by bit position.
PAGE_NAMES = ("LSB", "CSB", "MSB")


def conventional_tlc() -> GrayCoding:
    """The paper's Fig. 2 coding: senses (LSB, CSB, MSB) = (1, 2, 4).

    Read rules reproduced by this table:

    * LSB: one sense at V4;
    * CSB: two senses at V2, V6;
    * MSB: four senses at V1, V3, V5, V7.
    """
    return standard_coding(3, name="tlc-conventional-1-2-4")


def tlc_232() -> GrayCoding:
    """A vendor-alternate TLC coding with senses (LSB, CSB, MSB) = (2, 3, 2).

    Built from the Gray flip sequence L C M C L C M starting at the erased
    state (1, 1, 1); the read variation (2/3/2) is much smaller than the
    conventional coding's (1/2/4), which is why the paper notes such
    codings "suffer much less" — but IDA still composes with them.
    """
    flips = (LSB, CSB, MSB, CSB, LSB, CSB, MSB)
    states = [(1, 1, 1)]
    for bit in flips:
        previous = list(states[-1])
        previous[bit] ^= 1
        states.append(tuple(previous))
    return GrayCoding("tlc-alternate-2-3-2", tuple(states))
