"""The Invalid Data-Aware (IDA) coding transform (Sec. III-B, Figs. 5 & 6).

Once some bits of a cell have been *invalidated* (their logical pages were
overwritten elsewhere), distinct voltage states that agree on the surviving
bits have become indistinguishable in every way that matters.  The IDA
transform merges them: every state moves **rightward** (higher voltage —
the only direction ISPP can move a cell without an erase) onto the last
state sharing its valid-bit projection.  The surviving bits then read with
far fewer senses.

For the conventional TLC coding this reproduces the paper's examples:

* LSB invalid (Fig. 5): S1→S8, S2→S7, S3→S6, S4→S5; CSB reads with one
  sense (V6) instead of two, MSB with two (V5, V7) instead of four.
* LSB and CSB invalid (Table I cases 3–4): all states collapse onto
  {S7, S8}; MSB reads with a single sense.
* QLC with the two lower bits invalid (Fig. 6): sixteen states collapse to
  four; Bit 4 drops from 8 senses to 2, Bit 3 from 4 to 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .coding import BitTuple, GrayCoding

__all__ = ["IdaTransform", "merge_states"]


def merge_states(
    coding: GrayCoding, valid_bits: Sequence[int]
) -> tuple[int, ...]:
    """Per-state move map of the IDA merge.

    Returns a tuple ``move`` with ``move[s]`` the state that state ``s``
    is driven to.  ``move[s] >= s`` always holds (ISPP feasibility): the
    representative of a projection is its *rightmost* occurrence, and each
    state trivially shares its own projection.

    Args:
        coding: The base (conventional) coding.
        valid_bits: Bit positions whose data is still valid, e.g.
            ``(1, 2)`` for a TLC wordline whose LSB was invalidated.

    Raises:
        ValueError: if ``valid_bits`` is empty (nothing left to read — the
            paper's "case 8", where there is nothing to do) or contains
            duplicates / out-of-range positions.
    """
    valid = tuple(sorted(set(valid_bits)))
    if not valid:
        raise ValueError("IDA merge needs at least one valid bit")
    if valid != tuple(sorted(valid_bits)):
        raise ValueError(f"duplicate bit positions in {valid_bits!r}")
    if valid[0] < 0 or valid[-1] >= coding.bits:
        raise ValueError(
            f"valid bits {valid!r} out of range for {coding.bits}-bit coding"
        )

    def projection(state: int) -> BitTuple:
        return tuple(coding.states[state][bit] for bit in valid)

    rightmost: dict[BitTuple, int] = {}
    for state in range(coding.num_states):
        rightmost[projection(state)] = state
    return tuple(rightmost[projection(state)] for state in range(coding.num_states))


@dataclass(frozen=True)
class IdaTransform:
    """A fully-resolved IDA reprogramming of one coding.

    Attributes:
        base: The conventional coding the block was written with.
        valid_bits: Ascending bit positions that remain valid.
        move_map: ``move_map[s]`` = target state of original state ``s``.
        merged_states: The surviving states, in voltage order.
    """

    base: GrayCoding
    valid_bits: tuple[int, ...]
    move_map: tuple[int, ...] = field(init=False)
    merged_states: tuple[int, ...] = field(init=False)

    def __post_init__(self) -> None:
        valid = tuple(sorted(set(self.valid_bits)))
        object.__setattr__(self, "valid_bits", valid)
        move = merge_states(self.base, valid)
        object.__setattr__(self, "move_map", move)
        object.__setattr__(self, "merged_states", tuple(sorted(set(move))))

    # ------------------------------------------------------------------
    # Read structure after the merge
    # ------------------------------------------------------------------
    def boundaries(self, bit: int) -> tuple[int, ...]:
        """Original read-voltage indices still needed to resolve ``bit``.

        A boundary is kept exactly where the bit's value flips between
        consecutive *merged* states; the hardware read voltage is the one
        just below the right-hand state (``V_s`` for merged neighbour pair
        ending at state ``s``), matching Fig. 5's use of V5/V6/V7.
        """
        if bit not in self.valid_bits:
            raise ValueError(f"bit {bit} is invalid under this transform")
        kept = []
        ordered = self.merged_states
        for left, right in zip(ordered, ordered[1:]):
            if self.base.states[left][bit] != self.base.states[right][bit]:
                kept.append(right)
        return tuple(kept)

    def senses(self, bit: int) -> int:
        """Senses needed to read ``bit`` after reprogramming."""
        return len(self.boundaries(bit))

    def sense_counts(self) -> dict[int, int]:
        """Post-merge sense count for every valid bit."""
        return {bit: self.senses(bit) for bit in self.valid_bits}

    def read_voltages(self, bit: int) -> tuple[str, ...]:
        """Paper-style names of the read voltages used after the merge."""
        return tuple(f"V{i}" for i in self.boundaries(bit))

    # ------------------------------------------------------------------
    # Programming-side structure
    # ------------------------------------------------------------------
    def target_state(self, state: int) -> int:
        """Where ISPP must drive a cell currently in ``state``."""
        return self.move_map[state]

    def moved_states(self) -> tuple[int, ...]:
        """States that actually change during the voltage adjustment."""
        return tuple(
            s for s in range(self.base.num_states) if self.move_map[s] != s
        )

    def max_move_distance(self) -> int:
        """Largest rightward state jump the adjustment performs.

        The ISPP loop count — and so the adjustment latency — is
        proportional to the voltage range it must sweep; the paper notes
        the IDA adjustment sweeps about half the range of a full MSB
        program (Sec. III-B, "Voltage Adjustment Feasibility").
        """
        return max(
            self.move_map[s] - s for s in range(self.base.num_states)
        )

    def decode(self, state: int, bit: int) -> int:
        """Value of valid ``bit`` for a cell at merged ``state``."""
        if bit not in self.valid_bits:
            raise ValueError(f"bit {bit} is invalid under this transform")
        if state not in self.merged_states:
            raise ValueError(
                f"state S{state + 1} cannot occur after this IDA merge"
            )
        return self.base.states[state][bit]

    def describe(self) -> str:
        """Multi-line human-readable dump (used by the coding explorer)."""
        valid_names = ", ".join(f"bit{b}" for b in self.valid_bits)
        lines = [
            f"IDA transform of {self.base.name!r} with valid bits [{valid_names}]",
            "moves: "
            + ", ".join(
                f"S{s + 1}->S{t + 1}"
                for s, t in enumerate(self.move_map)
                if s != t
            ),
            "merged states: " + ", ".join(f"S{s + 1}" for s in self.merged_states),
        ]
        for bit in self.valid_bits:
            lines.append(
                f"bit{bit}: {self.base.senses(bit)} -> {self.senses(bit)} senses "
                f"({', '.join(self.read_voltages(bit)) or 'none'})"
            )
        return "\n".join(lines)
