"""Named QLC coding (Fig. 6 and the Sec. V-G future-work extension).

QLC cells store four bits across sixteen voltage states.  Under the standard
coding family the four bits (Bit 1 .. Bit 4 in the paper's figure, LSB
first) read with 1/2/4/8 senses — an even harsher read-variation problem
than TLC, which is why the paper expects IDA to help QLC the most.
"""

from __future__ import annotations

from .coding import GrayCoding, standard_coding

__all__ = ["QLC_BITS", "conventional_qlc"]

#: Number of bits per QLC cell.
QLC_BITS = 4


def conventional_qlc() -> GrayCoding:
    """The standard QLC coding: senses (Bit1..Bit4) = (1, 2, 4, 8)."""
    return standard_coding(4, name="qlc-conventional-1-2-4-8")
