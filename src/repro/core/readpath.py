"""Read-latency model: from sense counts to memory-access time (Sec. II-C).

The memory-access stage of a flash read applies one read voltage per sense
and checks whether the cell conducts.  The paper's TLC device reads its
1/2/4-sense pages in 50/100/150 us — latency grows by a fixed step
``dtR`` each time the sense count *doubles* (the extra senses at a given
level share wordline setup and can be pipelined).  We therefore model

    tR(senses) = tR_base + dtR * log2(senses)

which reproduces the Table II numbers (tR_base = 50 us, dtR = 50 us), the
MLC device of Sec. V-G (65/115 us with dtR = 50 us) and parameterises the
Fig. 9 dtR sweep with a single knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from .coding import GrayCoding, sense_level
from .ida import IdaTransform

__all__ = ["ReadLatencyModel"]


@dataclass(frozen=True)
class ReadLatencyModel:
    """Maps sense counts to memory-access latencies.

    Attributes:
        tr_base_us: Latency of a single-sense read (the LSB read).
        dtr_us: Latency step per doubling of the sense count; the paper's
            "delta-tR" device parameter swept in Fig. 9.
    """

    tr_base_us: float = 50.0
    dtr_us: float = 50.0

    def __post_init__(self) -> None:
        if self.tr_base_us <= 0:
            raise ValueError("tr_base_us must be positive")
        if self.dtr_us < 0:
            raise ValueError("dtr_us must be non-negative")

    def latency_us(self, senses: int) -> float:
        """Memory-access latency of a read needing ``senses`` senses.

        Sense counts that are not powers of two (the 2-3-2 coding's CSB
        read, for instance) are charged at the next power-of-two level,
        the conservative choice.
        """
        if senses < 1:
            raise ValueError("a read needs at least one sense")
        rounded = 1 << (senses - 1).bit_length()
        return self.tr_base_us + self.dtr_us * sense_level(rounded)

    def page_latency_us(self, coding: GrayCoding, bit: int) -> float:
        """Latency of reading ``bit`` of a conventionally-coded wordline."""
        return self.latency_us(coding.senses(bit))

    def ida_latency_us(self, transform: IdaTransform, bit: int) -> float:
        """Latency of reading ``bit`` of an IDA-reprogrammed wordline."""
        return self.latency_us(transform.senses(bit))

    def with_dtr(self, dtr_us: float) -> "ReadLatencyModel":
        """A copy with a different dtR (the Fig. 9 sweep)."""
        return ReadLatencyModel(tr_base_us=self.tr_base_us, dtr_us=dtr_us)
