"""Multi-level-cell Gray codings and their read-sense structure.

A *coding* assigns, to each of the ``2**bits`` threshold-voltage states of a
flash cell (ordered from the erased state upward), a tuple of bit values —
one per logical page sharing the wordline.  Reading one bit of the cell means
discovering on which side of certain *read voltages* (state boundaries) the
cell's threshold voltage lies; the number of boundaries at which that bit
changes value is exactly the number of memory senses the read needs.

This module provides:

* :class:`GrayCoding` — an immutable, validated coding with boundary /
  sense-count queries.  This is the object every other part of the library
  (the IDA transform, the flash cell model, the timing model) consumes.
* :func:`standard_coding` — the closed-form construction of the most
  widely-used coding family (Fig. 2 of the paper): for a ``b``-bit cell,
  bit ``k`` (0 = LSB) needs ``2**k`` senses, so TLC reads LSB/CSB/MSB with
  1/2/4 senses and QLC reads its four bits with 1/2/4/8 senses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "BitTuple",
    "GrayCoding",
    "standard_coding",
    "sense_level",
]


BitTuple = tuple[int, ...]
"""Bit values of one voltage state, ordered LSB first (index 0 = LSB)."""


def sense_level(senses: int) -> int:
    """Return the *latency level* of a read needing ``senses`` senses.

    The paper's device reads 1/2/4-sense pages in 50/100/150 us: latency
    grows by a fixed step ``dtR`` each time the sense count doubles.  The
    level is therefore ``log2(senses)`` and the read latency is
    ``tR_base + dtR * level`` (see :mod:`repro.core.readpath`).

    Raises:
        ValueError: if ``senses`` is not a positive power of two.
    """
    if senses < 1 or senses & (senses - 1):
        raise ValueError(f"sense count must be a positive power of two, got {senses}")
    return senses.bit_length() - 1


def _validate_states(states: Sequence[BitTuple], bits: int) -> None:
    expected = 1 << bits
    if len(states) != expected:
        raise ValueError(
            f"a {bits}-bit coding needs {expected} states, got {len(states)}"
        )
    seen = set()
    for index, state in enumerate(states):
        if len(state) != bits:
            raise ValueError(
                f"state S{index + 1} has {len(state)} bits, expected {bits}"
            )
        if any(bit not in (0, 1) for bit in state):
            raise ValueError(f"state S{index + 1} has non-binary values: {state}")
        if state in seen:
            raise ValueError(f"duplicate bit pattern {state} at S{index + 1}")
        seen.add(state)
    for index in range(len(states) - 1):
        differing = sum(
            a != b for a, b in zip(states[index], states[index + 1])
        )
        if differing != 1:
            raise ValueError(
                "adjacent states must differ in exactly one bit "
                f"(S{index + 1} -> S{index + 2} differs in {differing})"
            )


@dataclass(frozen=True)
class GrayCoding:
    """An immutable multi-level-cell coding.

    Attributes:
        name: Human-readable identifier (e.g. ``"tlc-1-2-4"``).
        states: One :data:`BitTuple` per voltage state, ordered from the
            erased (lowest-voltage) state upward.  ``states[0]`` is the
            all-ones erased state in every coding used by the paper.
        bits: Number of bits per cell (2 = MLC, 3 = TLC, 4 = QLC).
    """

    name: str
    states: tuple[BitTuple, ...]
    bits: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.states:
            raise ValueError("a coding needs at least two states")
        bits = len(self.states[0])
        if bits < 1:
            raise ValueError("a coding needs at least one bit per cell")
        _validate_states(self.states, bits)
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "states", tuple(tuple(s) for s in self.states))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of voltage states (``2**bits``)."""
        return len(self.states)

    def bit_value(self, state: int, bit: int) -> int:
        """Value of ``bit`` (0 = LSB) when the cell sits in ``state``."""
        return self.states[state][bit]

    def state_for(self, bits: Sequence[int]) -> int:
        """Index of the unique state encoding the given bit tuple.

        Raises:
            KeyError: if no state encodes ``bits``.
        """
        target = tuple(bits)
        for index, state in enumerate(self.states):
            if state == target:
                return index
        raise KeyError(f"no state encodes {target} in coding {self.name!r}")

    def boundaries(self, bit: int) -> tuple[int, ...]:
        """Read-voltage boundaries needed to resolve ``bit``.

        Boundary ``i`` separates state ``i-1`` from state ``i`` (so it
        corresponds to read voltage ``V_i`` in the paper's notation, with
        ``i`` in ``1..num_states-1``).  A boundary is needed exactly when
        the bit's value differs across it.
        """
        if not 0 <= bit < self.bits:
            raise IndexError(f"bit {bit} out of range for {self.bits}-bit coding")
        return tuple(
            i
            for i in range(1, self.num_states)
            if self.states[i - 1][bit] != self.states[i][bit]
        )

    def senses(self, bit: int) -> int:
        """Number of memory senses a read of ``bit`` requires."""
        return len(self.boundaries(bit))

    def sense_counts(self) -> tuple[int, ...]:
        """Sense count for every bit, LSB first."""
        return tuple(self.senses(bit) for bit in range(self.bits))

    def read_voltages(self, bit: int) -> tuple[str, ...]:
        """Paper-style read-voltage names (``V1``..``V7``) for ``bit``."""
        return tuple(f"V{i}" for i in self.boundaries(bit))

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def decode(self, state: int) -> BitTuple:
        """All bit values stored by a cell in ``state``."""
        return self.states[state]

    def encode(self, bits: Sequence[int]) -> int:
        """Alias of :meth:`state_for` (program the cell to this state)."""
        return self.state_for(bits)

    def read_bit_by_sensing(self, state: int, bit: int) -> int:
        """Resolve ``bit`` the way hardware does: by boundary comparisons.

        The cell conducts ("on") at a read voltage iff its threshold state
        lies strictly below the boundary.  The bit value is recovered from
        the parity of crossed boundaries, anchored at the erased state's
        value — this is the generalisation of the paper's LSB/CSB/MSB read
        rules and is checked against :meth:`decode` in the test suite.
        """
        crossed = sum(1 for b in self.boundaries(bit) if state >= b)
        anchor = self.states[0][bit]
        return anchor if crossed % 2 == 0 else 1 - anchor

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable dump (used by the coding explorer)."""
        lines = [f"coding {self.name!r}: {self.bits} bits, {self.num_states} states"]
        header = "state | " + " ".join(f"bit{b}" for b in range(self.bits))
        lines.append(header)
        for index, state in enumerate(self.states):
            row = f"  S{index + 1:<3} | " + "    ".join(str(v) for v in state)
            lines.append(row)
        for bit in range(self.bits):
            lines.append(
                f"bit{bit}: {self.senses(bit)} senses at "
                + ", ".join(self.read_voltages(bit))
            )
        return "\n".join(lines)


def _standard_bit(state: int, bit: int, bits: int) -> int:
    """Closed form for the standard coding family (see module docstring)."""
    shifted = state >> (bits - 1 - bit)
    return 1 if ((shifted + 1) // 2) % 2 == 0 else 0


def standard_coding(bits: int, name: str | None = None) -> GrayCoding:
    """Build the standard 1/2/4/... coding for a ``bits``-bit cell.

    This is the "most widely-used" coding of the paper's Fig. 2: bit ``k``
    (LSB = 0) flips exactly at the odd multiples of ``2**(bits-1-k)`` and
    therefore needs ``2**k`` senses.  For ``bits=3`` it reproduces the
    paper's S1..S8 table, e.g. S5 = (LSB=0, CSB=0, MSB=1).
    """
    if bits < 1:
        raise ValueError("bits must be >= 1")
    states = tuple(
        tuple(_standard_bit(state, bit, bits) for bit in range(bits))
        for state in range(1 << bits)
    )
    label = name or {1: "slc", 2: "mlc-1-2", 3: "tlc-1-2-4", 4: "qlc-1-2-4-8"}.get(
        bits, f"standard-{bits}bit"
    )
    return GrayCoding(label, states)
