"""Wordline case classification — Table I of the paper.

During the IDA-modified data refresh, each wordline of the target block is
classified by the validity of its pages.  For TLC the eight combinations of
(LSB, CSB, MSB) validity map onto eight cases:

====  =======  =======  =======  ==========================================
case  LSB      CSB      MSB      action
====  =======  =======  =======  ==========================================
1     valid    valid    valid    move LSB; adjust voltage for CSB/MSB
2     invalid  valid    valid    adjust voltage for CSB/MSB
3     valid    invalid  valid    move LSB; adjust voltage for MSB
4     invalid  invalid  valid    adjust voltage for MSB
5     valid    valid    invalid  move LSB and CSB
6     invalid  valid    invalid  move CSB
7     valid    invalid  invalid  move LSB
8     invalid  invalid  invalid  nothing to do
====  =======  =======  =======  ==========================================

The classifier below generalises the paper's policy to any cell density:
IDA is applied iff the top bit (MSB) is valid; the bits kept in place are
the maximal *contiguous* run of valid bits ending at the MSB and starting
above bit 0 (the paper always evicts the LSB — cases 1 and 3 are converted
into cases 2 and 4 by moving it); every other valid bit is moved to the
new block, as the original refresh would have done.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

__all__ = [
    "WordlineAction",
    "WordlineDecision",
    "classify_validity",
    "classify_tlc_case",
    "TLC_CASE_TABLE",
]


class WordlineAction(Enum):
    """What the modified refresh does with a wordline."""

    ADJUST = "adjust"
    """Apply the IDA voltage adjustment (possibly after moving some pages)."""

    MOVE = "move"
    """Move all valid pages to the new block, as the baseline refresh does."""

    NOTHING = "nothing"
    """No valid pages — nothing to do (the block erase reclaims it later)."""


@dataclass(frozen=True)
class WordlineDecision:
    """Outcome of classifying one wordline.

    Attributes:
        action: The high-level action (adjust / move / nothing).
        pages_to_move: Bit positions whose valid pages are written to the
            new block (for ``ADJUST`` this is the evicted lower pages; for
            ``MOVE`` it is every valid page).
        adjust_bits: Bit positions that stay in the wordline and are read
            through the IDA coding afterwards (empty unless ``ADJUST``).
        case: The 1-based Table I case number for TLC wordlines, or
            ``None`` for other densities.
    """

    action: WordlineAction
    pages_to_move: tuple[int, ...]
    adjust_bits: tuple[int, ...]
    case: int | None = None

    @property
    def applies_ida(self) -> bool:
        """Whether this wordline is reprogrammed with the IDA coding."""
        return self.action is WordlineAction.ADJUST


def classify_validity(valid: Sequence[bool]) -> WordlineDecision:
    """Classify a wordline by its per-bit validity, LSB first.

    Args:
        valid: ``valid[k]`` is True iff the page stored in bit ``k`` of
            this wordline still holds live data.

    Returns:
        The refresh decision for this wordline (see class docstring for
        the policy).
    """
    flags = tuple(bool(v) for v in valid)
    if len(flags) < 2:
        raise ValueError("IDA classification needs a multi-bit cell")
    bits = len(flags)
    case = _tlc_case_number(flags) if bits == 3 else None

    if not any(flags):
        return WordlineDecision(WordlineAction.NOTHING, (), (), case)

    msb = bits - 1
    if not flags[msb]:
        moved = tuple(k for k in range(bits) if flags[k])
        return WordlineDecision(WordlineAction.MOVE, moved, (), case)

    # MSB valid: keep the maximal contiguous valid run ending at the MSB,
    # never including bit 0 (the paper always evicts the LSB).
    start = msb
    while start - 1 >= 1 and flags[start - 1]:
        start -= 1
    adjust = tuple(range(start, bits))
    moved = tuple(k for k in range(start) if flags[k])
    return WordlineDecision(WordlineAction.ADJUST, moved, adjust, case)


def _tlc_case_number(flags: tuple[bool, ...]) -> int:
    """Table I case number (1-8) for a TLC validity tuple (LSB, CSB, MSB)."""
    lsb, csb, msb = flags
    table = {
        (True, True, True): 1,
        (False, True, True): 2,
        (True, False, True): 3,
        (False, False, True): 4,
        (True, True, False): 5,
        (False, True, False): 6,
        (True, False, False): 7,
        (False, False, False): 8,
    }
    return table[(lsb, csb, msb)]


def classify_tlc_case(lsb_valid: bool, csb_valid: bool, msb_valid: bool) -> WordlineDecision:
    """Table I entry for an explicit TLC validity triple."""
    return classify_validity((lsb_valid, csb_valid, msb_valid))


#: All eight Table I rows, keyed by case number, for documentation and tests.
TLC_CASE_TABLE: dict[int, WordlineDecision] = {
    decision.case: decision
    for decision in (
        classify_tlc_case(lsb, csb, msb)
        for msb in (True, False)
        for csb in (True, False)
        for lsb in (True, False)
    )
}
