"""SSD simulator substrate: engine, resources, pipeline, policy, the SSD."""

from .backends import (
    ENGINE_BACKENDS,
    BatchBackend,
    ExecutionBackend,
    ReferenceBackend,
    make_backend,
)
from .drivers import run_closed_loop, run_open_loop
from .engine import SimEngine
from .metrics import LatencyStats, ReadMixCounters, SimMetrics
from .pipeline import (
    OpPipeline,
    PageRecord,
    RequestSpan,
    Stage,
    StagePlanner,
    adjust_stages,
    erase_stages,
    read_stages,
    write_stages,
)
from .policy import (
    POLICIES,
    FcfsPolicy,
    ReadFirstPolicy,
    SchedulingPolicy,
    ThrottledInternalPolicy,
    make_policy,
)
from .resources import IoPriority, Resource
from .scheduler import HostRequest, OutstandingRequest
from .ssd import SsdSimulator

__all__ = [
    "SimEngine",
    "LatencyStats",
    "ReadMixCounters",
    "SimMetrics",
    "run_open_loop",
    "run_closed_loop",
    "OpPipeline",
    "PageRecord",
    "RequestSpan",
    "Stage",
    "StagePlanner",
    "read_stages",
    "write_stages",
    "adjust_stages",
    "erase_stages",
    "ENGINE_BACKENDS",
    "ExecutionBackend",
    "ReferenceBackend",
    "BatchBackend",
    "make_backend",
    "POLICIES",
    "SchedulingPolicy",
    "ReadFirstPolicy",
    "FcfsPolicy",
    "ThrottledInternalPolicy",
    "make_policy",
    "IoPriority",
    "Resource",
    "HostRequest",
    "OutstandingRequest",
    "SsdSimulator",
]
