"""SSD simulator substrate: event engine, resources, metrics, the SSD."""

from .engine import SimEngine
from .metrics import LatencyStats, ReadMixCounters, SimMetrics
from .resources import IoPriority, Resource
from .scheduler import HostRequest, OutstandingRequest
from .ssd import SsdSimulator

__all__ = [
    "SimEngine",
    "LatencyStats",
    "ReadMixCounters",
    "SimMetrics",
    "IoPriority",
    "Resource",
    "HostRequest",
    "OutstandingRequest",
    "SsdSimulator",
]
