"""Pluggable scheduling policies for the simulator's resource queues.

The paper's FTL uses *read-first scheduling* (Table II): pending host
reads are dispatched ahead of host writes, which in turn go ahead of
internal (GC / refresh) traffic.  That is one point in a design space —
alternative read paths and reclaim schemes (see ROADMAP.md) need the
dispatch policy to be a separate object from the pipeline staging, so it
lives here as a small strategy interface:

* a policy maps each op's *dispatch class* (:class:`IoPriority`) to the
  *resource queue* it waits in — collapsing classes into one queue gives
  plain FCFS, keeping them distinct gives strict priority;
* a policy may also pace chained internal (GC / refresh) traffic via
  :attr:`SchedulingPolicy.internal_gap_us`, the throttling knob.

Policies never suspend in-service operations: scheduling stays
non-preemptive exactly as in the paper (an in-flight 2.3 ms program
cannot be stopped), which is why slow MSB senses and programs inflate
read wait times — the queueing effect behind Sec. V-A's "indirect"
improvement.
"""

from __future__ import annotations

from .resources import IoPriority

__all__ = [
    "SchedulingPolicy",
    "ReadFirstPolicy",
    "FcfsPolicy",
    "ThrottledInternalPolicy",
    "POLICIES",
    "make_policy",
]


class SchedulingPolicy:
    """Strategy interface: where each dispatch class queues.

    Attributes:
        name: Registry / manifest identifier.
        internal_gap_us: Idle gap inserted between the ops of one chained
            internal (GC / refresh) sequence; ``0`` issues each op the
            instant its predecessor completes.
    """

    name: str = "base"
    internal_gap_us: float = 0.0

    def queue_class(self, klass: IoPriority) -> IoPriority:
        """Resource queue the given dispatch class waits in."""
        raise NotImplementedError

    def describe(self) -> dict:
        """Manifest-ready description of this policy."""
        return {"name": self.name, "internal_gap_us": self.internal_gap_us}


class ReadFirstPolicy(SchedulingPolicy):
    """The paper's Table II default: reads > writes > internal."""

    name = "read-first"

    def queue_class(self, klass: IoPriority) -> IoPriority:
        return klass


class FcfsPolicy(SchedulingPolicy):
    """Plain first-come-first-served: one queue, arrival order.

    Every dispatch class collapses into a single queue, so a host read
    arriving behind a queued program waits it out — the behaviour whose
    cost Table II's read-first scheduling exists to avoid.  Useful as the
    control arm when quantifying what read-first buys.
    """

    name = "fcfs"

    def queue_class(self, klass: IoPriority) -> IoPriority:
        return IoPriority.HOST_READ

    def describe(self) -> dict:
        return {"name": self.name, "single_queue": True}


class ThrottledInternalPolicy(SchedulingPolicy):
    """Read-first ordering plus rate-limited internal traffic.

    Chained GC / refresh sequences insert ``internal_gap_us`` of idle
    time between consecutive ops, so a refresh pass trickles into the
    die queues instead of saturating them back-to-back.  Priority alone
    cannot help a host read that arrives *while* an internal op is in
    service (scheduling is non-preemptive); spacing the internal ops
    bounds that exposure window.
    """

    name = "throttled"

    def __init__(self, internal_gap_us: float = 500.0) -> None:
        if internal_gap_us < 0:
            raise ValueError("internal_gap_us must be non-negative")
        self.internal_gap_us = internal_gap_us

    def queue_class(self, klass: IoPriority) -> IoPriority:
        return klass


#: Registry of selectable policies (CLI ``--policy`` / ``SystemSpec.policy``).
POLICIES: dict[str, type[SchedulingPolicy]] = {
    ReadFirstPolicy.name: ReadFirstPolicy,
    FcfsPolicy.name: FcfsPolicy,
    ThrottledInternalPolicy.name: ThrottledInternalPolicy,
}


def make_policy(spec: "SchedulingPolicy | str | None") -> SchedulingPolicy:
    """Resolve a policy instance from a name / instance / ``None``.

    ``None`` yields the paper's read-first default.  Unknown names raise
    ``ValueError`` listing the valid choices.
    """
    if spec is None:
        return ReadFirstPolicy()
    if isinstance(spec, SchedulingPolicy):
        return spec
    try:
        cls = POLICIES[spec]
    except KeyError:
        valid = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown scheduling policy {spec!r}; choose one of: {valid}"
        ) from None
    return cls()
