"""Contended hardware resources with class-based queueing.

Dies and channels serve one operation at a time, picking the oldest
operation of the highest non-empty queue class when they free up.  Which
queue an op waits in is the scheduling policy's decision
(:mod:`repro.sim.policy`): the paper's read-first default keeps one
queue per dispatch class, FCFS collapses them all into one.  Scheduling
is non-preemptive — an in-flight 2.3 ms program cannot be suspended —
which is exactly why slow MSB senses and programs inflate read wait
times, the queueing effect behind the paper's "indirect" improvement
(Sec. V-A).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable

from .engine import SimEngine

__all__ = [
    "IoPriority",
    "Resource",
    "mean_utilisation",
    "aggregate_queue_waits",
    "aggregate_wait_breakdown",
]


class IoPriority(IntEnum):
    """Dispatch classes, highest priority first."""

    HOST_READ = 0
    HOST_WRITE = 1
    INTERNAL = 2


@dataclass(slots=True)
class _PendingOp:
    duration: float
    on_done: Callable[[float, float], None]
    enqueued_us: float
    klass: IoPriority
    # Wait-class profiling snapshot, filled only when the owning
    # resource's profiling is enabled: (per-class busy integral at
    # enqueue, (class, end_us) of the op then in service or None).
    snapshot: tuple | None = None


class Resource:
    """A serially-shared device resource (die, channel).

    Operations are served one at a time; when the resource frees up, the
    oldest operation of the highest non-empty priority class starts.

    Attributes:
        engine: The simulation engine supplying the clock.
        name: Diagnostic label.
        kind: Resource class this instance belongs to (``"die"`` /
            ``"channel"``); profiler track grouping keys on it.
        index: Position within its kind (die 3, channel 0, ...).
        busy_us: Accumulated service time (for utilisation reporting).
        busy_us_by_class: Accumulated service time per dispatch class.
    """

    def __init__(
        self,
        engine: SimEngine,
        name: str,
        kind: str = "resource",
        index: int = 0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.kind = kind
        self.index = index
        self.busy_us = 0.0
        #: Service time per dispatch class — the busy integral the
        #: wait-class attribution differences (one float add per start).
        self.busy_us_by_class = [0.0] * len(IoPriority)
        self._busy = False
        self._queues: tuple[deque[_PendingOp], ...] = tuple(
            deque() for _ in IoPriority
        )
        # Queue-wait accounting per dispatch class: how long ops of each
        # priority sat queued before service.  Always on (two float ops
        # per dispatch) — it is what separates "the die was slow" from
        # "the die was busy with someone else's work" in run reports.
        self._ops_served = [0] * len(IoPriority)
        self._wait_us = [0.0] * len(IoPriority)
        # Wait-class breakdown, gated behind enable_wait_profile():
        # *who* a waiting op spent its queue time behind.  Row = waiter's
        # dispatch class, column = server's dispatch class.
        # ``_wait_behind`` counts service periods that *started* during
        # the wait (the scheduler chose someone else); ``_wait_inflight``
        # counts the remainder of the op already in service at enqueue
        # (non-preemptive exposure).  Per waiting op the two sum exactly
        # to its queue wait.
        self.profile_waits = False
        self._wait_behind = [
            [0.0] * len(IoPriority) for _ in IoPriority
        ]
        self._wait_inflight = [
            [0.0] * len(IoPriority) for _ in IoPriority
        ]
        self._inflight: tuple[IoPriority, float] | None = None

    @property
    def is_busy(self) -> bool:
        return self._busy

    @property
    def queued(self) -> int:
        """Operations waiting (not counting the one in service)."""
        return sum(len(q) for q in self._queues)

    def queued_by_class(self) -> dict[str, int]:
        """Waiting ops per dispatch class (telemetry sampling only).

        Depths are counted by each op's *dispatch* class even when the
        scheduling policy collapses several classes into one queue
        (FCFS), so the breakdown answers "whose work is waiting" rather
        than "which queue is long".
        """
        depths = {priority.name.lower(): 0 for priority in IoPriority}
        for queue in self._queues:
            for op in queue:
                depths[op.klass.name.lower()] += 1
        return depths

    def submit(
        self,
        priority: IoPriority,
        duration: float,
        on_done: Callable[[float, float], None],
        queue: IoPriority | None = None,
    ) -> None:
        """Enqueue an operation.

        Args:
            priority: Dispatch class (drives queue-wait accounting).
            duration: Service time in microseconds.
            on_done: Called as ``on_done(start_us, end_us)`` when the
                operation completes.
            queue: Queue class to wait in; defaults to ``priority``.  A
                scheduling policy may map several dispatch classes onto
                one queue (e.g. FCFS collapses all three) — accounting
                stays per dispatch class either way.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        # Always enqueue, then dispatch: a submission arriving while the
        # resource is momentarily idle (e.g. from a completion callback
        # that chains background work) must not jump ahead of
        # higher-priority operations already waiting.
        op = _PendingOp(duration, on_done, self.engine.now, priority)
        if self.profile_waits:
            op.snapshot = (tuple(self.busy_us_by_class), self._inflight)
        self._queues[queue if queue is not None else priority].append(op)
        self._dispatch_next()

    def enable_wait_profile(self) -> None:
        """Turn on the wait-class breakdown for subsequent submissions."""
        self.profile_waits = True

    def _start(self, op: _PendingOp) -> None:
        self._busy = True
        start = self.engine.now
        end = start + op.duration
        self.busy_us += op.duration
        self._ops_served[op.klass] += 1
        self._wait_us[op.klass] += start - op.enqueued_us
        if op.snapshot is not None:
            # While this op waited the resource was continuously busy, so
            # its wait tiles exactly into (a) the remainder of the op in
            # service at enqueue and (b) service periods that started
            # during the wait — which is the growth of the per-class busy
            # integral since the snapshot, because integrals are credited
            # here, at service start.
            base, inflight = op.snapshot
            if start > op.enqueued_us:
                if inflight is not None:
                    served_by, served_end = inflight
                    self._wait_inflight[op.klass][served_by] += max(
                        0.0, min(served_end, start) - op.enqueued_us
                    )
                behind = self._wait_behind[op.klass]
                for k in IoPriority:
                    behind[k] += self.busy_us_by_class[k] - base[k]
        self.busy_us_by_class[op.klass] += op.duration
        self._inflight = (op.klass, end)

        def finish() -> None:
            self._busy = False
            op.on_done(start, end)
            self._dispatch_next()

        self.engine.at(end, finish)

    def _dispatch_next(self) -> None:
        if self._busy:
            return
        for queue in self._queues:
            if queue:
                self._start(queue.popleft())
                return

    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this resource spent in service."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / elapsed_us)

    def queue_wait_stats(self) -> dict[str, dict[str, float]]:
        """Per-priority queue-wait accounting (served ops only)."""
        stats: dict[str, dict[str, float]] = {}
        for priority in IoPriority:
            ops = self._ops_served[priority]
            wait = self._wait_us[priority]
            stats[priority.name.lower()] = {
                "ops": ops,
                "total_wait_us": wait,
                "mean_wait_us": wait / ops if ops else 0.0,
            }
        return stats

    def wait_class_breakdown(self) -> dict[str, dict[str, dict[str, float]]]:
        """Who each class waited behind, split started-vs-inflight.

        ``breakdown[waiter][server]`` holds ``behind_us`` (service periods
        the scheduler started while the waiter sat queued) and
        ``inflight_us`` (remainder of the op already in service when the
        waiter arrived — non-preemptive exposure).  Summing both matrices
        over servers reproduces the waiter's ``total_wait_us`` from
        :meth:`queue_wait_stats` exactly, which is the invariant the
        profiler tests pin.  Empty until :meth:`enable_wait_profile`.
        """
        out: dict[str, dict[str, dict[str, float]]] = {}
        for waiter in IoPriority:
            row: dict[str, dict[str, float]] = {}
            for server in IoPriority:
                row[server.name.lower()] = {
                    "behind_us": self._wait_behind[waiter][server],
                    "inflight_us": self._wait_inflight[waiter][server],
                }
            out[waiter.name.lower()] = row
        return out


def mean_utilisation(resources: list[Resource], elapsed_us: float) -> float:
    """Mean service fraction across a resource class (dies or channels)."""
    if not resources:
        return 0.0
    return sum(r.utilisation(elapsed_us) for r in resources) / len(resources)


def aggregate_queue_waits(resources: list[Resource]) -> dict[str, dict[str, float]]:
    """Merge per-resource queue-wait stats into one entry per class.

    This is the "queueing at chips/channels" attribution the paper's
    Sec. V-A discusses — the indirect benefit of faster senses is visible
    here as shrinking host-read wait, not in the sense time itself.
    """
    merged: dict[str, dict[str, float]] = {}
    for resource in resources:
        for cls, stats in resource.queue_wait_stats().items():
            bucket = merged.setdefault(
                cls, {"ops": 0, "total_wait_us": 0.0, "mean_wait_us": 0.0}
            )
            bucket["ops"] += stats["ops"]
            bucket["total_wait_us"] += stats["total_wait_us"]
    for bucket in merged.values():
        if bucket["ops"]:
            bucket["mean_wait_us"] = bucket["total_wait_us"] / bucket["ops"]
    return merged


def aggregate_wait_breakdown(
    resources: list[Resource],
) -> dict[str, dict[str, dict[str, float]]]:
    """Merge per-resource wait-class breakdowns across a resource class.

    The answer to "how much of host-read queue time was spent behind
    writes?" for a whole die or channel array — the contention view the
    profiler embeds in run manifests.
    """
    merged: dict[str, dict[str, dict[str, float]]] = {}
    for resource in resources:
        for waiter, row in resource.wait_class_breakdown().items():
            target = merged.setdefault(waiter, {})
            for server, cells in row.items():
                bucket = target.setdefault(
                    server, {"behind_us": 0.0, "inflight_us": 0.0}
                )
                bucket["behind_us"] += cells["behind_us"]
                bucket["inflight_us"] += cells["inflight_us"]
    return merged
