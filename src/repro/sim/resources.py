"""Contended hardware resources with class-based queueing.

Dies and channels serve one operation at a time, picking the oldest
operation of the highest non-empty queue class when they free up.  Which
queue an op waits in is the scheduling policy's decision
(:mod:`repro.sim.policy`): the paper's read-first default keeps one
queue per dispatch class, FCFS collapses them all into one.  Scheduling
is non-preemptive — an in-flight 2.3 ms program cannot be suspended —
which is exactly why slow MSB senses and programs inflate read wait
times, the queueing effect behind the paper's "indirect" improvement
(Sec. V-A).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable

from .engine import SimEngine

__all__ = [
    "IoPriority",
    "Resource",
    "mean_utilisation",
    "aggregate_queue_waits",
]


class IoPriority(IntEnum):
    """Dispatch classes, highest priority first."""

    HOST_READ = 0
    HOST_WRITE = 1
    INTERNAL = 2


@dataclass(slots=True)
class _PendingOp:
    duration: float
    on_done: Callable[[float, float], None]
    enqueued_us: float
    klass: IoPriority


class Resource:
    """A serially-shared device resource (die, channel).

    Operations are served one at a time; when the resource frees up, the
    oldest operation of the highest non-empty priority class starts.

    Attributes:
        engine: The simulation engine supplying the clock.
        name: Diagnostic label.
        busy_us: Accumulated service time (for utilisation reporting).
    """

    def __init__(self, engine: SimEngine, name: str) -> None:
        self.engine = engine
        self.name = name
        self.busy_us = 0.0
        self._busy = False
        self._queues: tuple[deque[_PendingOp], ...] = tuple(
            deque() for _ in IoPriority
        )
        # Queue-wait accounting per dispatch class: how long ops of each
        # priority sat queued before service.  Always on (two float ops
        # per dispatch) — it is what separates "the die was slow" from
        # "the die was busy with someone else's work" in run reports.
        self._ops_served = [0] * len(IoPriority)
        self._wait_us = [0.0] * len(IoPriority)

    @property
    def is_busy(self) -> bool:
        return self._busy

    @property
    def queued(self) -> int:
        """Operations waiting (not counting the one in service)."""
        return sum(len(q) for q in self._queues)

    def submit(
        self,
        priority: IoPriority,
        duration: float,
        on_done: Callable[[float, float], None],
        queue: IoPriority | None = None,
    ) -> None:
        """Enqueue an operation.

        Args:
            priority: Dispatch class (drives queue-wait accounting).
            duration: Service time in microseconds.
            on_done: Called as ``on_done(start_us, end_us)`` when the
                operation completes.
            queue: Queue class to wait in; defaults to ``priority``.  A
                scheduling policy may map several dispatch classes onto
                one queue (e.g. FCFS collapses all three) — accounting
                stays per dispatch class either way.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        # Always enqueue, then dispatch: a submission arriving while the
        # resource is momentarily idle (e.g. from a completion callback
        # that chains background work) must not jump ahead of
        # higher-priority operations already waiting.
        self._queues[queue if queue is not None else priority].append(
            _PendingOp(duration, on_done, self.engine.now, priority)
        )
        self._dispatch_next()

    def _start(self, op: _PendingOp) -> None:
        self._busy = True
        start = self.engine.now
        end = start + op.duration
        self.busy_us += op.duration
        self._ops_served[op.klass] += 1
        self._wait_us[op.klass] += start - op.enqueued_us

        def finish() -> None:
            self._busy = False
            op.on_done(start, end)
            self._dispatch_next()

        self.engine.at(end, finish)

    def _dispatch_next(self) -> None:
        if self._busy:
            return
        for queue in self._queues:
            if queue:
                self._start(queue.popleft())
                return

    def utilisation(self, elapsed_us: float) -> float:
        """Fraction of ``elapsed_us`` this resource spent in service."""
        if elapsed_us <= 0:
            return 0.0
        return min(1.0, self.busy_us / elapsed_us)

    def queue_wait_stats(self) -> dict[str, dict[str, float]]:
        """Per-priority queue-wait accounting (served ops only)."""
        stats: dict[str, dict[str, float]] = {}
        for priority in IoPriority:
            ops = self._ops_served[priority]
            wait = self._wait_us[priority]
            stats[priority.name.lower()] = {
                "ops": ops,
                "total_wait_us": wait,
                "mean_wait_us": wait / ops if ops else 0.0,
            }
        return stats


def mean_utilisation(resources: list[Resource], elapsed_us: float) -> float:
    """Mean service fraction across a resource class (dies or channels)."""
    if not resources:
        return 0.0
    return sum(r.utilisation(elapsed_us) for r in resources) / len(resources)


def aggregate_queue_waits(resources: list[Resource]) -> dict[str, dict[str, float]]:
    """Merge per-resource queue-wait stats into one entry per class.

    This is the "queueing at chips/channels" attribution the paper's
    Sec. V-A discusses — the indirect benefit of faster senses is visible
    here as shrinking host-read wait, not in the sense time itself.
    """
    merged: dict[str, dict[str, float]] = {}
    for resource in resources:
        for cls, stats in resource.queue_wait_stats().items():
            bucket = merged.setdefault(
                cls, {"ops": 0, "total_wait_us": 0.0, "mean_wait_us": 0.0}
            )
            bucket["ops"] += stats["ops"]
            bucket["total_wait_us"] += stats["total_wait_us"]
    for bucket in merged.values():
        if bucket["ops"]:
            bucket["mean_wait_us"] = bucket["total_wait_us"] / bucket["ops"]
    return merged
