"""Deterministic discrete-event engine.

A minimal event loop in the DiskSim tradition: a time-ordered heap of
callbacks, with a monotone sequence number breaking ties so runs are fully
deterministic regardless of callback scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["SimEngine"]


class SimEngine:
    """Discrete-event simulation clock and queue.

    Time is in microseconds (float).  Events fire in (time, insertion)
    order; callbacks may schedule further events.
    """

    #: Scheduling slop absorbed silently: ``after()`` chains accumulate
    #: float round-off, so a callback computing an absolute time from an
    #: earlier ``now`` can land a hair in the past.  Deltas within this
    #: tolerance (absolute, or a few ulps at large clock values) clamp to
    #: ``now``; anything larger is a real scheduling bug and still raises.
    PAST_TOLERANCE_US = 1e-9

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processed = 0
        self._peak_pending = 0
        self._prev_now = 0.0

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    @property
    def peak_pending(self) -> int:
        """High-water mark of the event queue (for run reports)."""
        return self._peak_pending

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Times a round-off hair in the past (see :data:`PAST_TOLERANCE_US`)
        are clamped to ``now``.

        Raises:
            ValueError: if ``time`` lies genuinely in the past.
        """
        if time < self.now:
            if self.now - time <= max(
                self.PAST_TOLERANCE_US, abs(self.now) * 1e-12
            ):
                time = self.now
            else:
                raise ValueError(
                    f"cannot schedule at {time} (now is {self.now})"
                )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1
        if len(self._queue) > self._peak_pending:
            self._peak_pending = len(self._queue)

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, callback)

    def run(self, until: float | None = None) -> None:
        """Fire events until the queue empties (or simulated ``until``).

        With ``until`` set, events at times strictly greater are left in
        the queue and ``now`` advances to ``until``.
        """
        # Hot loop: the queue list and heappop are bound to locals, and
        # the unbounded drain pops directly instead of peek-then-pop
        # (callbacks mutate the queue in place via ``at``, never rebind
        # it, so the local alias stays valid).
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            while queue:
                time, _, callback = heappop(queue)
                self._prev_now = self.now
                self.now = time
                self._processed += 1
                callback()
            return
        while queue:
            time, _, callback = queue[0]
            if time > until:
                break
            heappop(queue)
            self._prev_now = self.now
            self.now = time
            self._processed += 1
            callback()
        if until > self.now:
            self.now = until

    def step(self) -> bool:
        """Fire exactly one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._prev_now = self.now
        self.now = time
        self._processed += 1
        callback()
        return True

    def rewind_to_previous_event(self) -> None:
        """Roll the clock back to the event before the current one.

        For pure-observer callbacks (sampling ticks) that outlive the real
        workload: the tick's own firing advanced ``now`` past the last
        event that did anything, which would leak into elapsed-time
        metrics.  Only legal once everything has drained.

        Raises:
            RuntimeError: if events are still pending.
        """
        if self._queue:
            raise RuntimeError("can only rewind when no events are pending")
        self.now = self._prev_now
