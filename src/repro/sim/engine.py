"""Deterministic discrete-event engine.

A minimal event loop in the DiskSim tradition: a time-ordered heap of
callbacks, with a monotone sequence number breaking ties so runs are fully
deterministic regardless of callback scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["SimEngine"]


class SimEngine:
    """Discrete-event simulation clock and queue.

    Time is in microseconds (float).  Events fire in (time, insertion)
    order; callbacks may schedule further events.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processed = 0

    @property
    def pending(self) -> int:
        """Number of events not yet fired."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Raises:
            ValueError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, callback)

    def run(self, until: float | None = None) -> None:
        """Fire events until the queue empties (or simulated ``until``).

        With ``until`` set, events at times strictly greater are left in
        the queue and ``now`` advances to ``until``.
        """
        while self._queue:
            time, _, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self.now = time
            self._processed += 1
            callback()
        if until is not None and until > self.now:
            self.now = until

    def step(self) -> bool:
        """Fire exactly one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self.now = time
        self._processed += 1
        callback()
        return True
