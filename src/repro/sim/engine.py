"""Deterministic discrete-event engine.

A minimal event loop in the DiskSim tradition: a time-ordered heap of
callbacks, with a monotone sequence number breaking ties so runs are fully
deterministic regardless of callback scheduling order.

Two batched fast paths support the vectorized execution backend while
preserving the (time, sequence) total order byte-for-byte:

* :meth:`SimEngine.add_stream` admits a *sorted* run of events without
  pushing them through the heap.  The stream reserves its sequence
  numbers up front — exactly the numbers the equivalent ``at()`` calls
  would have consumed — and the run loop merges stream head vs heap top
  by ``(time, seq)``, so event order is identical to the reference
  admission by construction while the heap stays small.
* :meth:`SimEngine.run_until_idle` drains the queue with per-event
  ``peak_pending`` bookkeeping switched off.  ``processed`` stays exact
  (each fired event counts as one); only the high-water mark — which is
  reported solely through the trace ``run_end`` event — goes untracked,
  so callers must keep tracking on whenever a tracer is attached.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

__all__ = ["SimEngine"]


class SimEngine:
    """Discrete-event simulation clock and queue.

    Time is in microseconds (float).  Events fire in (time, insertion)
    order; callbacks may schedule further events.
    """

    #: Scheduling slop absorbed silently: ``after()`` chains accumulate
    #: float round-off, so a callback computing an absolute time from an
    #: earlier ``now`` can land a hair in the past.  Deltas within this
    #: tolerance (absolute, or a few ulps at large clock values) clamp to
    #: ``now``; anything larger is a real scheduling bug and still raises.
    PAST_TOLERANCE_US = 1e-9

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processed = 0
        self._peak_pending = 0
        self._track_peak = True
        self._prev_now = 0.0
        self._stream: list[tuple[float, int, Callable[[], None]]] = []
        self._stream_pos = 0

    @property
    def pending(self) -> int:
        """Number of events not yet fired (heap plus admitted stream)."""
        return len(self._queue) + len(self._stream) - self._stream_pos

    @property
    def processed(self) -> int:
        """Number of events fired so far."""
        return self._processed

    @property
    def peak_pending(self) -> int:
        """High-water mark of the event queue (for run reports).

        Meaningful only while per-event tracking is on (the default);
        :meth:`run_until_idle` with ``track_peak=False`` and
        :meth:`add_stream` trade this statistic for speed.
        """
        return self._peak_pending

    def _clamped(self, time: float) -> float:
        """Validate a target time against the clock (shared with at())."""
        if time < self.now:
            if self.now - time <= max(
                self.PAST_TOLERANCE_US, abs(self.now) * 1e-12
            ):
                return self.now
            raise ValueError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        return time

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute ``time``.

        Times a round-off hair in the past (see :data:`PAST_TOLERANCE_US`)
        are clamped to ``now``.

        Raises:
            ValueError: if ``time`` lies genuinely in the past.
        """
        if time < self.now:
            if self.now - time <= max(
                self.PAST_TOLERANCE_US, abs(self.now) * 1e-12
            ):
                time = self.now
            else:
                raise ValueError(
                    f"cannot schedule at {time} (now is {self.now})"
                )
        heapq.heappush(self._queue, (time, self._sequence, callback))
        self._sequence += 1
        if self._track_peak and len(self._queue) > self._peak_pending:
            self._peak_pending = len(self._queue)

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` after ``delay`` microseconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.at(self.now + delay, callback)

    def add_stream(
        self, events: Iterable[tuple[float, Callable[[], None]]]
    ) -> int:
        """Admit a time-sorted batch of events without heap traffic.

        Equivalent to calling :meth:`at` once per event *right now* —
        the stream reserves the same sequence numbers those calls would
        have consumed, so the merged firing order is byte-identical —
        but the events never touch the heap: the run loop merges the
        stream head against the heap top by ``(time, seq)``.

        The high-water ``peak_pending`` statistic does not see stream
        events; callers needing it (tracing) must admit via :meth:`at`.

        Args:
            events: ``(time, callback)`` pairs in non-decreasing time
                order.  Times are validated exactly like :meth:`at`
                (round-off clamp, genuine-past raise).

        Returns:
            The number of events admitted.

        Raises:
            RuntimeError: if a previous stream is not yet drained (one
                sorted run at a time keeps the merge trivially correct).
            ValueError: on unsorted times or a genuinely-past time.
        """
        if self._stream_pos < len(self._stream):
            raise RuntimeError("previous event stream is not drained yet")
        stream: list[tuple[float, int, Callable[[], None]]] = []
        sequence = self._sequence
        previous = -float("inf")
        for time, callback in events:
            time = self._clamped(time)
            if time < previous:
                raise ValueError("stream events must be sorted by time")
            previous = time
            stream.append((time, sequence, callback))
            sequence += 1
        self._sequence = sequence
        self._stream = stream
        self._stream_pos = 0
        return len(stream)

    def run(self, until: float | None = None) -> None:
        """Fire events until the queue empties (or simulated ``until``).

        With ``until`` set, events at times strictly greater are left in
        the queue and ``now`` advances to ``until``.
        """
        if self._stream_pos < len(self._stream):
            self._run_merged(until)
            if self._stream_pos < len(self._stream):
                return  # stopped at ``until`` with stream left over
            self._stream = []
            self._stream_pos = 0
        # Hot loop: the queue list and heappop are bound to locals, and
        # the unbounded drain pops directly instead of peek-then-pop
        # (callbacks mutate the queue in place via ``at``, never rebind
        # it, so the local alias stays valid).
        queue = self._queue
        heappop = heapq.heappop
        if until is None:
            while queue:
                time, _, callback = heappop(queue)
                self._prev_now = self.now
                self.now = time
                self._processed += 1
                callback()
            return
        while queue:
            time, _, callback = queue[0]
            if time > until:
                break
            heappop(queue)
            self._prev_now = self.now
            self.now = time
            self._processed += 1
            callback()
        if until > self.now:
            self.now = until

    def _run_merged(self, until: float | None) -> None:
        """Drain heap and admitted stream in (time, seq) order."""
        queue = self._queue
        heappop = heapq.heappop
        stream = self._stream
        pos = self._stream_pos
        end = len(stream)
        try:
            while pos < end:
                head = stream[pos]
                if queue and queue[0] < head:
                    time, _, callback = queue[0]
                    if until is not None and time > until:
                        break
                    heappop(queue)
                else:
                    time, _, callback = head
                    if until is not None and time > until:
                        break
                    pos += 1
                self._prev_now = self.now
                self.now = time
                self._processed += 1
                callback()
        finally:
            self._stream_pos = pos
        if until is not None and pos < end and until > self.now:
            self.now = until

    def run_until_idle(self, track_peak: bool = True) -> None:
        """Drain everything; optionally skip peak-queue bookkeeping.

        ``track_peak=False`` removes the per-push high-water-mark update
        from :meth:`at` for the duration of the drain — the fast path
        for untraced runs, where ``peak_pending`` is never reported.
        Event and processed counts stay exact either way.
        """
        if track_peak:
            self.run()
            return
        self._track_peak = False
        try:
            self.run()
        finally:
            self._track_peak = True

    def step(self) -> bool:
        """Fire exactly one event; returns False when the queue is empty."""
        if self._stream_pos < len(self._stream):
            head = stream_head = self._stream[self._stream_pos]
            if self._queue and self._queue[0] < stream_head:
                time, _, callback = heapq.heappop(self._queue)
            else:
                time, _, callback = head
                self._stream_pos += 1
            self._prev_now = self.now
            self.now = time
            self._processed += 1
            callback()
            return True
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._prev_now = self.now
        self.now = time
        self._processed += 1
        callback()
        return True

    def rewind_to_previous_event(self) -> None:
        """Roll the clock back to the event before the current one.

        For pure-observer callbacks (sampling ticks) that outlive the real
        workload: the tick's own firing advanced ``now`` past the last
        event that did anything, which would leak into elapsed-time
        metrics.  Only legal once everything has drained.

        Raises:
            RuntimeError: if events are still pending.
        """
        if self.pending:
            raise RuntimeError("can only rewind when no events are pending")
        self.now = self._prev_now
