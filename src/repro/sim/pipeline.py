"""Declarative per-op stage pipelines over contended resources.

Every physical flash operation moves through a fixed sequence of
*stages* (Fig. 1 / Sec. II-C):

* **read**:  queue -> ``sense`` (die) -> ``transfer`` (channel) ->
  ``ecc`` (latency-only) — the host-interface overhead is a fixed
  per-request constant added at completion accounting, not a queued
  stage;
* **write**: queue -> ``transfer`` (channel) -> ``program`` (die);
* **adjust** (IDA voltage adjustment): ``adjust`` (die);
* **erase**: ``erase`` (die).

A :class:`Stage` is a declarative ``(resource, duration, name)`` step;
:class:`OpPipeline` walks a tuple of stages, submitting each to its
resource (or, for resource-free stages such as the deeply-pipelined
hardware ECC decoder, scheduling a pure delay) and advancing on
completion.  Observation attaches *generically* at stage boundaries:
when a :class:`PageRecord` is supplied the pipeline notes queue wait and
service time per stage — one code path serves traced and untraced runs,
the untraced case paying only a ``record is None`` check per boundary.

The stage machine replaces the per-op closure webs the simulator grew in
its first iteration: one pipeline object (``__slots__``, bound-method
callbacks) instead of two-to-three closures per op, with identical event
scheduling — golden-parity tests pin the refactor to the float.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..flash.timing import TimingSpec
from .engine import SimEngine
from .resources import IoPriority, Resource

__all__ = [
    "Stage",
    "StagePlanner",
    "OpPipeline",
    "PageRecord",
    "RequestSpan",
    "read_stages",
    "write_stages",
    "adjust_stages",
    "erase_stages",
]


@dataclass(frozen=True)
class Stage:
    """One declarative step of an op pipeline.

    Attributes:
        resource: The contended :class:`Resource` serving this stage, or
            ``None`` for a latency-only stage (adds delay, no queueing —
            the model for deeply pipelined hardware like the LDPC
            decoders).
        duration_us: Service time in microseconds.
        name: Stage label observers key on (``"sense"``, ``"transfer"``,
            ``"ecc"``, ``"program"``, ``"adjust"``, ``"erase"``).
    """

    resource: Resource | None
    duration_us: float
    name: str


def read_stages(
    die: Resource,
    channel: Resource,
    timing: TimingSpec,
    senses: int,
    passes: int = 1,
) -> tuple[Stage, ...]:
    """Host/internal page read: sense -> transfer -> ECC decode.

    Read retry re-senses the wordline with shifted voltages ([38]): the
    memory-access stage repeats per pass and the decoder runs per
    attempt, but the page transfers over the channel once, after the
    final successful sense.
    """
    return (
        Stage(die, timing.read_us(senses) * passes, "sense"),
        Stage(channel, timing.transfer_us, "transfer"),
        Stage(None, timing.ecc_decode_us * passes, "ecc"),
    )


def write_stages(
    die: Resource, channel: Resource, timing: TimingSpec
) -> tuple[Stage, ...]:
    """Page program: inbound transfer -> full ISPP program."""
    return (
        Stage(channel, timing.transfer_us, "transfer"),
        Stage(die, timing.program_us, "program"),
    )


def adjust_stages(die: Resource, timing: TimingSpec) -> tuple[Stage, ...]:
    """IDA voltage adjustment: one conservative program per wordline."""
    return (Stage(die, timing.adjust_us(), "adjust"),)


def erase_stages(die: Resource, timing: TimingSpec) -> tuple[Stage, ...]:
    """Block erase."""
    return (Stage(die, timing.erase_us, "erase"),)


class StagePlanner:
    """Caches the immutable stage tuples ops of one device share.

    Stage tuples depend only on (die, op shape): every read with the
    same sense count and retry passes on the same die walks the same
    stages, and writes / adjusts / erases are fully fixed per die.
    Caching the tuples keeps the per-op allocation cost of the stage
    machine below the old per-op closure webs'.
    """

    __slots__ = ("timing", "_read_cache", "_fixed_cache")

    def __init__(self, timing: TimingSpec) -> None:
        self.timing = timing
        self._read_cache: dict[tuple[int, int, int], tuple[Stage, ...]] = {}
        self._fixed_cache: dict[tuple[int, str], tuple[Stage, ...]] = {}

    def read(
        self,
        die_index: int,
        die: Resource,
        channel: Resource,
        senses: int,
        passes: int,
    ) -> tuple[Stage, ...]:
        key = (die_index, senses, passes)
        stages = self._read_cache.get(key)
        if stages is None:
            stages = read_stages(die, channel, self.timing, senses, passes)
            self._read_cache[key] = stages
        return stages

    def write(
        self, die_index: int, die: Resource, channel: Resource
    ) -> tuple[Stage, ...]:
        key = (die_index, "write")
        stages = self._fixed_cache.get(key)
        if stages is None:
            stages = write_stages(die, channel, self.timing)
            self._fixed_cache[key] = stages
        return stages

    def adjust(self, die_index: int, die: Resource) -> tuple[Stage, ...]:
        key = (die_index, "adjust")
        stages = self._fixed_cache.get(key)
        if stages is None:
            stages = adjust_stages(die, self.timing)
            self._fixed_cache[key] = stages
        return stages

    def erase(self, die_index: int, die: Resource) -> tuple[Stage, ...]:
        key = (die_index, "erase")
        stages = self._fixed_cache.get(key)
        if stages is None:
            stages = erase_stages(die, self.timing)
            self._fixed_cache[key] = stages
        return stages


class PageRecord:
    """Stage timings of one observed page op as it moves through the pipe."""

    __slots__ = (
        "block",
        "page",
        "senses",
        "retries",
        "submit_us",
        "queue_wait_us",
        "sense_us",
        "transfer_us",
        "ecc_us",
        "program_us",
        "end_us",
    )

    def __init__(
        self, block: int, page: int, senses: int, retries: int, submit_us: float
    ) -> None:
        self.block = block
        self.page = page
        self.senses = senses
        self.retries = retries
        self.submit_us = submit_us
        self.queue_wait_us = 0.0  # die wait + channel wait, accumulated
        self.sense_us = 0.0
        self.transfer_us = 0.0
        self.ecc_us = 0.0
        self.program_us = 0.0
        self.end_us = 0.0

    def note_stage(
        self, name: str, wait_us: float, start_us: float, end_us: float
    ) -> None:
        """Record one completed stage (called by the pipeline)."""
        self.queue_wait_us += wait_us
        duration = end_us - start_us
        if name == "sense":
            self.sense_us = duration
        elif name == "transfer":
            self.transfer_us = duration
        elif name == "ecc":
            self.ecc_us = duration
        elif name == "program":
            self.program_us = duration
        self.end_us = end_us

    def to_dict(self) -> dict:
        return {
            "block": self.block,
            "page": self.page,
            "senses": self.senses,
            "retries": self.retries,
            "queue_wait_us": self.queue_wait_us,
            "sense_us": self.sense_us,
            "transfer_us": self.transfer_us,
            "ecc_us": self.ecc_us,
            "program_us": self.program_us,
            "end_us": self.end_us,
        }


class RequestSpan:
    """Collects per-page stage records for one traced host request.

    Page records are appended as their pipelines complete, so when the
    request's last page op finishes (triggering completion) the final
    record is the critical-path page: its stages, by construction, tile
    the whole ``arrival -> completion`` window.
    """

    __slots__ = ("request", "pages")

    def __init__(self, request) -> None:
        self.request = request
        self.pages: list[PageRecord] = []

    def add_page(self, record: PageRecord) -> None:
        self.pages.append(record)

    def emit(
        self,
        tracer,
        kind: str,
        complete_us: float,
        host_overhead_us: float,
    ) -> None:
        critical = self.pages[-1] if self.pages else None
        payload: dict = {
            "request_id": self.request.request_id,
            "arrival_us": self.request.arrival_us,
            "response_us": complete_us - self.request.arrival_us + host_overhead_us,
            "pages": len(self.pages),
        }
        if critical is not None:
            payload["critical"] = {
                "queue_wait_us": critical.queue_wait_us,
                "sense_us": critical.sense_us,
                "transfer_us": critical.transfer_us,
                "ecc_us": critical.ecc_us,
                "program_us": critical.program_us,
                "host_overhead_us": host_overhead_us,
            }
        payload["stages"] = [page.to_dict() for page in self.pages]
        tracer.emit(complete_us, kind, **payload)


class OpPipeline:
    """Walks one op through its stages on the event engine.

    Args:
        engine: The simulation clock.
        stages: The declarative stage tuple (from the builders above).
        klass: Dispatch class for resource accounting.
        queue: Resource queue class the scheduling policy mapped this op
            to (read-first maps it to ``klass`` itself).
        on_done: Completion callback ``(start_us, end_us)`` where
            ``start_us`` is the service start of the last *resource*
            stage and ``end_us`` the pipeline end (including trailing
            latency-only stages) — the contract every completion sink
            (request trackers, internal chains) consumes.
        span: Optional :class:`RequestSpan` the finished record joins.
        record: Optional :class:`PageRecord` noting stage boundaries.
        profile: Optional profiler op context
            (:class:`~repro.obs.profiler.ProfiledOp`) fed the same stage
            boundaries plus resource identity; unprofiled runs pay one
            ``is None`` check per boundary, exactly like ``record``.
        fault: Optional fault-injection op context
            (:class:`~repro.faults.injector.FaultedOp`) — present only on
            the (rare) ops a bound FaultPlan marked as failing, fed the
            same stage boundaries; fault-free runs pay the same single
            ``is None`` check as ``record`` and ``profile``.
    """

    __slots__ = (
        "engine",
        "stages",
        "klass",
        "queue",
        "on_done",
        "span",
        "record",
        "profile",
        "fault",
        "_index",
        "_submit_us",
        "_last_start_us",
    )

    def __init__(
        self,
        engine: SimEngine,
        stages: tuple[Stage, ...],
        klass: IoPriority,
        queue: IoPriority,
        on_done: Callable[[float, float], None],
        span: RequestSpan | None = None,
        record: PageRecord | None = None,
        profile=None,
        fault=None,
    ) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.engine = engine
        self.stages = stages
        self.klass = klass
        self.queue = queue
        self.on_done = on_done
        self.span = span
        self.record = record
        self.profile = profile
        self.fault = fault
        self._index = 0
        self._submit_us = 0.0
        self._last_start_us = 0.0

    def start(self) -> None:
        """Submit the first stage; the rest chain on completions."""
        self._dispatch()

    def _dispatch(self) -> None:
        stage = self.stages[self._index]
        self._submit_us = self.engine.now
        if stage.resource is not None:
            stage.resource.submit(
                self.klass, stage.duration_us, self._stage_done, queue=self.queue
            )
        else:
            start = self.engine.now
            end = start + stage.duration_us
            self.engine.at(end, lambda: self._stage_done(start, end))

    def _stage_done(self, start_us: float, end_us: float) -> None:
        stage = self.stages[self._index]
        if self.record is not None:
            self.record.note_stage(
                stage.name, start_us - self._submit_us, start_us, end_us
            )
        if self.profile is not None:
            self.profile.note_stage(stage, self._submit_us, start_us, end_us)
        if self.fault is not None:
            self.fault.note_stage(stage, self._submit_us, start_us, end_us)
        if stage.resource is not None:
            self._last_start_us = start_us
        self._index += 1
        if self._index < len(self.stages):
            self._dispatch()
            return
        if self.record is not None and self.span is not None:
            self.span.add_page(self.record)
        if self.profile is not None:
            self.profile.complete(end_us)
        self.on_done(self._last_start_us, end_us)
