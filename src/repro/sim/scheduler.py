"""Host request tracking and completion accounting.

A host request fans out into one physical page op per logical page; the
request completes when its last page op does.  The tracker owns that
bookkeeping so the simulator's dispatch code stays linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["HostRequest", "OutstandingRequest"]


@dataclass(frozen=True)
class HostRequest:
    """One host I/O request, already translated to logical pages.

    Attributes:
        request_id: Monotone id (trace order).
        arrival_us: Issue time on the simulated clock.
        is_read: Read vs write.
        lpns: Logical page numbers the request covers.
        size_bytes: Transfer size (for throughput accounting).
    """

    request_id: int
    arrival_us: float
    is_read: bool
    lpns: tuple[int, ...]
    size_bytes: int

    def __post_init__(self) -> None:
        if not self.lpns:
            raise ValueError("a request must cover at least one page")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


class OutstandingRequest:
    """Completion counter for one in-flight host request."""

    def __init__(
        self,
        request: HostRequest,
        page_ops: int,
        on_complete: Callable[[HostRequest, float], None],
    ) -> None:
        if page_ops < 1:
            raise ValueError("a request needs at least one page op")
        self.request = request
        self._remaining = page_ops
        self._on_complete = on_complete

    def page_done(self, now_us: float) -> None:
        """Signal one page op finished; fires completion on the last."""
        if self._remaining <= 0:
            raise RuntimeError("request already complete")
        self._remaining -= 1
        if self._remaining == 0:
            self._on_complete(self.request, now_us)
