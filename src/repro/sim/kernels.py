"""Array kernels for the batch execution backend.

The reference simulator computes read-path quantities one op at a time
(:meth:`TimingSpec.read_us`, :meth:`ReadRetryModel.sample_retries`,
:meth:`RberModel.rber`).  The batch backend drains same-timestamp
cohorts, so the same math is needed over whole arrays at once.  Every
kernel here is *exact* with respect to its scalar counterpart:

* latency and decode-failure probabilities are materialised as dense
  lookup tables indexed by sense count, built by calling the scalar
  model once per possible count — by construction the LUT gather cannot
  diverge from the scalar path;
* retry sampling consumes the RNG stream draw-for-draw like
  ``sample_retries`` (``max_retries`` uniforms per read, row-major), so
  common-random-number pairing across baseline/IDA runs survives
  batching.

The hot inner loops are plain numpy; :mod:`repro.sim.accel` swaps in
numba-jitted versions when the optional dependency is installed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "read_latency_lut",
    "page_fail_lut",
    "sample_retry_counts",
    "count_leading_failures",
    "read_service_us",
    "rber_curve",
]


def read_latency_lut(timing, max_senses: int) -> np.ndarray:
    """Sense-count -> memory-access latency table (index 0 is NaN).

    Built from :meth:`TimingSpec.read_us` itself, so power-of-two
    rounding and the dtR step stay exactly the scalar model's.
    """
    if max_senses < 1:
        raise ValueError("max_senses must be >= 1")
    lut = np.empty(max_senses + 1, dtype=np.float64)
    lut[0] = np.nan
    for senses in range(1, max_senses + 1):
        lut[senses] = timing.read_us(senses)
    return lut


def page_fail_lut(retry_model, max_senses: int) -> np.ndarray:
    """Sense-count -> per-attempt decode-failure probability table."""
    if max_senses < 1:
        raise ValueError("max_senses must be >= 1")
    lut = np.zeros(max_senses + 1, dtype=np.float64)
    if retry_model.fail_prob == 0.0:
        return lut
    for senses in range(1, max_senses + 1):
        lut[senses] = retry_model.page_fail_prob(senses)
    return lut


def count_leading_failures(
    draws: np.ndarray, fail_probs: np.ndarray
) -> np.ndarray:
    """Per-row count of leading uniforms below the row's threshold.

    ``draws`` is ``(n, max_retries)`` row-major — row ``i`` holds the
    uniforms the ``i``-th sequential ``sample_retries`` call would have
    drawn — and the result is that call's retry count: failures stop at
    the first draw >= ``fail_probs[i]``.
    """
    if draws.size == 0:
        return np.zeros(len(draws), dtype=np.int64)
    failing = draws < fail_probs[:, None]
    retries = np.argmin(failing, axis=1)
    retries[failing.all(axis=1)] = draws.shape[1]
    return retries.astype(np.int64, copy=False)


def sample_retry_counts(
    rng: np.random.Generator,
    retry_model,
    senses: np.ndarray,
    fail_lut: np.ndarray | None = None,
    counter=count_leading_failures,
) -> np.ndarray:
    """Batched :meth:`ReadRetryModel.sample_retries` on one RNG stream.

    Consumes exactly what ``len(senses)`` sequential calls would:
    nothing when ``fail_prob`` is zero, otherwise ``max_retries``
    uniforms per read in call order — so a batched run and a scalar run
    leave the generator in the identical state.

    Args:
        rng: The host-read retry stream.
        retry_model: The scalar :class:`ReadRetryModel`.
        senses: Per-read sense counts, int array.
        fail_lut: Optional precomputed :func:`page_fail_lut`.
        counter: The leading-failure counter (accel hook point).
    """
    n = len(senses)
    if retry_model.fail_prob == 0.0 or n == 0:
        return np.zeros(n, dtype=np.int64)
    if fail_lut is None:
        fail_lut = page_fail_lut(retry_model, int(np.max(senses)))
    draws = rng.random((n, retry_model.max_retries))
    return counter(draws, fail_lut[senses])


def read_service_us(
    sense_us: np.ndarray,
    retries: np.ndarray,
    transfer_us: float,
    ecc_decode_us: float,
) -> np.ndarray:
    """Uncontended service time of a read cohort.

    Mirrors the stage durations of :func:`repro.sim.pipeline.read_stages`
    — sense and ECC decode repeat once per pass (1 + retries), the
    channel transfer happens once.
    """
    passes = 1.0 + retries
    return sense_us * passes + transfer_us + ecc_decode_us * passes


def rber_curve(
    rber_model,
    pe_cycles: np.ndarray,
    retention_days: np.ndarray | float = 0.0,
) -> np.ndarray:
    """Vectorised :meth:`RberModel.rber` over block populations."""
    wear_fraction = np.minimum(
        1.0, np.asarray(pe_cycles, dtype=np.float64) / rber_model.rated_pe_cycles
    )
    wear_term = np.exp(rber_model.wear_exponent * wear_fraction)
    retention_term = 1.0 + rber_model.retention_slope * np.asarray(
        retention_days, dtype=np.float64
    )
    return rber_model.base_rber * wear_term * retention_term
