"""Workload drivers: how a host request stream is fed to the simulator.

Two driving disciplines, mirroring the paper's evaluation:

* **open loop** (:func:`run_open_loop`) — replay requests at their trace
  arrival times (Figs. 8, 9, 11: response-time artifacts);
* **closed loop** (:func:`run_closed_loop`) — ignore arrival times and
  keep a fixed number of requests outstanding (Fig. 10: device-bound
  throughput; an open-loop replay's throughput is pinned to the trace's
  arrival rate and cannot show a device improvement).

Both drivers own the run choreography around the simulator: scheduling
request dispatches, applying untimed background-update batches, ticking
the refresh daemon, bracketing the run for the tracer / interval
collector, and folding counters when the queues drain.  The simulator
itself only knows how to dispatch *one* request — everything stream-
shaped lives here, so new disciplines (bursty arrivals, rate-limited
replay, multi-tenant interleaving) are additive modules rather than
simulator surgery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import SimMetrics
from .scheduler import HostRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ssd import SsdSimulator

__all__ = ["run_open_loop", "run_closed_loop"]


def _begin_run(sim: "SsdSimulator", mode: str, n_requests: int) -> None:
    if sim.collector is not None:
        sim.collector.start()
    if sim.profiler is not None:
        sim.profiler.start_run(sim.engine.now)
    if sim.tracer.enabled:
        sim.tracer.emit(
            sim.engine.now,
            "run_start",
            mode=mode,
            requests=n_requests,
            policy=sim.policy.name,
            dies=len(sim.dies),
            channels=len(sim.channels),
        )


def _end_run(sim: "SsdSimulator") -> None:
    if sim.collector is not None:
        sim.collector.finish()
    if sim.profiler is not None:
        sim.profiler.finish_run(sim.engine.now, sim.metrics.elapsed_us)
    if sim.tracer.enabled:
        sim.tracer.emit(
            sim.engine.now,
            "run_end",
            elapsed_us=sim.metrics.elapsed_us,
            reads=sim.metrics.read_response.count,
            writes=sim.metrics.write_response.count,
            utilisation=sim.utilisation_report(),
            events_processed=sim.engine.processed,
            peak_pending_events=sim.engine.peak_pending,
        )


def run_open_loop(
    sim: "SsdSimulator",
    requests: list[HostRequest],
    background_updates: list[tuple[float, list[int]]] | None = None,
) -> SimMetrics:
    """Replay a timed host request stream to completion and drain.

    Args:
        sim: The simulator under test.
        requests: The timed host requests.
        background_updates: Optional ``(time_us, lpns)`` batches of
            *untimed* update writes applied at the given simulation
            times.  This is the trace-sampling device the experiment
            runner uses: only a subset of a long trace's requests is
            replayed with timing, but the full update rate is applied
            logically so page-invalidation state evolves as in the
            original trace (see DESIGN.md).

    Returns the populated metrics object (also at ``sim.metrics``).
    """
    if not requests:
        raise ValueError("empty request stream")
    ordered = sorted(requests, key=lambda r: r.arrival_us)

    def make_dispatch(request: HostRequest):
        def dispatch() -> None:
            if request.is_read:
                sim.dispatch_read(request)
            else:
                sim.dispatch_write(request)

        return dispatch

    sim.backend.admit_requests(sim, ordered, make_dispatch)
    sim.backend.schedule_background(sim, background_updates)

    # Refresh daemon: scan on the FTL's cadence until the trace ends.
    trace_end = ordered[-1].arrival_us
    interval = sim.ftl.scan_interval_us

    def tick() -> None:
        sim.issue_internal_sequence(sim.ftl.check_refresh(sim.engine.now))
        if sim.engine.now + interval <= trace_end:
            sim.engine.after(interval, tick)

    if interval <= trace_end:
        sim.engine.after(interval, tick)

    _begin_run(sim, "open_loop", len(ordered))
    sim.backend.drain(sim)
    sim.metrics.start_us = ordered[0].arrival_us
    sim.metrics.end_us = sim.engine.now
    sim.fold_counters()
    _end_run(sim)
    return sim.metrics


def run_closed_loop(
    sim: "SsdSimulator",
    requests: list[HostRequest],
    queue_depth: int = 32,
    background_updates: list[tuple[float, list[int]]] | None = None,
) -> SimMetrics:
    """Run the request stream closed-loop at a fixed queue depth.

    Arrival times are ignored: the host keeps ``queue_depth`` requests
    outstanding, issuing the next one whenever one completes.
    """
    if not requests:
        raise ValueError("empty request stream")
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    pending = list(requests)
    total = len(pending)
    completed = 0
    done_event: list[bool] = [False]

    def issue_next() -> None:
        if not pending:
            return
        request = pending.pop(0)
        rebased = HostRequest(
            request_id=request.request_id,
            arrival_us=sim.engine.now,
            is_read=request.is_read,
            lpns=request.lpns,
            size_bytes=request.size_bytes,
        )
        if rebased.is_read:
            sim.dispatch_read(rebased, on_request_done=on_done)
        else:
            sim.dispatch_write(rebased, on_request_done=on_done)

    def on_done() -> None:
        nonlocal completed
        completed += 1
        if completed >= total:
            done_event[0] = True
            return
        issue_next()

    for _ in range(min(queue_depth, total)):
        sim.engine.after(0.0, issue_next)
    sim.backend.schedule_background(sim, background_updates)

    # No refresh daemon deadline in closed-loop mode: scan on a fixed
    # cadence until the stream completes, then let the queues drain.
    interval = sim.ftl.scan_interval_us

    def refresh_tick() -> None:
        sim.issue_internal_sequence(sim.ftl.check_refresh(sim.engine.now))
        if not done_event[0]:
            sim.engine.after(interval, refresh_tick)

    sim.engine.after(interval, refresh_tick)
    _begin_run(sim, "closed_loop", total)
    sim.backend.drain(sim)
    sim.metrics.start_us = 0.0
    sim.metrics.end_us = sim.engine.now
    sim.fold_counters()
    _end_run(sim)
    return sim.metrics
