"""Execution backends: how a run's events reach the simulation engine.

The simulator's *semantics* live in the FTL, the stage pipelines and the
scheduling policies; this module owns only the *mechanics* of getting a
workload through the event loop.  Two interchangeable backends sit
behind the same :class:`SimEngine` / :class:`OpPipeline` interfaces:

* :class:`ReferenceBackend` — the event-at-a-time baseline: every
  request admitted with one ``engine.at`` call, every untimed write
  applied through the scalar FTL path.  This is the semantics oracle.
* :class:`BatchBackend` — the vectorized path: sorted request streams
  admitted via :meth:`SimEngine.add_stream` (heap stays small; sequence
  numbers match the reference by construction), untimed preload / aging
  / background batches collapsed into columnar segments via
  :meth:`Ftl.apply_untimed_batch`, and the drain running with per-event
  peak-queue bookkeeping off when nothing observes it.

Byte-identical results across backends is a hard contract, pinned by
the parity suite (``tests/sim/test_backend_parity.py``) and the golden
fig8 artifact.  Consequently the batch backend silently falls back to
reference admission whenever a tracer is attached: the ``run_end``
trace event reports ``peak_pending_events``, which the streamed fast
path deliberately does not track.

The registry mirrors :data:`repro.sim.policy.POLICIES`: select by name
through ``SsdSimulator(backend=...)``, the experiment runner, sweep
units, or the CLI ``--backend`` flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from .scheduler import HostRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ssd import SsdSimulator

__all__ = [
    "ExecutionBackend",
    "ReferenceBackend",
    "BatchBackend",
    "ENGINE_BACKENDS",
    "make_backend",
]


class ExecutionBackend:
    """How requests, untimed writes and the drain reach the engine.

    Subclasses must preserve event order exactly: the (time, sequence)
    total order of everything they admit has to match what the
    reference admission would produce, or determinism across backends
    breaks.
    """

    name = "abstract"

    def admit_requests(
        self,
        sim: "SsdSimulator",
        ordered: list[HostRequest],
        make_dispatch: Callable[[HostRequest], Callable[[], None]],
    ) -> None:
        """Admit a time-sorted request stream before the run starts."""
        raise NotImplementedError

    def apply_untimed(self, sim: "SsdSimulator", lpns, times) -> None:
        """Apply untimed writes (preload / aging / background batches).

        ``times`` is a scalar or a per-write array; the final FTL and
        device state must equal a scalar ``write_untimed`` loop.
        """
        raise NotImplementedError

    def schedule_background(
        self,
        sim: "SsdSimulator",
        background_updates: list[tuple[float, list[int]]] | None,
    ) -> None:
        """Schedule untimed background-update batches at their times."""
        for time_us, lpns in background_updates or []:
            lpn_list = list(lpns)

            def apply(lpn_list=lpn_list) -> None:
                self.apply_untimed(sim, lpn_list, sim.engine.now)

            sim.engine.at(time_us, apply)

    def drain(self, sim: "SsdSimulator") -> None:
        """Run the engine until every admitted event has fired."""
        sim.engine.run()


class ReferenceBackend(ExecutionBackend):
    """Event-at-a-time execution — the semantics oracle."""

    name = "reference"

    def admit_requests(self, sim, ordered, make_dispatch):
        for request in ordered:
            sim.engine.at(request.arrival_us, make_dispatch(request))

    def apply_untimed(self, sim, lpns, times):
        write_untimed = sim.ftl.write_untimed
        if np.ndim(times) == 0:
            now = float(times)
            for lpn in lpns:
                write_untimed(int(lpn), now)
        else:
            for lpn, time_us in zip(lpns, times):
                write_untimed(int(lpn), float(time_us))


class BatchBackend(ExecutionBackend):
    """Vectorized execution: streamed admission, columnar untimed writes.

    Results are byte-identical to :class:`ReferenceBackend`; only the
    constant factors change.  When a tracer is attached, admission and
    the drain revert to the reference mechanics so the traced
    ``peak_pending_events`` statistic stays exact.
    """

    name = "batch"

    def admit_requests(self, sim, ordered, make_dispatch):
        if sim.tracer.enabled:
            for request in ordered:
                sim.engine.at(request.arrival_us, make_dispatch(request))
            return
        sim.engine.add_stream(
            (request.arrival_us, make_dispatch(request)) for request in ordered
        )

    def apply_untimed(self, sim, lpns, times):
        apply_batch = getattr(sim.ftl, "apply_untimed_batch", None)
        if apply_batch is None:
            # Duck-typed FTL without the columnar bulk path.
            ReferenceBackend.apply_untimed(self, sim, lpns, times)
            return
        apply_batch(lpns, times)

    def drain(self, sim):
        sim.engine.run_until_idle(track_peak=sim.tracer.enabled)


#: Registry of selectable backends (CLI ``--backend`` / runner /
#: :class:`~repro.experiments.parallel.RunUnit`), mirroring
#: :data:`repro.sim.policy.POLICIES`.
ENGINE_BACKENDS: dict[str, type[ExecutionBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    BatchBackend.name: BatchBackend,
}


def make_backend(spec: "ExecutionBackend | str | None") -> ExecutionBackend:
    """Resolve a backend instance from a name / instance / ``None``.

    ``None`` yields the reference backend (semantics oracle stays the
    default; opting into the fast path is explicit).  Unknown names
    raise ``ValueError`` listing the valid choices.
    """
    if spec is None:
        return ReferenceBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    try:
        cls = ENGINE_BACKENDS[spec]
    except KeyError:
        valid = ", ".join(sorted(ENGINE_BACKENDS))
        raise ValueError(
            f"unknown execution backend {spec!r}; choose one of: {valid}"
        ) from None
    return cls()
