"""Optional numba acceleration for the batch-backend kernels.

numba is an *optional* extra (``pip install .[accel]``); the simulator
must work — and stay byte-identical — without it.  This module is the
single gate: it probes for the dependency once, compiles the jitted
kernel variants lazily, and reports the outcome exactly once through a
metrics-registry gauge (plus a debug log line), so a run's provenance
records whether it executed jitted or plain-numpy kernels.

The jitted kernels compute the same IEEE operations in the same order
as their numpy counterparts in :mod:`repro.sim.kernels`; parity tests
pin that whenever numba is present.

Set ``REPRO_NO_NUMBA=1`` to force the numpy fallback even when numba is
installed (the CI backend matrix uses this to cover both paths).
"""

from __future__ import annotations

import logging
import os

import numpy as np

from . import kernels

__all__ = [
    "numba_available",
    "accel_active",
    "leading_failure_counter",
    "publish_accel_state",
]

_log = logging.getLogger(__name__)

#: Lazy probe state: None = not probed yet.
_available: bool | None = None
#: Compiled kernel cache (built on first use when numba is active).
_jitted_counter = None
#: Registries already told about the accel state (log-once discipline).
_announced: set[int] = set()


def numba_available() -> bool:
    """Whether the numba import succeeds (probed once, cached)."""
    global _available
    if _available is None:
        try:
            import numba  # noqa: F401

            _available = True
        except ImportError:
            _available = False
    return _available


def accel_active() -> bool:
    """Whether jitted kernels will actually be used.

    Requires numba to import *and* ``REPRO_NO_NUMBA`` to be unset/empty.
    """
    if os.environ.get("REPRO_NO_NUMBA"):
        return False
    return numba_available()


def _build_jitted_counter():
    """Compile the leading-failure counter with numba (first use only)."""
    from numba import njit  # deferred: only reached when available

    @njit(cache=True)
    def _count(draws, fail_probs):  # pragma: no cover - needs numba
        n, width = draws.shape
        out = np.zeros(n, dtype=np.int64)
        for i in range(n):
            p = fail_probs[i]
            count = 0
            for j in range(width):
                if draws[i, j] < p:
                    count += 1
                else:
                    break
            out[i] = count
        return out

    return _count


def leading_failure_counter():
    """The fastest available leading-failure counter.

    Returns the numba-jitted kernel when active, otherwise the numpy
    reference from :mod:`repro.sim.kernels`.  Both consume identical
    inputs and produce identical outputs.
    """
    global _jitted_counter
    if not accel_active():
        return kernels.count_leading_failures
    if _jitted_counter is None:
        _jitted_counter = _build_jitted_counter()
    return _jitted_counter


def publish_accel_state(registry) -> None:
    """Record the accel outcome in a metrics registry, once per registry.

    Publishes the gauge ``sim_accel_numba_active`` (1 = jitted kernels,
    0 = numpy fallback) and logs the fallback at debug level the first
    time each registry sees it.  ``None`` registries are ignored — the
    no-observability path stays zero-cost.
    """
    if registry is None:
        return
    key = id(registry)
    if key in _announced:
        return
    _announced.add(key)
    active = accel_active()
    registry.gauge(
        "sim_accel_numba_active",
        "1 when batch-backend kernels run numba-jitted, 0 on numpy fallback",
    ).unlabeled.set(1.0 if active else 0.0)
    if not active:
        _log.debug(
            "numba unavailable or disabled; batch backend uses numpy kernels"
        )
