"""The full SSD simulator: resources, op pipelines, refresh daemon.

Data-path model (Fig. 1 / Sec. II-C):

* **read**: die busy for the memory-access time (sense-count dependent,
  multiplied by any read-retry passes), then the channel busy for the
  page transfer, then a fixed ECC-decode latency (the paper's hardware
  LDPC engines are deeply pipelined, so decode adds latency but no
  queueing), then the fixed host-interface overhead.
* **write**: channel busy for the inbound transfer, then die busy for the
  full ISPP program.
* **adjust** (IDA voltage adjustment): die busy for one conservative
  program time per wordline.
* **erase**: die busy for the erase time.

Scheduling is read-first (Table II): host reads pre-empt *queued* host
writes and internal traffic at every resource, but in-service operations
are never suspended.

Approximation note (shared with DiskSim-class simulators): FTL metadata
transitions are applied eagerly at dispatch, so a page relocated by
refresh is readable at its new location while the physical moves are
still queued; the *load* of those moves is fully accounted on the
resources either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..core.coding import GrayCoding
from ..flash.errors import ReadRetryModel
from ..flash.geometry import Geometry
from ..flash.timing import TimingSpec
from ..ftl.ftl import Ftl
from ..ftl.gc import GcPolicy
from ..ftl.ops import OpKind, PhysOp
from ..ftl.refresh import RefreshPolicy
from ..obs.interval import IntervalCollector
from ..obs.tracer import NULL_TRACER, Tracer
from .engine import SimEngine
from .metrics import SimMetrics
from .resources import IoPriority, Resource
from .scheduler import HostRequest, OutstandingRequest

__all__ = ["SsdSimulator"]


@dataclass
class _NullCompletion:
    """Completion sink for internal (GC / refresh) operations."""

    count: int = 0

    def __call__(self, start_us: float, end_us: float) -> None:
        self.count += 1


@dataclass
class _PageStages:
    """Stage timings of one traced page op as it moves through the pipe."""

    block: int
    page: int
    senses: int
    retries: int
    submit_us: float
    queue_wait_us: float = 0.0  # die wait + channel wait, accumulated
    sense_us: float = 0.0
    transfer_us: float = 0.0
    ecc_us: float = 0.0
    program_us: float = 0.0
    end_us: float = 0.0
    _stage_submit_us: float = 0.0

    def to_dict(self) -> dict:
        return {
            "block": self.block,
            "page": self.page,
            "senses": self.senses,
            "retries": self.retries,
            "queue_wait_us": self.queue_wait_us,
            "sense_us": self.sense_us,
            "transfer_us": self.transfer_us,
            "ecc_us": self.ecc_us,
            "program_us": self.program_us,
            "end_us": self.end_us,
        }


class _RequestSpan:
    """Collects per-page stage records for one traced host request.

    Page records are appended as their pipelines complete, so when the
    request's last page op finishes (triggering completion) the final
    record is the critical-path page: its stages, by construction, tile
    the whole ``arrival -> completion`` window.
    """

    __slots__ = ("request", "pages")

    def __init__(self, request: HostRequest) -> None:
        self.request = request
        self.pages: list[_PageStages] = []

    def add_page(self, record: _PageStages) -> None:
        self.pages.append(record)

    def emit(
        self,
        tracer: Tracer,
        kind: str,
        complete_us: float,
        host_overhead_us: float,
    ) -> None:
        critical = self.pages[-1] if self.pages else None
        payload: dict = {
            "request_id": self.request.request_id,
            "arrival_us": self.request.arrival_us,
            "response_us": complete_us - self.request.arrival_us + host_overhead_us,
            "pages": len(self.pages),
        }
        if critical is not None:
            payload["critical"] = {
                "queue_wait_us": critical.queue_wait_us,
                "sense_us": critical.sense_us,
                "transfer_us": critical.transfer_us,
                "ecc_us": critical.ecc_us,
                "program_us": critical.program_us,
                "host_overhead_us": host_overhead_us,
            }
        payload["stages"] = [page.to_dict() for page in self.pages]
        tracer.emit(complete_us, kind, **payload)


class SsdSimulator:
    """Event-driven SSD with an (optionally IDA-enabled) FTL.

    Args:
        geometry: Device topology.
        timing: Operation latencies.
        coding: Conventional cell coding.
        refresh_policy: Baseline or IDA refresh configuration.
        gc_policy: GC watermarks.
        retry_model: Per-read retry sampler (Fig. 11 lifetime phases);
            ``None`` or ``fail_prob = 0`` disables retries.
        seed: RNG seed for disturb and retry sampling.
        allocation: Static allocation strategy name.
        tracer: Structured event tracer; ``None`` = tracing disabled
            (the null fast path).  Tracing is passive: it never schedules
            events, touches RNG streams, or alters metrics.
        collector: Optional interval time-series collector; bound to
            this simulator's engine and resources, started per run.
    """

    def __init__(
        self,
        geometry: Geometry,
        timing: TimingSpec,
        coding: GrayCoding,
        refresh_policy: RefreshPolicy,
        gc_policy: GcPolicy | None = None,
        retry_model: ReadRetryModel | None = None,
        seed: int = 1,
        allocation: str = "cwdp",
        tracer: Tracer | None = None,
        collector: IntervalCollector | None = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.engine = SimEngine()
        self.metrics = SimMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.collector = collector
        self.retry_model = retry_model or ReadRetryModel(fail_prob=0.0)
        # Common random numbers: host reads draw retry counts from their
        # own stream, so paired baseline/IDA runs of the same trace see
        # identical retry sequences (the i-th host page read retries the
        # same number of times in both systems); internal reads use a
        # separate stream so their differing op counts cannot skew it.
        self._host_retry_rng = np.random.default_rng(seed + 101)
        self._internal_retry_rng = np.random.default_rng(seed + 202)
        self.ftl = Ftl(
            geometry,
            coding,
            refresh_policy,
            gc_policy=gc_policy,
            rng=np.random.default_rng(seed + 1),
            allocation=allocation,
            tracer=self.tracer,
        )
        self.dies = [
            Resource(self.engine, f"die{d}") for d in range(geometry.total_dies)
        ]
        self.channels = [
            Resource(self.engine, f"chan{c}") for c in range(geometry.channels)
        ]
        self._internal_sink = _NullCompletion()
        if self.collector is not None:
            self.collector.bind(self.engine, self.dies, self.channels)

    # ------------------------------------------------------------------
    # Preconditioning
    # ------------------------------------------------------------------
    def preload(
        self,
        lpns: Iterable[int],
        start_us: float,
        end_us: float,
    ) -> None:
        """Untimed fill of the given LPNs, program times spread linearly.

        Spreading program times over ``[start_us, end_us)`` (typically one
        refresh period before the trace starts) staggers block refresh
        ages so refresh events do not all fire at once.
        """
        lpn_list = list(lpns)
        if not lpn_list:
            return
        span = end_us - start_us
        step = span / len(lpn_list)
        for index, lpn in enumerate(lpn_list):
            self.ftl.write_untimed(lpn, start_us + index * step)

    def age(self, lpns: Iterable[int], pseudo_now_us: float) -> None:
        """Untimed update writes — creates the invalid lower pages IDA needs."""
        for lpn in lpns:
            self.ftl.write_untimed(lpn, pseudo_now_us)

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------
    def run_requests(
        self,
        requests: list[HostRequest],
        background_updates: list[tuple[float, list[int]]] | None = None,
    ) -> SimMetrics:
        """Run a full host request stream to completion and drain.

        Args:
            requests: The timed host requests.
            background_updates: Optional ``(time_us, lpns)`` batches of
                *untimed* update writes applied at the given simulation
                times.  This is the trace-sampling device the experiment
                runner uses: only a subset of a long trace's requests is
                replayed with timing, but the full update rate is applied
                logically so page-invalidation state evolves as in the
                original trace (see DESIGN.md).

        Returns the populated metrics object (also at ``self.metrics``).
        """
        if not requests:
            raise ValueError("empty request stream")
        ordered = sorted(requests, key=lambda r: r.arrival_us)
        for request in ordered:
            self.engine.at(request.arrival_us, self._make_dispatch(request))
        for time_us, lpns in background_updates or []:
            self.engine.at(time_us, self._make_background_batch(list(lpns)))
        trace_end = ordered[-1].arrival_us
        self._schedule_refresh_daemon(trace_end)
        self._begin_run("open_loop", len(ordered))
        self.engine.run()
        self.metrics.start_us = ordered[0].arrival_us
        self.metrics.end_us = self.engine.now
        self._fold_counters()
        self._end_run()
        return self.metrics

    def run_closed_loop(
        self,
        requests: list[HostRequest],
        queue_depth: int = 32,
        background_updates: list[tuple[float, list[int]]] | None = None,
    ) -> SimMetrics:
        """Run the request stream closed-loop at a fixed queue depth.

        Arrival times are ignored: the host keeps ``queue_depth`` requests
        outstanding, issuing the next one whenever one completes.  The
        resulting bytes-per-second is the *device-bound* throughput
        Fig. 10 compares (an open-loop replay's throughput is pinned to
        the trace's arrival rate and cannot show a device improvement).
        """
        if not requests:
            raise ValueError("empty request stream")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        pending = list(requests)
        total = len(pending)
        completed = 0
        done_event: list[bool] = [False]

        def issue_next() -> None:
            if not pending:
                return
            request = pending.pop(0)
            rebased = HostRequest(
                request_id=request.request_id,
                arrival_us=self.engine.now,
                is_read=request.is_read,
                lpns=request.lpns,
                size_bytes=request.size_bytes,
            )
            if rebased.is_read:
                self._dispatch_read(rebased, on_request_done=on_done)
            else:
                self._dispatch_write(rebased, on_request_done=on_done)

        def on_done() -> None:
            nonlocal completed
            completed += 1
            if completed >= total:
                done_event[0] = True
                return
            issue_next()

        for _ in range(min(queue_depth, total)):
            self.engine.after(0.0, issue_next)
        for time_us, lpns in background_updates or []:
            self.engine.at(time_us, self._make_background_batch(list(lpns)))
        # No refresh daemon deadline in closed-loop mode: scan on a fixed
        # cadence until the stream completes, then let the queues drain.
        interval = self.ftl.refresh_policy.scan_interval_us

        def refresh_tick() -> None:
            ops = self.ftl.check_refresh(self.engine.now)
            self._issue_internal_sequence(ops)
            if not done_event[0]:
                self.engine.after(interval, refresh_tick)

        self.engine.after(interval, refresh_tick)
        self._begin_run("closed_loop", total)
        self.engine.run()
        self.metrics.start_us = 0.0
        self.metrics.end_us = self.engine.now
        self._fold_counters()
        self._end_run()
        return self.metrics

    def _begin_run(self, mode: str, n_requests: int) -> None:
        if self.collector is not None:
            self.collector.start()
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now,
                "run_start",
                mode=mode,
                requests=n_requests,
                dies=len(self.dies),
                channels=len(self.channels),
            )

    def _end_run(self) -> None:
        if self.collector is not None:
            self.collector.finish()
        if self.tracer.enabled:
            self.tracer.emit(
                self.engine.now,
                "run_end",
                elapsed_us=self.metrics.elapsed_us,
                reads=self.metrics.read_response.count,
                writes=self.metrics.write_response.count,
                utilisation=self.utilisation_report(),
                events_processed=self.engine.processed,
                peak_pending_events=self.engine.peak_pending,
            )

    def _make_background_batch(self, lpns: list[int]):
        def apply() -> None:
            for lpn in lpns:
                self.ftl.write_untimed(lpn, self.engine.now)

        return apply

    def _make_dispatch(self, request: HostRequest):
        def dispatch() -> None:
            if request.is_read:
                self._dispatch_read(request)
            else:
                self._dispatch_write(request)

        return dispatch

    def _dispatch_read(self, request: HostRequest, on_request_done=None) -> None:
        now = self.engine.now
        ops = [self.ftl.host_read(lpn, now) for lpn in request.lpns]
        for op in ops:
            assert op.bit is not None and op.wl_validity is not None
            self.metrics.read_mix.record(op.bit, op.wl_validity, op.from_ida)
        span = _RequestSpan(request) if self.tracer.enabled else None

        def complete(req: HostRequest, now_us: float) -> None:
            self._complete_read(req, now_us)
            if span is not None:
                span.emit(self.tracer, "read_span", now_us, self.timing.host_overhead_us)
            if on_request_done is not None:
                on_request_done()

        outstanding = OutstandingRequest(request, len(ops), complete)

        def page_done(start_us: float, end_us: float) -> None:
            outstanding.page_done(end_us)

        for op in ops:
            self._issue(op, IoPriority.HOST_READ, page_done, span=span)

    def _dispatch_write(self, request: HostRequest, on_request_done=None) -> None:
        now = self.engine.now
        host_ops: list[PhysOp] = []
        for lpn in request.lpns:
            result = self.ftl.host_write(lpn, now)
            host_ops.extend(result.host_ops)
            self._issue_internal_sequence(result.internal_ops)
        span = _RequestSpan(request) if self.tracer.enabled else None

        def complete(req: HostRequest, now_us: float) -> None:
            self._complete_write(req, now_us)
            if span is not None:
                span.emit(self.tracer, "write_span", now_us, self.timing.host_overhead_us)
            if on_request_done is not None:
                on_request_done()

        outstanding = OutstandingRequest(request, len(host_ops), complete)

        def page_done(start_us: float, end_us: float) -> None:
            outstanding.page_done(end_us)

        for op in host_ops:
            self._issue(op, IoPriority.HOST_WRITE, page_done, span=span)

    def _complete_read(self, request: HostRequest, now_us: float) -> None:
        response = now_us - request.arrival_us + self.timing.host_overhead_us
        self.metrics.read_response.add(response)
        self.metrics.bytes_read += request.size_bytes
        if self.collector is not None:
            self.collector.record_read(response, request.size_bytes)

    def _complete_write(self, request: HostRequest, now_us: float) -> None:
        response = now_us - request.arrival_us + self.timing.host_overhead_us
        self.metrics.write_response.add(response)
        self.metrics.bytes_written += request.size_bytes
        if self.collector is not None:
            self.collector.record_write(response, request.size_bytes)

    # ------------------------------------------------------------------
    # Refresh daemon
    # ------------------------------------------------------------------
    def _schedule_refresh_daemon(self, trace_end_us: float) -> None:
        interval = self.ftl.refresh_policy.scan_interval_us

        def tick() -> None:
            ops = self.ftl.check_refresh(self.engine.now)
            self._issue_internal_sequence(ops)
            if self.engine.now + interval <= trace_end_us:
                self.engine.after(interval, tick)

        if interval <= trace_end_us:
            self.engine.after(interval, tick)

    # ------------------------------------------------------------------
    # Op pipelines
    # ------------------------------------------------------------------
    def _issue_internal_sequence(self, ops: list[PhysOp]) -> None:
        """Run internal (GC / refresh) ops one after another.

        A refresh or GC pass is a background *process* that works through
        its pages sequentially — issuing its operations as a chain (each
        submitted when the previous completes) spreads the load over time
        instead of flooding every die queue at the scan instant.  Host
        reads still overtake each queued internal op via priority.
        """
        if not ops:
            return
        remaining = list(ops)

        def issue_next(start_us: float = 0.0, end_us: float = 0.0) -> None:
            if not remaining:
                return
            op = remaining.pop(0)
            self._issue(op, IoPriority.INTERNAL, issue_next)

        issue_next()

    def _route(self, op: PhysOp) -> tuple[Resource, Resource]:
        plane = self.geometry.plane_of_block(op.block_index)
        die = self.dies[self.geometry.die_of_plane(plane)]
        channel = self.channels[self.geometry.channel_of_plane(plane)]
        return die, channel

    def _issue(self, op: PhysOp, priority: IoPriority, on_done, span=None) -> None:
        die, channel = self._route(op)
        if op.kind is OpKind.READ:
            self._issue_read(op, priority, die, channel, on_done, span=span)
        elif op.kind is OpKind.WRITE:
            self._issue_write(priority, die, channel, on_done, op=op, span=span)
        elif op.kind is OpKind.ADJUST:
            die.submit(priority, self.timing.adjust_us(), on_done)
        elif op.kind is OpKind.ERASE:
            die.submit(priority, self.timing.erase_us, on_done)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown op kind {op.kind}")

    def _issue_read(
        self,
        op: PhysOp,
        priority: IoPriority,
        die: Resource,
        channel: Resource,
        on_done,
        span: _RequestSpan | None = None,
    ) -> None:
        # Retention-induced read retries hit long-stored data, i.e. host
        # reads.  Refresh-internal reads either target data about to be
        # rewritten anyway or verify *freshly reprogrammed* pages whose
        # RBER is far below the retry threshold, so they decode hard.
        if priority is IoPriority.HOST_READ:
            retries = self.retry_model.sample_retries(
                self._host_retry_rng, senses=op.senses
            )
        else:
            retries = 0
        if retries:
            self.metrics.read_retries += retries
        passes = 1 + retries
        # Read retry re-senses the wordline with shifted voltages ([38]):
        # the memory-access stage repeats per pass and the decoder runs
        # per attempt, but the page transfers over the channel once, after
        # the final successful sense.
        sense_us = self.timing.read_us(op.senses) * passes
        transfer_us = self.timing.transfer_us
        decode_us = self.timing.ecc_decode_us * passes

        if span is None:
            # Null-tracer fast path: identical to the uninstrumented pipe.
            def after_transfer(start_us: float, end_us: float) -> None:
                # Pipelined hardware ECC: latency only, no contention.
                self.engine.at(end_us + decode_us, lambda: on_done(start_us, end_us + decode_us))

            def after_sense(start_us: float, end_us: float) -> None:
                channel.submit(priority, transfer_us, after_transfer)

            die.submit(priority, sense_us, after_sense)
            return

        record = _PageStages(
            op.block_index, op.page, op.senses, retries, submit_us=self.engine.now
        )
        record._stage_submit_us = record.submit_us

        def after_transfer_traced(start_us: float, end_us: float) -> None:
            record.queue_wait_us += start_us - record._stage_submit_us
            record.transfer_us = end_us - start_us
            record.ecc_us = decode_us
            record.end_us = end_us + decode_us

            def fire() -> None:
                span.add_page(record)
                on_done(start_us, end_us + decode_us)

            self.engine.at(record.end_us, fire)

        def after_sense_traced(start_us: float, end_us: float) -> None:
            record.queue_wait_us += start_us - record._stage_submit_us
            record.sense_us = end_us - start_us
            record._stage_submit_us = end_us
            channel.submit(priority, transfer_us, after_transfer_traced)

        die.submit(priority, sense_us, after_sense_traced)

    def _issue_write(
        self,
        priority: IoPriority,
        die: Resource,
        channel: Resource,
        on_done,
        op: PhysOp | None = None,
        span: _RequestSpan | None = None,
    ) -> None:
        if span is None:
            def after_transfer(start_us: float, end_us: float) -> None:
                die.submit(priority, self.timing.program_us, on_done)

            channel.submit(priority, self.timing.transfer_us, after_transfer)
            return

        record = _PageStages(
            op.block_index if op is not None else -1,
            op.page if op is not None and op.page is not None else -1,
            senses=0,
            retries=0,
            submit_us=self.engine.now,
        )
        record._stage_submit_us = record.submit_us

        def program_done(start_us: float, end_us: float) -> None:
            record.queue_wait_us += start_us - record._stage_submit_us
            record.program_us = end_us - start_us
            record.end_us = end_us
            span.add_page(record)
            on_done(start_us, end_us)

        def after_transfer_traced(start_us: float, end_us: float) -> None:
            record.queue_wait_us += start_us - record._stage_submit_us
            record.transfer_us = end_us - start_us
            record._stage_submit_us = end_us
            die.submit(priority, self.timing.program_us, program_done)

        channel.submit(priority, self.timing.transfer_us, after_transfer_traced)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def utilisation_report(self) -> dict[str, float]:
        """Mean die and channel utilisation over the simulated span.

        Useful for checking which resource bounds a configuration: with
        Table II's 16 dies per channel, heavy sequential loads can shift
        the bottleneck from the sense stage to the channel transfers,
        which dilutes any sense-time optimisation (see EXPERIMENTS.md).
        """
        elapsed = self.metrics.elapsed_us
        if elapsed <= 0:
            return {"die": 0.0, "channel": 0.0}
        die = sum(r.utilisation(elapsed) for r in self.dies) / len(self.dies)
        channel = sum(r.utilisation(elapsed) for r in self.channels) / len(
            self.channels
        )
        return {"die": die, "channel": channel}

    def queue_wait_report(self) -> dict[str, dict[str, dict[str, float]]]:
        """Queue-wait totals per resource class and dispatch priority.

        Aggregates every die (and every channel) into one entry per
        priority class: ops served, total wait, mean wait.  This is the
        "queueing at chips/channels" attribution the paper's Sec. V-A
        discusses — the indirect benefit of faster senses is visible
        here as shrinking host-read wait, not in the sense time itself.
        """

        def aggregate(resources: list[Resource]) -> dict[str, dict[str, float]]:
            merged: dict[str, dict[str, float]] = {}
            for resource in resources:
                for cls, stats in resource.queue_wait_stats().items():
                    bucket = merged.setdefault(
                        cls, {"ops": 0, "total_wait_us": 0.0, "mean_wait_us": 0.0}
                    )
                    bucket["ops"] += stats["ops"]
                    bucket["total_wait_us"] += stats["total_wait_us"]
            for bucket in merged.values():
                if bucket["ops"]:
                    bucket["mean_wait_us"] = bucket["total_wait_us"] / bucket["ops"]
            return merged

        return {"die": aggregate(self.dies), "channel": aggregate(self.channels)}

    def _fold_counters(self) -> None:
        counters = self.ftl.counters
        self.metrics.gc_invocations = counters.gc_invocations
        self.metrics.gc_page_moves = counters.gc_page_moves
        self.metrics.block_erases = counters.block_erases
        self.metrics.refresh_invocations = counters.refresh_invocations
        self.metrics.refresh_page_moves = counters.refresh_page_moves
        self.metrics.refresh_adjusted_wordlines = counters.refresh_adjusted_wordlines
        self.metrics.refresh_reprogrammed_pages = counters.refresh_reprogrammed_pages
        self.metrics.refresh_corrupted_pages = counters.refresh_corrupted_pages
        self.metrics.refresh_extra_reads = counters.refresh_reprogrammed_pages
        self.metrics.unmapped_reads = counters.unmapped_reads
