"""SSD simulator orchestration: requests in, staged op pipelines out.

The simulator is a thin conductor over the layered architecture (see
``docs/architecture.md``):

* **workload drivers** — :mod:`repro.sim.drivers` feed timed request
  streams (open- or closed-loop) and tick the refresh daemon;
* **scheduling policy** — :mod:`repro.sim.policy` decides which resource
  queue each dispatch class waits in and how internal traffic is paced
  (read-first by default, Table II);
* **op pipeline** — :mod:`repro.sim.pipeline` walks each physical op
  through its declarative stages (sense/transfer/ECC for reads,
  transfer/program for writes, adjust/erase for internal ops);
* **resources** — contended dies and channels, where all queueing
  behaviour comes from;
* **FTL** — reached only through the :class:`FlashTranslation` protocol
  (:mod:`repro.ftl.ops`): logical state transitions are applied eagerly
  at dispatch and come back as :class:`PhysOp` sequences.

Approximation note (shared with DiskSim-class simulators): because FTL
metadata transitions are applied eagerly at dispatch, a page relocated
by refresh is readable at its new location while the physical moves are
still queued; the *load* of those moves is fully accounted on the
resources either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.coding import GrayCoding
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..flash.errors import ReadRetryModel
from ..flash.geometry import Geometry
from ..flash.timing import TimingSpec
from ..ftl.ftl import Ftl
from ..ftl.gc import GcPolicy
from ..ftl.ops import FlashTranslation, OpKind, PhysOp
from ..ftl.refresh import RefreshPolicy
from ..obs.interval import IntervalCollector
from ..obs.tracer import NULL_TRACER, Tracer
from .accel import publish_accel_state
from .backends import ExecutionBackend, make_backend
from .drivers import run_closed_loop, run_open_loop
from .engine import SimEngine
from .metrics import SimMetrics
from .pipeline import OpPipeline, PageRecord, RequestSpan, StagePlanner
from .policy import SchedulingPolicy, make_policy
from .resources import (
    IoPriority,
    Resource,
    aggregate_queue_waits,
    mean_utilisation,
)
from .scheduler import HostRequest, OutstandingRequest

__all__ = ["SsdSimulator"]


@dataclass
class _NullCompletion:
    """Completion sink for internal (GC / refresh) operations."""

    count: int = 0

    def __call__(self, start_us: float, end_us: float) -> None:
        self.count += 1


class SsdSimulator:
    """Event-driven SSD with an (optionally IDA-enabled) FTL.

    Args:
        geometry: Device topology.
        timing: Operation latencies.
        coding: Conventional cell coding.
        refresh_policy: Baseline or IDA refresh configuration.
        gc_policy: GC watermarks.
        retry_model: Per-read retry sampler (Fig. 11 lifetime phases);
            ``None`` or ``fail_prob = 0`` disables retries.
        seed: RNG seed for disturb and retry sampling.
        allocation: Static allocation strategy name.
        policy: Scheduling policy instance or registry name
            (``"read-first"`` / ``"fcfs"`` / ``"throttled"``); ``None``
            selects the paper's read-first default.
        backend: Execution backend instance or registry name
            (``"reference"`` / ``"batch"``, see
            :mod:`repro.sim.backends`); ``None`` selects the
            event-at-a-time reference.  Backends change only run
            mechanics — metrics and traces are byte-identical.
        tracer: Structured event tracer; ``None`` = tracing disabled
            (the null fast path).  Tracing is passive: it never schedules
            events, touches RNG streams, or alters metrics.
        collector: Optional interval time-series collector; bound to
            this simulator's engine and resources, started per run.
        profiler: Optional :class:`~repro.obs.profiler.SimProfiler`;
            bound like the collector and fed stage boundaries, request
            completions and (via the collector's cadence) interval
            samples.  Passive — ``None`` costs one check per boundary.
        faults: Optional :class:`~repro.faults.FaultPlan`; when given, a
            :class:`~repro.faults.FaultInjector` is bound to this
            simulator (timed events scheduled, FTL recovery armed, op
            dispatch matched against the plan's ordinals).  ``None`` —
            the default — costs one ``is None`` check per dispatched op,
            the same zero-cost off-path discipline as the observability
            hooks.
        health: Optional :class:`~repro.obs.health.HealthMonitor`; bound
            to this simulator and sampled on the collector's cadence
            (pass a ``collector`` too, or no snapshots close).  When the
            monitor carries a metrics registry, the simulator and FTL
            additionally publish live counters/histograms into it
            (per-class latency, read retries, GC/refresh/wear activity).
            Passive and ``None``-cost like every other hook.
    """

    def __init__(
        self,
        geometry: Geometry,
        timing: TimingSpec,
        coding: GrayCoding,
        refresh_policy: RefreshPolicy,
        gc_policy: GcPolicy | None = None,
        retry_model: ReadRetryModel | None = None,
        seed: int = 1,
        allocation: str = "cwdp",
        policy: SchedulingPolicy | str | None = None,
        tracer: Tracer | None = None,
        collector: IntervalCollector | None = None,
        profiler=None,
        faults: FaultPlan | None = None,
        health=None,
        backend: ExecutionBackend | str | None = None,
        ftl: FlashTranslation | None = None,
    ) -> None:
        self.geometry = geometry
        self.timing = timing
        self.engine = SimEngine()
        self.metrics = SimMetrics()
        self.policy = make_policy(policy)
        self.backend = make_backend(backend)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.collector = collector
        self.retry_model = retry_model or ReadRetryModel(fail_prob=0.0)
        # Common random numbers: host reads draw retry counts from a
        # dedicated stream, so paired baseline/IDA runs of the same trace
        # see identical retry sequences (the i-th host page read retries
        # the same number of times in both systems); internal reads never
        # sample retries, so their differing op counts cannot skew it.
        self._host_retry_rng = np.random.default_rng(seed + 101)
        if ftl is not None:
            # Adopt a pre-built translation layer — the power-loss
            # recovery path mounts an FTL from on-flash metadata
            # (:func:`repro.ftl.recovery.mount_device`) and resumes the
            # workload on a fresh simulator around it.
            self.ftl: FlashTranslation = ftl
        else:
            self.ftl = Ftl(
                geometry,
                coding,
                refresh_policy,
                gc_policy=gc_policy,
                rng=np.random.default_rng(seed + 1),
                allocation=allocation,
                tracer=self.tracer,
            )
        self.dies = [
            Resource(self.engine, f"die{d}", kind="die", index=d)
            for d in range(geometry.total_dies)
        ]
        self.channels = [
            Resource(self.engine, f"chan{c}", kind="channel", index=c)
            for c in range(geometry.channels)
        ]
        self.profiler = profiler if (profiler is not None and profiler.enabled) else None
        if self.profiler is not None:
            self.profiler.bind(self.engine, self.dies, self.channels)
        self.ops_dispatched = 0
        #: Optional hook ``fn(request, is_read)`` fired when a host
        #: request fully completes (its acknowledgement instant).  The
        #: crash-consistency harness uses it as the acked-write oracle:
        #: data from any request acknowledged before a power cut must
        #: survive the remount.  ``None`` costs one check per completion.
        self.on_host_request_complete = None
        self._internal_sink = _NullCompletion()
        self._planner = StagePlanner(timing)
        # The policy's class -> queue mapping is static; resolve it once
        # instead of per dispatched op.
        self._queue_of = tuple(self.policy.queue_class(k) for k in IoPriority)
        # Routing is static: block -> plane -> (die, channel).  One table
        # lookup per op replaces three geometry computations on the hot
        # path.
        self._plane_routes = [
            (
                geometry.die_of_plane(plane),
                self.dies[geometry.die_of_plane(plane)],
                self.channels[geometry.channel_of_plane(plane)],
            )
            for plane in range(geometry.total_planes)
        ]
        if self.collector is not None:
            self.collector.bind(self.engine, self.dies, self.channels)
            # Utilization/queue-depth timelines ride the collector's
            # sampling cadence; without a collector the profiler still
            # attributes latency, it just has no timeline.
            if self.profiler is not None:
                self.collector.attach_profiler(self.profiler)
        self.faults = FaultInjector(faults) if faults is not None else None
        if self.faults is not None:
            self.faults.bind(self)
        # Device-health telemetry: the monitor samples on the collector's
        # cadence; a registry riding on it additionally receives live
        # per-class latency and retry publishes from the hot path (one
        # ``is None`` check each when telemetry is off).
        self.health = health
        self._lat_read = None
        self._lat_write = None
        self._retry_counter = None
        if self.health is not None:
            self.health.bind(self)
            if self.collector is not None:
                self.collector.attach_health(self.health)
            registry = self.health.registry
            if registry is not None:
                latency = registry.histogram(
                    "host_latency_us",
                    "host request response time",
                    labels=("request_class",),
                )
                self._lat_read = latency.labels(request_class="read")
                self._lat_write = latency.labels(request_class="write")
                self._retry_counter = registry.counter(
                    "flash_read_retries_total",
                    "extra sensing passes forced by failed LDPC decodes",
                ).unlabeled
                self.ftl.bind_telemetry(registry)
                publish_accel_state(registry)

    # ------------------------------------------------------------------
    # Preconditioning
    # ------------------------------------------------------------------
    def preload(self, lpns: Iterable[int], start_us: float, end_us: float) -> None:
        """Untimed fill of the given LPNs, program times spread linearly.

        Spreading program times over ``[start_us, end_us)`` (typically one
        refresh period before the trace starts) staggers block refresh
        ages so refresh events do not all fire at once.
        """
        lpn_list = list(lpns)
        if not lpn_list:
            return
        step = (end_us - start_us) / len(lpn_list)
        times = start_us + np.arange(len(lpn_list), dtype=np.float64) * step
        self.backend.apply_untimed(self, lpn_list, times)

    def age(self, lpns: Iterable[int], pseudo_now_us: float) -> None:
        """Untimed update writes — creates the invalid lower pages IDA needs."""
        self.backend.apply_untimed(self, list(lpns), pseudo_now_us)

    # ------------------------------------------------------------------
    # Trace execution (delegates to the workload drivers)
    # ------------------------------------------------------------------
    def run_requests(
        self,
        requests: list[HostRequest],
        background_updates: list[tuple[float, list[int]]] | None = None,
    ) -> SimMetrics:
        """Replay a timed stream open-loop (see :func:`drivers.run_open_loop`)."""
        return run_open_loop(self, requests, background_updates)

    def run_closed_loop(
        self,
        requests: list[HostRequest],
        queue_depth: int = 32,
        background_updates: list[tuple[float, list[int]]] | None = None,
    ) -> SimMetrics:
        """Fixed-queue-depth run (see :func:`drivers.run_closed_loop`)."""
        return run_closed_loop(self, requests, queue_depth, background_updates)

    # ------------------------------------------------------------------
    # Host dispatch
    # ------------------------------------------------------------------
    def dispatch_read(self, request: HostRequest, on_request_done=None) -> None:
        """Fan one host read out into per-page read pipelines."""
        now = self.engine.now
        ops = [self.ftl.host_read(lpn, now) for lpn in request.lpns]
        for op in ops:
            assert op.bit is not None and op.wl_validity is not None
            self.metrics.read_mix.record(op.bit, op.wl_validity, op.from_ida)
        self._launch_request(
            request, ops, IoPriority.HOST_READ, "read_span", on_request_done
        )

    def dispatch_write(self, request: HostRequest, on_request_done=None) -> None:
        """Fan one host write out into page programs (plus any GC work)."""
        now = self.engine.now
        host_ops: list[PhysOp] = []
        for lpn in request.lpns:
            result = self.ftl.host_write(lpn, now)
            host_ops.extend(result.host_ops)
            self.issue_internal_sequence(result.internal_ops)
        self._launch_request(
            request, host_ops, IoPriority.HOST_WRITE, "write_span", on_request_done
        )

    def _launch_request(
        self,
        request: HostRequest,
        ops: list[PhysOp],
        klass: IoPriority,
        span_kind: str,
        on_request_done,
    ) -> None:
        span = RequestSpan(request) if self.tracer.enabled else None
        prof_ctx = (
            self.profiler.begin_request(
                request.request_id,
                request.arrival_us,
                "read" if klass is IoPriority.HOST_READ else "write",
            )
            if self.profiler is not None
            else None
        )
        stats = (
            self.metrics.read_response
            if klass is IoPriority.HOST_READ
            else self.metrics.write_response
        )
        record_interval = (
            None
            if self.collector is None
            else (
                self.collector.record_read
                if klass is IoPriority.HOST_READ
                else self.collector.record_write
            )
        )
        observe_latency = (
            self._lat_read if klass is IoPriority.HOST_READ else self._lat_write
        )

        def complete(req: HostRequest, now_us: float) -> None:
            response = now_us - req.arrival_us + self.timing.host_overhead_us
            stats.add(response)
            if klass is IoPriority.HOST_READ:
                self.metrics.bytes_read += req.size_bytes
            else:
                self.metrics.bytes_written += req.size_bytes
            if record_interval is not None:
                record_interval(response, req.size_bytes)
            if observe_latency is not None:
                observe_latency.observe(response)
            if span is not None:
                span.emit(self.tracer, span_kind, now_us, self.timing.host_overhead_us)
            if prof_ctx is not None:
                self.profiler.end_request(
                    prof_ctx, now_us, self.timing.host_overhead_us
                )
            if self.on_host_request_complete is not None:
                self.on_host_request_complete(
                    req, klass is IoPriority.HOST_READ
                )
            if on_request_done is not None:
                on_request_done()

        outstanding = OutstandingRequest(request, len(ops), complete)

        def page_done(start_us: float, end_us: float) -> None:
            outstanding.page_done(end_us)

        for op in ops:
            self._issue(op, klass, page_done, span=span, prof_ctx=prof_ctx)

    # ------------------------------------------------------------------
    # Op issue (policy + pipeline)
    # ------------------------------------------------------------------
    def issue_internal_sequence(self, ops: list[PhysOp]) -> None:
        """Run internal (GC / refresh) ops one after another.

        A refresh or GC pass is a background *process* that works through
        its pages sequentially — issuing its operations as a chain (each
        submitted when the previous completes) spreads the load over time
        instead of flooding every die queue at the scan instant.  Host
        reads still overtake each queued internal op via priority; a
        throttling policy additionally inserts an idle gap between the
        chained ops.
        """
        if not ops:
            return
        remaining = list(ops)
        gap_us = self.policy.internal_gap_us

        def issue_next(start_us: float = 0.0, end_us: float = 0.0) -> None:
            if not remaining:
                return
            op = remaining.pop(0)
            self._issue(op, IoPriority.INTERNAL, chain)

        def throttled_chain(start_us: float, end_us: float) -> None:
            if remaining:
                self.engine.after(gap_us, issue_next)

        # With no gap the next op issues synchronously inside the
        # completion callback — same event ordering as a direct chain.
        chain = throttled_chain if gap_us > 0.0 else issue_next
        issue_next()

    def _issue(
        self,
        op: PhysOp,
        klass: IoPriority,
        on_done,
        span: RequestSpan | None = None,
        prof_ctx=None,
    ) -> None:
        """Route one physical op into its stage pipeline."""
        die_index, die, channel = self._plane_routes[
            self.geometry.plane_of_block(op.block_index)
        ]
        fault = (
            self.faults.on_dispatch(op, klass is IoPriority.HOST_READ)
            if self.faults is not None
            else None
        )
        retries = 0
        if op.kind is OpKind.READ:
            # Retention-induced read retries hit long-stored data, i.e.
            # host reads.  Refresh-internal reads either target data
            # about to be rewritten anyway or verify *freshly
            # reprogrammed* pages whose RBER is far below the retry
            # threshold, so they decode hard.
            if klass is IoPriority.HOST_READ:
                retries = self.retry_model.sample_retries(
                    self._host_retry_rng, senses=op.senses
                )
                if fault is not None:
                    # Retry-ladder exhaustion: the CRN draws above are
                    # consumed exactly as usual (paired runs stay in
                    # step), then the ladder is forced to its full
                    # length — the read decodes only via outer
                    # protection, handled at completion.
                    retries = self.retry_model.max_retries
                if retries:
                    self.metrics.read_retries += retries
                    if self._retry_counter is not None:
                        self._retry_counter.inc(retries)
                    if self.faults is not None:
                        self.faults.note_read_retries(op, retries)
            stages = self._planner.read(die_index, die, channel, op.senses, 1 + retries)
        elif op.kind is OpKind.WRITE:
            stages = self._planner.write(die_index, die, channel)
        elif op.kind is OpKind.ADJUST:
            stages = self._planner.adjust(die_index, die)
        elif op.kind is OpKind.ERASE:
            stages = self._planner.erase(die_index, die)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown op kind {op.kind}")
        self.ops_dispatched += 1
        record = None
        if span is not None:
            record = PageRecord(
                op.block_index,
                op.page if op.page is not None else -1,
                op.senses,
                retries,
                submit_us=self.engine.now,
            )
        profile = (
            self.profiler.begin_op(klass, prof_ctx)
            if self.profiler is not None
            else None
        )
        if fault is not None:
            on_done = self.faults.wrap_completion(fault, on_done)
        elif op.kind is OpKind.ADJUST:
            # Clean adjust completions write their on-flash commit
            # record and retire any torn-recovery journal intent.  This
            # runs with or without a fault plan: the SPOR journal
            # columns are always maintained, so a crash-free run leaves
            # no stale intents behind for a later mount to misread.
            on_done = self._wrap_adjust_commit(op, on_done)
        OpPipeline(
            self.engine,
            stages,
            klass,
            self._queue_of[klass],
            on_done,
            span=span,
            record=record,
            profile=profile,
            fault=fault,
        ).start()

    def _wrap_adjust_commit(self, op: PhysOp, inner):
        """Completion callback committing a clean adjust durably."""

        def completion(start_us: float, end_us: float) -> None:
            self.ftl.commit_adjust(op.block_index, op.wordline)
            inner(start_us, end_us)

        return completion

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def utilisation_report(self) -> dict[str, float]:
        """Mean die and channel utilisation over the simulated span.

        Useful for checking which resource bounds a configuration: with
        Table II's 16 dies per channel, heavy sequential loads can shift
        the bottleneck from the sense stage to the channel transfers,
        which dilutes any sense-time optimisation (see EXPERIMENTS.md).
        """
        elapsed = self.metrics.elapsed_us
        if elapsed <= 0:
            return {"die": 0.0, "channel": 0.0}
        return {
            "die": mean_utilisation(self.dies, elapsed),
            "channel": mean_utilisation(self.channels, elapsed),
        }

    def queue_wait_report(self) -> dict[str, dict[str, dict[str, float]]]:
        """Queue-wait totals per resource class and dispatch priority.

        One entry per priority class across all dies (and all channels):
        ops served, total wait, mean wait (Sec. V-A's "queueing at
        chips/channels" attribution).
        """
        return {
            "die": aggregate_queue_waits(self.dies),
            "channel": aggregate_queue_waits(self.channels),
        }

    def fold_counters(self) -> None:
        """Merge FTL counters and dispatch totals into the run metrics."""
        counters = self.ftl.counters
        self.metrics.phys_ops_dispatched = self.ops_dispatched
        self.metrics.gc_invocations = counters.gc_invocations
        self.metrics.gc_page_moves = counters.gc_page_moves
        self.metrics.block_erases = counters.block_erases
        self.metrics.refresh_invocations = counters.refresh_invocations
        self.metrics.refresh_page_moves = counters.refresh_page_moves
        self.metrics.refresh_adjusted_wordlines = counters.refresh_adjusted_wordlines
        self.metrics.refresh_reprogrammed_pages = counters.refresh_reprogrammed_pages
        self.metrics.refresh_corrupted_pages = counters.refresh_corrupted_pages
        self.metrics.refresh_extra_reads = counters.refresh_reprogrammed_pages
        self.metrics.unmapped_reads = counters.unmapped_reads
        self.metrics.program_failures = counters.program_failures
        self.metrics.erase_failures = counters.erase_failures
        self.metrics.grown_bad_blocks = counters.grown_bad_blocks
        self.metrics.uncorrectable_reads = counters.uncorrectable_reads
        self.metrics.read_reclaims = counters.read_reclaims
        self.metrics.torn_adjust_recoveries = counters.torn_adjust_recoveries
        self.metrics.die_failures = counters.die_failures
        self.metrics.fault_page_moves = counters.fault_page_moves

    def fault_summary(self) -> dict | None:
        """The bound injector's plan/event account; ``None`` without one."""
        return None if self.faults is None else self.faults.summary()
