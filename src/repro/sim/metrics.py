"""Measurement collectors: response times, throughput, read-mix accounting.

The evaluation reports (i) mean read response time per workload, normalised
to the baseline (Figs. 8, 9, 11, Table V); (ii) device throughput
(Fig. 10); and (iii) the read-mix and refresh-overhead breakdowns (Fig. 4,
Table IV).  Everything those artifacts need is accumulated here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.histogram import Histogram

__all__ = ["LatencyStats", "ReadMixCounters", "SimMetrics"]


class LatencyStats:
    """Streaming latency statistics with exact percentiles on demand.

    The sorted order is computed lazily and cached, so reporting code can
    query several percentiles (``summary()`` asks for three) at the cost
    of one sort; ``add`` invalidates the cache.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._total = 0.0
        self._sorted: list[float] | None = None

    def add(self, value_us: float) -> None:
        if value_us < 0:
            raise ValueError("latencies must be non-negative")
        self._samples.append(value_us)
        self._total += value_us
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total_us(self) -> float:
        return self._total

    @property
    def mean_us(self) -> float:
        return self._total / len(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float | None:
        """Exact ``q``-th percentile (0 < q <= 100) by nearest-rank.

        Degenerate populations have well-defined answers instead of
        surprises: an empty population has no percentiles (``None`` —
        0.0 would be indistinguishable from a genuinely instant
        response), and a single sample is every percentile of itself.
        """
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        if not self._samples:
            return None
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = max(1, math.ceil(q / 100 * len(self._sorted)))
        return self._sorted[rank - 1]

    @property
    def max_us(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def summary(self) -> dict:
        """Count / mean / p50 / p95 / p99 / max as a JSON-ready dict."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.percentile(50),
            "p95_us": self.percentile(95),
            "p99_us": self.percentile(99),
            "max_us": self.max_us,
        }

    def histogram(self, bounds: Sequence[float] | None = None) -> "Histogram":
        """Fold the samples into a fixed-bucket :class:`Histogram`.

        The compact form results ship across process boundaries: a few
        hundred integers regardless of sample count, with exact count /
        mean / max and bucket-quantised percentiles.
        """
        from ..obs.histogram import Histogram

        hist = Histogram(bounds)
        for value in self._samples:
            hist.add(value)
        return hist


@dataclass
class ReadMixCounters:
    """Fig. 4 accounting: page-type and validity-scenario counts per read.

    Counted at read-dispatch time, per *page* read:

    * ``by_type[bit]`` — reads landing on each page type;
    * ``csb_with_invalid_lsb`` — CSB reads whose wordline LSB is invalid;
    * ``msb_with_invalid_lower`` — MSB reads whose LSB and/or CSB is
      invalid;
    * ``ida_fast_reads`` — reads served from IDA-reprogrammed wordlines.
    """

    by_type: dict[int, int] = field(default_factory=dict)
    csb_with_invalid_lsb: int = 0
    msb_with_invalid_lower: int = 0
    ida_fast_reads: int = 0
    total: int = 0

    def record(
        self,
        bit: int,
        wordline_validity: tuple[bool, ...],
        from_ida: bool,
    ) -> None:
        self.total += 1
        self.by_type[bit] = self.by_type.get(bit, 0) + 1
        bits = len(wordline_validity)
        if bits >= 3:
            if bit == 1 and not wordline_validity[0]:
                self.csb_with_invalid_lsb += 1
            if bit == bits - 1 and not all(wordline_validity[:-1]):
                self.msb_with_invalid_lower += 1
        elif bits == 2:
            if bit == 1 and not wordline_validity[0]:
                self.msb_with_invalid_lower += 1
        if from_ida:
            self.ida_fast_reads += 1

    def fraction_of_type(self, bit: int) -> float:
        """Fraction of all page reads that hit page type ``bit``."""
        if not self.total:
            return 0.0
        return self.by_type.get(bit, 0) / self.total

    def csb_invalid_fraction(self) -> float:
        """Fraction of CSB reads whose associated LSB is invalid."""
        csb = self.by_type.get(1, 0)
        return self.csb_with_invalid_lsb / csb if csb else 0.0

    def msb_invalid_fraction(self, msb_bit: int) -> float:
        """Fraction of MSB reads whose associated lower bits are invalid."""
        msb = self.by_type.get(msb_bit, 0)
        return self.msb_with_invalid_lower / msb if msb else 0.0


@dataclass
class SimMetrics:
    """Everything one simulation run measures."""

    read_response: LatencyStats = field(default_factory=LatencyStats)
    write_response: LatencyStats = field(default_factory=LatencyStats)
    read_mix: ReadMixCounters = field(default_factory=ReadMixCounters)
    bytes_read: int = 0
    bytes_written: int = 0
    start_us: float = 0.0
    end_us: float = 0.0
    gc_invocations: int = 0
    gc_page_moves: int = 0
    block_erases: int = 0
    refresh_invocations: int = 0
    refresh_page_moves: int = 0
    refresh_adjusted_wordlines: int = 0
    refresh_reprogrammed_pages: int = 0
    refresh_corrupted_pages: int = 0
    refresh_extra_reads: int = 0
    read_retries: int = 0
    unmapped_reads: int = 0
    phys_ops_dispatched: int = 0
    # Fault handling (all zero unless a FaultPlan is active).
    program_failures: int = 0
    erase_failures: int = 0
    grown_bad_blocks: int = 0
    uncorrectable_reads: int = 0
    read_reclaims: int = 0
    torn_adjust_recoveries: int = 0
    die_failures: int = 0
    fault_page_moves: int = 0

    @property
    def elapsed_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)

    def throughput_mb_s(self) -> float:
        """Host data rate over the simulated span, in MB/s."""
        if self.elapsed_us <= 0:
            return 0.0
        total_bytes = self.bytes_read + self.bytes_written
        return (total_bytes / 1e6) / (self.elapsed_us / 1e6)

    def read_throughput_mb_s(self) -> float:
        if self.elapsed_us <= 0:
            return 0.0
        return (self.bytes_read / 1e6) / (self.elapsed_us / 1e6)

    def phys_ops_per_wall_second(self, wall_seconds: float) -> float:
        """Simulated physical ops per second of *wall* time.

        The simulator-throughput figure ``benchmarks/bench_pipeline.py``
        gates on: how many timed flash operations (reads, programs,
        adjusts, erases) the pipeline machinery pushes through per second
        of real time.
        """
        if wall_seconds <= 0:
            return 0.0
        return self.phys_ops_dispatched / wall_seconds
