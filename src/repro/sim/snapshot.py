"""Warm-state snapshots: capture, cache, and transport of warmed devices.

Every experiment run spends its first act on the same ritual — sequential
footprint fill plus aging updates (``warm_device`` in
:mod:`repro.experiments.runner`) — and sweeps whose units differ only in
a swept parameter (DTR threshold, refresh mode, policy, fault plan)
repeat that ritual once per unit over an *identical* warmed state.  This
module makes the warm state a first-class value:

* :func:`capture_warm_state` / :func:`restore_warm_state` — everything
  the warm-up mutates, captured as one picklable :class:`WarmState`:
  the columnar :class:`~repro.flash.state.DeviceStateSnapshot`, the
  page-map forward column (reverse rebuilt on load), allocator rotation
  and cursor, per-plane pool membership (the free list is an
  order-sensitive FIFO), FTL counters, refresh reports, grown-bad and
  retry-pressure records, journal contents, and both RNG bit-generator
  states.  A restored run is byte-identical to a cold run — pinned by
  ``tests/experiments/test_snapshot_parity.py``.
* :class:`SnapshotStore` — a content-addressed cache (in-process LRU,
  optional on-disk spill) keyed by the warm-relevant slice of a run's
  configuration (see ``warm_cache_key`` in the experiments layer).
  Corrupted, truncated or stale-schema spill files *never* crash a run:
  they fall back to a cold preload, bump ``stats.fallbacks`` (and the
  ``snapshot_store_fallbacks_total`` counter when a metrics registry is
  attached), and log a warning.
* :func:`publish_warm_state` / :func:`attach_warm_state` — one
  ``multiprocessing.shared_memory`` segment per distinct warm state, so
  pool workers map the bytes the parent serialized once instead of
  receiving hundreds of MB through the pickle pipe per unit.  The parent
  owns the segment (created before the fan-out, closed and unlinked in a
  ``finally``); workers attach read-only, copy out, and detach.  On
  Python < 3.13 the attach helper keeps the segment out of the worker's
  ``resource_tracker`` entirely (see :func:`_attach_untracked`) — the
  tracker would otherwise unlink a parent-owned segment prematurely.

Restore-equivalence argument (why a fresh simulator plus a restored warm
state equals a cold warmed simulator): the warm-up runs entirely through
the untimed FTL path — it never touches the :class:`SimEngine` queue or
clock, never samples the host-retry or disturb RNG streams, and never
emits trace events unless a tracer is attached (which is why traced runs
always warm up cold).  The bindings a simulator makes at construction
time (tracer, collector, profiler, fault injector, health monitor) are
therefore disjoint from the state the warm-up mutates, and swapping that
state underneath a freshly constructed simulator reproduces the cold
path exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import pickle
import tempfile
from collections import OrderedDict, deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..flash.state import DeviceStateSnapshot
from ..ftl.ops import FtlCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .ssd import SsdSimulator

__all__ = [
    "SNAPSHOT_SCHEMA",
    "PlaneSnapshot",
    "WarmState",
    "capture_warm_state",
    "restore_warm_state",
    "WarmHandle",
    "SnapshotStats",
    "SnapshotStore",
    "SharedSnapshotRef",
    "publish_warm_state",
    "attach_warm_state",
]

_log = logging.getLogger(__name__)

#: Wire-format version of :class:`WarmState`.  Bump whenever a captured
#: field changes meaning or layout; stores treat any other value as
#: stale and fall back to a cold preload.  2: the device snapshot
#: gained the on-flash SPOR metadata columns (OOB records, block
#: summaries, reprogram journal, write-sequence counter).
SNAPSHOT_SCHEMA = 2

#: Spill-file magic: identifies the container before anything is parsed.
_SPILL_MAGIC = b"IDASNAP1"
_DIGEST_LEN = 32  # sha256


@dataclass(frozen=True)
class PlaneSnapshot:
    """One :class:`~repro.flash.plane.PlanePool`'s membership sets.

    ``free`` keeps its deque order — the pool is a FIFO, and allocation
    determinism depends on which erased block opens next.
    """

    free: tuple[int, ...]
    active: int | None
    used: tuple[int, ...]
    retired: tuple[int, ...]


@dataclass(frozen=True)
class WarmState:
    """Everything the warm-up mutates, as one picklable value.

    Tuples and ``bytes`` throughout: a stored warm state is shared by
    every run that restores from it, so nothing a restored simulator
    mutates may alias the snapshot (restore copies into fresh mutable
    containers).
    """

    schema: int
    device: DeviceStateSnapshot
    map_forward: bytes
    alloc_strategy: str
    alloc_order: tuple[int, ...]
    alloc_cursor: int
    planes: tuple[PlaneSnapshot, ...]
    counters: FtlCounters
    refresh_reports: tuple
    grown_bad: tuple[int, ...]
    retry_pressure: tuple[tuple[int, int], ...]
    journal: tuple
    ftl_rng_state: dict
    host_retry_rng_state: dict

    def nbytes(self) -> int:
        """Approximate payload size (dominated by the device columns)."""
        return self.device.nbytes() + len(self.map_forward)


def capture_warm_state(sim: "SsdSimulator") -> WarmState:
    """Capture a warmed simulator's restorable state.

    Call at the warm-state boundary — after ``preload`` + ``age``, before
    any timed event — on a simulator whose engine clock is untouched.
    """
    ftl = sim.ftl
    return WarmState(
        schema=SNAPSHOT_SCHEMA,
        device=ftl.table.state.snapshot(),
        map_forward=ftl.map.export_forward(),
        alloc_strategy=ftl.allocator.strategy,
        alloc_order=tuple(ftl.allocator.order),
        alloc_cursor=ftl.allocator._cursor,
        planes=tuple(
            PlaneSnapshot(
                free=tuple(pool.free),
                active=pool.active,
                used=tuple(sorted(pool.used)),
                retired=tuple(sorted(pool.retired)),
            )
            for pool in ftl.table.planes
        ),
        counters=dataclasses.replace(ftl.counters),
        refresh_reports=tuple(
            dataclasses.replace(report) for report in ftl.refresh_reports
        ),
        grown_bad=tuple(ftl.grown_bad),
        retry_pressure=tuple(sorted(ftl._retry_pressure.items())),
        journal=(
            tuple(sorted(ftl._journal.items()))
            if ftl._journal is not None
            else ()
        ),
        ftl_rng_state=ftl.rng.bit_generator.state,
        host_retry_rng_state=sim._host_retry_rng.bit_generator.state,
    )


def restore_warm_state(sim: "SsdSimulator", warm: WarmState) -> None:
    """Load a captured warm state into a freshly constructed simulator.

    Every mutable container is rebuilt from the snapshot's immutable
    form, so a shared :class:`WarmState` can seed any number of runs.
    The target's construction-time bindings (tracer, fault injector,
    health, telemetry) are left untouched; in particular the FTL journal
    — which doubles as the fault-recovery arming flag — only has its
    *contents* restored, never its armed/disarmed status.

    Raises:
        ValueError: on a stale schema or geometry/column mismatch (the
            device state is validated before anything is written).
    """
    if warm.schema != SNAPSHOT_SCHEMA:
        raise ValueError(
            f"warm-state schema {warm.schema} is not the supported "
            f"schema {SNAPSHOT_SCHEMA}"
        )
    ftl = sim.ftl
    allocator = ftl.allocator
    if allocator.strategy != warm.alloc_strategy:
        raise ValueError(
            f"warm state was captured under allocation "
            f"{warm.alloc_strategy!r}, simulator uses {allocator.strategy!r}"
        )
    if len(warm.planes) != len(ftl.table.planes):
        raise ValueError(
            f"warm state covers {len(warm.planes)} planes, "
            f"device has {len(ftl.table.planes)}"
        )
    # Device columns first: restore() validates everything before the
    # first byte lands, so a bad snapshot leaves the simulator cold-able.
    ftl.table.state.restore(warm.device)
    ftl.map.load_forward(warm.map_forward)
    allocator.order = list(warm.alloc_order)
    allocator._cursor = warm.alloc_cursor
    for pool, snap in zip(ftl.table.planes, warm.planes, strict=True):
        pool.free = deque(snap.free)
        pool.active = snap.active
        pool.used = set(snap.used)
        pool.retired = set(snap.retired)
    ftl.counters = dataclasses.replace(warm.counters)
    ftl.refresh_reports = [
        dataclasses.replace(report) for report in warm.refresh_reports
    ]
    ftl.grown_bad = list(warm.grown_bad)
    ftl._retry_pressure = dict(warm.retry_pressure)
    if ftl._journal is not None:
        ftl._journal = dict(warm.journal)
    ftl.rng.bit_generator.state = warm.ftl_rng_state
    sim._host_retry_rng.bit_generator.state = warm.host_retry_rng_state


class WarmHandle:
    """One run's connection to the snapshot layer.

    Two flavours: a *cache* handle (``store`` + ``key``) fetches from /
    publishes to a :class:`SnapshotStore`, while a *resolved* handle
    (``state``) carries a warm state that was transported some other way
    — the shared-memory fan-out path.  ``outcome`` records what the run
    actually did (``"hit"`` / ``"miss"``) for executor accounting.
    """

    __slots__ = ("store", "key", "state", "outcome")

    def __init__(
        self,
        store: "SnapshotStore | None" = None,
        key: str | None = None,
        state: WarmState | None = None,
    ) -> None:
        self.store = store
        self.key = key
        self.state = state
        self.outcome: str | None = None

    def fetch(self) -> WarmState | None:
        """The warm state this run should restore from, if any."""
        if self.state is not None:
            self.outcome = "hit"
            return self.state
        if self.store is not None and self.key is not None:
            warm = self.store.get(self.key)
            if warm is not None:
                self.outcome = "hit"
                return warm
        self.outcome = "miss"
        return None

    def publish(self, warm: WarmState) -> None:
        """Offer a freshly captured warm state back to the cache."""
        if self.store is not None and self.key is not None:
            self.store.put(self.key, warm)


@dataclass
class SnapshotStats:
    """Cache accounting: ``hits``/``misses`` are per :meth:`~SnapshotStore.get`,
    ``fallbacks`` counts spill files rejected as corrupt or stale, and
    ``stores`` counts :meth:`~SnapshotStore.put` calls."""

    hits: int = 0
    misses: int = 0
    fallbacks: int = 0
    stores: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fallbacks": self.fallbacks,
            "stores": self.stores,
        }


class SnapshotStore:
    """Content-addressed warm-state cache: in-process LRU + disk spill.

    Keys are opaque strings (the experiments layer hashes the
    warm-relevant configuration slice into them).  The LRU bounds
    resident memory; the optional ``spill_dir`` makes snapshots survive
    the process and be shareable across invocations.

    Spill format: ``IDASNAP1`` magic, a sha256 digest of the payload,
    then the pickled :class:`WarmState`.  Loads verify magic, digest and
    schema before trusting a byte; any mismatch — truncation, bit rot,
    a stale schema, an unpicklable payload — is a *fallback*, never an
    exception: :meth:`get` returns ``None``, the caller preloads cold,
    and ``stats.fallbacks`` (plus the ``snapshot_store_fallbacks_total``
    registry counter, when one is attached) records the event.
    """

    def __init__(
        self,
        capacity: int = 4,
        spill_dir: str | Path | None = None,
        registry=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.stats = SnapshotStats()
        self._entries: OrderedDict[str, WarmState] = OrderedDict()
        self._fallback_counter = None
        if registry is not None:
            self._fallback_counter = registry.counter(
                "snapshot_store_fallbacks_total",
                "on-disk warm-state snapshots rejected as corrupted or "
                "stale (run fell back to a cold preload)",
            ).unlabeled

    def _spill_path(self, key: str) -> Path:
        assert self.spill_dir is not None
        return self.spill_dir / f"{key}.snap"

    def _note_fallback(self, key: str, reason: str) -> None:
        self.stats.fallbacks += 1
        if self._fallback_counter is not None:
            self._fallback_counter.inc()
        _log.warning(
            "snapshot %s unusable (%s); falling back to cold preload",
            key,
            reason,
        )

    def get(self, key: str) -> WarmState | None:
        """The cached warm state for ``key``, or ``None`` (cold preload)."""
        warm = self._entries.get(key)
        if warm is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return warm
        if self.spill_dir is not None:
            warm = self._load_spilled(key)
            if warm is not None:
                self._insert(key, warm)
                self.stats.hits += 1
                return warm
        self.stats.misses += 1
        return None

    def put(self, key: str, warm: WarmState) -> None:
        """Cache ``warm`` under ``key`` (and spill it, when configured).

        Spill failures (full disk, permissions) are logged and swallowed:
        the cache is an accelerator, never a correctness dependency.
        """
        self._insert(key, warm)
        self.stats.stores += 1
        if self.spill_dir is None:
            return
        payload = pickle.dumps(warm, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _SPILL_MAGIC + hashlib.sha256(payload).digest() + payload
        try:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            # Write-then-rename: concurrent writers (pool workers, parallel
            # invocations) can never leave a half-written spill behind.
            fd, tmp_name = tempfile.mkstemp(
                dir=self.spill_dir, prefix=".snap-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, self._spill_path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            _log.warning("could not spill snapshot %s: %s", key, exc)

    def _insert(self, key: str, warm: WarmState) -> None:
        self._entries[key] = warm
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _load_spilled(self, key: str) -> WarmState | None:
        path = self._spill_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._note_fallback(key, f"unreadable spill file: {exc}")
            return None
        header = len(_SPILL_MAGIC) + _DIGEST_LEN
        if len(blob) < header or not blob.startswith(_SPILL_MAGIC):
            self._note_fallback(key, "bad magic or truncated header")
            return None
        digest = blob[len(_SPILL_MAGIC) : header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            self._note_fallback(key, "payload checksum mismatch")
            return None
        try:
            warm = pickle.loads(payload)
        except Exception as exc:
            self._note_fallback(key, f"unpicklable payload: {exc}")
            return None
        if not isinstance(warm, WarmState):
            self._note_fallback(key, "payload is not a WarmState")
            return None
        if warm.schema != SNAPSHOT_SCHEMA:
            self._note_fallback(
                key,
                f"stale schema {warm.schema} (supported: {SNAPSHOT_SCHEMA})",
            )
            return None
        return warm


# ----------------------------------------------------------------------
# Shared-memory transport (pool fan-out)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedSnapshotRef:
    """Picklable pointer to a parent-owned shared-memory warm state."""

    name: str
    size: int
    digest: bytes


def publish_warm_state(warm: WarmState):
    """Serialize ``warm`` into a fresh shared-memory segment.

    Returns ``(ref, shm)``: ship ``ref`` to workers; keep ``shm`` and
    ``close()`` + ``unlink()`` it when the fan-out is done (the caller
    owns the segment's lifetime — do it in a ``finally`` so a crashed
    sweep does not leak ``/dev/shm`` space).
    """
    from multiprocessing import shared_memory

    payload = pickle.dumps(warm, protocol=pickle.HIGHEST_PROTOCOL)
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    shm.buf[: len(payload)] = payload
    ref = SharedSnapshotRef(
        name=shm.name,
        size=len(payload),
        digest=hashlib.sha256(payload).digest(),
    )
    return ref, shm


def _attach_untracked(name: str):
    """Attach a ``SharedMemory`` segment without tracker registration.

    Python < 3.13 registers *every* ``SharedMemory`` — including plain
    attaches — with a resource tracker that unlinks the segment when its
    owner exits.  A pool worker merely mapping a parent-owned segment
    must not involve the tracker at all: under ``spawn`` the worker's
    own tracker would tear the segment down when the worker exits, and
    under ``fork`` (a shared tracker) an unregister from one worker
    clobbers the parent's registration.  Python 3.13+ has ``track=``
    for exactly this; on older versions the registration hook is
    no-oped around the attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no ``track`` parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _register_skip_shm(rname, rtype):
        if rtype != "shared_memory":
            original(rname, rtype)

    resource_tracker.register = _register_skip_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_warm_state(ref: SharedSnapshotRef) -> WarmState:
    """Materialise a :class:`WarmState` from a shared-memory reference.

    Copies the payload out and detaches immediately — the worker holds
    no mapping afterwards, so segment lifetime stays entirely with the
    publishing parent.

    Raises:
        ValueError: checksum mismatch or stale schema (callers treat any
            exception as "run cold").
    """
    shm = _attach_untracked(ref.name)
    try:
        payload = bytes(shm.buf[: ref.size])
    finally:
        shm.close()
    if hashlib.sha256(payload).digest() != ref.digest:
        raise ValueError("shared-memory snapshot failed its checksum")
    warm = pickle.loads(payload)
    if not isinstance(warm, WarmState) or warm.schema != SNAPSHOT_SCHEMA:
        raise ValueError("shared-memory snapshot carries a stale schema")
    return warm
