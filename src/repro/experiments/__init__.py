"""Experiment harness: one module per reproduced table / figure."""

from .ablations import (
    AblationResult,
    format_ablation,
    run_adjust_cost_ablation,
    run_allocation_ablation,
    run_refresh_frequency_ablation,
)
from .capacity_analysis import (
    CapacityResult,
    format_capacity,
    run_capacity_analysis,
)
from .config import DeviceConfig, RunScale, device
from .faults_artifact import (
    FaultCell,
    FaultsResult,
    faults_to_json,
    format_faults,
    run_faults,
)
from .fig4_motivation import Fig4Result, Fig4Row, format_fig4, run_fig4
from .fig8_response_time import Fig8Result, format_fig8, run_fig8
from .fig9_dtr_sensitivity import Fig9Result, format_fig9, run_fig9
from .fig10_throughput import Fig10Result, format_fig10, run_fig10
from .fig11_read_retry import Fig11Result, LifetimePhase, format_fig11, run_fig11
from .health_artifact import (
    HealthArtifactResult,
    HealthCell,
    format_health,
    health_objectives,
    health_to_json,
    health_to_prometheus,
    run_health,
)
from .fig_breakdown import (
    BreakdownCell,
    BreakdownResult,
    breakdown_to_json,
    format_fig_breakdown,
    run_fig_breakdown,
)
from .parallel import (
    RunUnit,
    SweepError,
    SweepExecutor,
    execute_unit,
    execute_units,
    failed_workloads,
    prune_failed,
)
from .qlc_extension import QlcResult, format_qlc, run_qlc_extension
from .reporting import (
    ascii_table,
    build_run_manifest,
    config_hash,
    format_pct,
    manifest_for_payload,
    manifest_for_run,
    metrics_summary,
    write_run_manifest,
)
from .runner import (
    CapacityCensus,
    RunResult,
    RunResultPayload,
    improvement_pct,
    normalized_read_response,
    run_capacity_phase_pair,
    run_workload,
    run_workload_closed_loop,
)
from .systems import SystemSpec, baseline, error_rate_sweep, ida
from .table3_workloads import Table3Result, format_table3, run_table3
from .table4_refresh_overhead import Table4Result, format_table4, run_table4
from .table5_mlc import Table5Result, format_table5, run_table5

__all__ = [
    "CapacityResult",
    "format_capacity",
    "run_capacity_analysis",
    "AblationResult",
    "format_ablation",
    "run_adjust_cost_ablation",
    "run_allocation_ablation",
    "run_refresh_frequency_ablation",
    "DeviceConfig",
    "RunScale",
    "device",
    "FaultCell",
    "FaultsResult",
    "faults_to_json",
    "format_faults",
    "run_faults",
    "Fig4Result",
    "Fig4Row",
    "format_fig4",
    "run_fig4",
    "Fig8Result",
    "format_fig8",
    "run_fig8",
    "Fig9Result",
    "format_fig9",
    "run_fig9",
    "Fig10Result",
    "format_fig10",
    "run_fig10",
    "Fig11Result",
    "LifetimePhase",
    "format_fig11",
    "run_fig11",
    "HealthArtifactResult",
    "HealthCell",
    "format_health",
    "health_objectives",
    "health_to_json",
    "health_to_prometheus",
    "run_health",
    "BreakdownCell",
    "BreakdownResult",
    "run_fig_breakdown",
    "format_fig_breakdown",
    "breakdown_to_json",
    "QlcResult",
    "format_qlc",
    "run_qlc_extension",
    "RunUnit",
    "SweepError",
    "SweepExecutor",
    "execute_unit",
    "execute_units",
    "failed_workloads",
    "prune_failed",
    "ascii_table",
    "format_pct",
    "build_run_manifest",
    "config_hash",
    "manifest_for_payload",
    "manifest_for_run",
    "metrics_summary",
    "write_run_manifest",
    "CapacityCensus",
    "RunResult",
    "RunResultPayload",
    "improvement_pct",
    "normalized_read_response",
    "run_capacity_phase_pair",
    "run_workload",
    "run_workload_closed_loop",
    "SystemSpec",
    "baseline",
    "error_rate_sweep",
    "ida",
    "Table3Result",
    "format_table3",
    "run_table3",
    "Table4Result",
    "format_table4",
    "run_table4",
    "Table5Result",
    "format_table5",
    "run_table5",
]
