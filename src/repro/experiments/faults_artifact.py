"""Faults artifact — IDA read-latency gain as fault density rises.

The paper evaluates IDA-Coding on a healthy device.  Real high-density
flash spends most of its life degraded: blocks grow bad, programs fail,
retry ladders exhaust.  This artifact quantifies how IDA-E20's headline
read-response gain (Fig. 8 / Fig. 11) holds up as deterministic fault
plans of increasing density are injected into *both* systems, across the
early/late lifetime phases of Fig. 11.

Each grid cell runs baseline and IDA-E20 under the **same**
:class:`~repro.faults.FaultPlan` (same seed, same event schedule), so the
comparison isolates the coding scheme's response to faults rather than
fault-placement luck.  Density 0 passes ``faults=None`` — the true
zero-cost off-path — which keeps the artifact's healthy column
byte-comparable with Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.plan import FaultPlan
from ..workloads.msr import workload as _catalog_workload
from .config import RunScale
from .fig11_read_retry import DEFAULT_PHASES, LifetimePhase
from .parallel import ProgressFn, RunUnit, execute_units, failed_workloads
from .reporting import ascii_table
from .runner import _build_device, improvement_pct
from .systems import baseline, ida

__all__ = [
    "DEFAULT_DENSITIES",
    "FaultCell",
    "FaultsResult",
    "run_faults",
    "format_faults",
    "faults_to_json",
    "plan_for_cell",
]

#: Fault densities swept by default: a density ``d`` injects ``d`` grown
#: bad blocks, ``d`` program failures and ``2d`` uncorrectable reads
#: (plus one mid-refresh ADJUST interruption once faults are on at all).
DEFAULT_DENSITIES: tuple[int, ...] = (0, 2, 4)


@dataclass(frozen=True)
class FaultCell:
    """One (workload, phase, density) grid cell's paired measurement."""

    workload: str
    phase: str
    density: int
    baseline_rt_us: float
    ida_rt_us: float
    improvement_pct: float
    #: Fired-event counts by fault kind, baseline run / IDA run
    #: (``{}`` for the density-0 cells, which run without an injector).
    baseline_fired: dict = field(default_factory=dict)
    ida_fired: dict = field(default_factory=dict)
    #: Full fault-event streams (CI uploads these as the run artifact).
    baseline_events: list = field(default_factory=list)
    ida_events: list = field(default_factory=list)


@dataclass
class FaultsResult:
    """All cells of the faults grid plus the axes that generated them."""

    phases: tuple[LifetimePhase, ...]
    densities: tuple[int, ...]
    cells: list[FaultCell] = field(default_factory=list)

    def cell(self, workload: str, phase: str, density: int) -> FaultCell:
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.phase == phase
                and cell.density == density
            ):
                return cell
        raise KeyError(f"no cell ({workload}, {phase}, {density})")

    def average(self, phase: str, density: int) -> float:
        values = [
            c.improvement_pct
            for c in self.cells
            if c.phase == phase and c.density == density
        ]
        return sum(values) / len(values) if values else 0.0


def plan_for_cell(
    workload_name: str,
    phase_index: int,
    density: int,
    scale: RunScale,
    seed: int,
) -> FaultPlan | None:
    """The cell's shared fault plan (``None`` at density 0 = faults off).

    The plan seed folds in the cell coordinates so every cell gets an
    independent but reproducible event placement, while baseline and IDA
    within a cell share it exactly.
    """
    if density == 0:
        return None
    spec = _catalog_workload(workload_name).scaled(
        scale.num_requests, scale.footprint_pages
    )
    geometry = _build_device(baseline(), scale).geometry
    return FaultPlan.generate(
        seed=seed + 997 * (phase_index + 1) + 131 * density,
        duration_us=spec.duration_us,
        total_blocks=geometry.total_blocks,
        total_dies=geometry.total_dies,
        grown_bad=density,
        program_fails=density,
        uncorrectable_reads=2 * density,
        adjust_interrupts=1,
        max_program_ordinal=max(2, scale.num_requests // 2),
        max_read_ordinal=max(2, scale.num_requests),
        max_adjust_ordinal=8,
        read_reclaim_threshold=12,
        name=f"{workload_name}-p{phase_index}-d{density}",
    )


def run_faults(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    phases: tuple[LifetimePhase, ...] = DEFAULT_PHASES,
    densities: tuple[int, ...] = DEFAULT_DENSITIES,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> FaultsResult:
    """Sweep the (workload x lifetime phase x fault density) grid."""
    scale = scale or RunScale.bench()
    names = workload_names or ["proj_1", "usr_1", "src2_0"]
    cells = [
        (name, phase_index, density)
        for name in names
        for phase_index in range(len(phases))
        for density in densities
    ]
    units = []
    for name, phase_index, density in cells:
        phase = phases[phase_index]
        plan = plan_for_cell(name, phase_index, density, scale, seed)
        units.append(
            RunUnit(
                baseline().with_retry(phase.retry_fail_prob),
                name,
                scale,
                seed=seed,
                faults=plan,
            )
        )
        units.append(
            RunUnit(
                ida(error_rate).with_retry(phase.retry_fail_prob),
                name,
                scale,
                seed=seed,
                faults=plan,
            )
        )
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    failed = failed_workloads(payloads)
    if failed and progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")

    result = FaultsResult(phases=phases, densities=densities)
    for index, (name, phase_index, density) in enumerate(cells):
        if name in failed:
            continue
        base, variant = payloads[2 * index : 2 * index + 2]
        base_faults = base.faults or {}
        variant_faults = variant.faults or {}
        result.cells.append(
            FaultCell(
                workload=name,
                phase=phases[phase_index].name,
                density=density,
                baseline_rt_us=base.mean_read_response_us,
                ida_rt_us=variant.mean_read_response_us,
                improvement_pct=improvement_pct(variant, base),
                baseline_fired=base_faults.get("fired", {}),
                ida_fired=variant_faults.get("fired", {}),
                baseline_events=base_faults.get("events", []),
                ida_events=variant_faults.get("events", []),
            )
        )
    return result


def format_faults(result: FaultsResult) -> str:
    """Improvement table: one row per (workload, phase), column per density."""
    headers = ["workload", "phase"] + [f"density={d}" for d in result.densities]
    rows = []
    seen = []
    for cell in result.cells:
        key = (cell.workload, cell.phase)
        if key in seen:
            continue
        seen.append(key)
        row = [cell.workload, cell.phase]
        for density in result.densities:
            try:
                row.append(f"{result.cell(*key, density).improvement_pct:.1f}%")
            except KeyError:
                row.append("-")
        rows.append(row)
    for phase in result.phases:
        rows.append(
            ["average", phase.name]
            + [
                f"{result.average(phase.name, d):.1f}%"
                for d in result.densities
            ]
        )
    return ascii_table(
        headers,
        rows,
        title="Faults: IDA-E20 read RT improvement vs fault density "
        "(density 0 = healthy device, faults fully off)",
    )


def faults_to_json(result: FaultsResult) -> dict:
    """JSON-ready form of the grid, fault-event streams included.

    CI uploads this as the run's workflow artifact so a regression in
    fault handling is diagnosable from the event streams alone.
    """
    return {
        "kind": "faults_artifact",
        "phases": [
            {"name": p.name, "retry_fail_prob": p.retry_fail_prob}
            for p in result.phases
        ],
        "densities": list(result.densities),
        "cells": [
            {
                "workload": c.workload,
                "phase": c.phase,
                "density": c.density,
                "baseline_rt_us": c.baseline_rt_us,
                "ida_rt_us": c.ida_rt_us,
                "improvement_pct": c.improvement_pct,
                "baseline_fired": c.baseline_fired,
                "ida_fired": c.ida_fired,
                "baseline_events": c.baseline_events,
                "ida_events": c.ida_events,
            }
            for c in result.cells
        ],
    }
