"""Fig. 4 — distribution of reads across page types and validity scenarios.

Paper result (baseline system, 11 read-intensive workloads): LSB/CSB/MSB
reads are roughly evenly distributed; on average 18% of CSB reads occur
while the associated LSB is invalid, and 30% of MSB reads occur while the
associated LSB and/or CSB is invalid.  Nine additional workloads (right
panel) confirm the opportunity across read-ratio classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import EXTRA_WORKLOADS, TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, failed_workloads
from .reporting import ascii_table, format_pct
from .runner import RunResultPayload
from .systems import baseline

__all__ = ["Fig4Row", "Fig4Result", "run_fig4", "format_fig4"]


@dataclass(frozen=True)
class Fig4Row:
    """Read-mix measurements for one workload under the baseline."""

    workload: str
    lsb_share: float
    csb_share: float
    msb_share: float
    csb_with_invalid_lsb: float
    msb_with_invalid_lower: float


@dataclass
class Fig4Result:
    """All Fig. 4 rows (main panel + extra panel)."""

    main: list[Fig4Row] = field(default_factory=list)
    extra: list[Fig4Row] = field(default_factory=list)

    @staticmethod
    def _avg(rows: list[Fig4Row], attr: str) -> float:
        if not rows:
            return 0.0
        return sum(getattr(r, attr) for r in rows) / len(rows)

    def average_csb_invalid(self) -> float:
        return self._avg(self.main, "csb_with_invalid_lsb")

    def average_msb_invalid(self) -> float:
        return self._avg(self.main, "msb_with_invalid_lower")


def _row_from_payload(name: str, payload: RunResultPayload) -> Fig4Row:
    mix = payload.read_mix
    return Fig4Row(
        workload=name,
        lsb_share=mix.fraction_of_type(0),
        csb_share=mix.fraction_of_type(1),
        msb_share=mix.fraction_of_type(2),
        csb_with_invalid_lsb=mix.csb_invalid_fraction(),
        msb_with_invalid_lower=mix.msb_invalid_fraction(2),
    )


def run_fig4(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    include_extra: bool = True,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Fig4Result:
    """Measure the read mix for the main and extra workload panels."""
    scale = scale or RunScale.bench()
    main_names = workload_names or list(TABLE3_WORKLOADS)
    extra_names = (
        list(EXTRA_WORKLOADS) if include_extra and workload_names is None else []
    )
    units = [
        RunUnit(baseline(), name, scale, seed=seed)
        for name in main_names + extra_names
    ]
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    # Both panels draw from one flat unit list, so prune each panel's
    # name list against the combined failure set rather than re-slicing.
    failed = failed_workloads(payloads)
    if failed and progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")
    outcome_of = dict(zip(main_names + extra_names, payloads))

    result = Fig4Result()
    for name in main_names:
        if name not in failed:
            result.main.append(_row_from_payload(name, outcome_of[name]))
    for name in extra_names:
        if name not in failed:
            result.extra.append(_row_from_payload(name, outcome_of[name]))
    return result


def format_fig4(result: Fig4Result) -> str:
    headers = [
        "workload",
        "LSB",
        "CSB",
        "MSB",
        "CSB w/ inv LSB",
        "MSB w/ inv lower",
    ]

    def rows_for(rows: list[Fig4Row]):
        return [
            [
                r.workload,
                format_pct(r.lsb_share),
                format_pct(r.csb_share),
                format_pct(r.msb_share),
                format_pct(r.csb_with_invalid_lsb),
                format_pct(r.msb_with_invalid_lower),
            ]
            for r in rows
        ]

    main_rows = rows_for(result.main)
    main_rows.append(
        [
            "average",
            "",
            "",
            "",
            format_pct(result.average_csb_invalid()),
            format_pct(result.average_msb_invalid()),
        ]
    )
    parts = [
        ascii_table(
            headers,
            main_rows,
            title="Fig. 4 (left): read mix, 11 workloads "
            "(paper avg: 18% CSB w/ invalid LSB, 30% MSB w/ invalid lower)",
        )
    ]
    if result.extra:
        parts.append(
            ascii_table(
                headers,
                rows_for(result.extra),
                title="Fig. 4 (right): 9 additional workloads",
            )
        )
    return "\n\n".join(parts)
