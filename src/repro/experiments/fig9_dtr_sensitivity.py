"""Fig. 9 — sensitivity to the device's read-latency step (dtR).

Paper result: with dtR = 30 us IDA-E20 still improves read response by
14% on average; at the default 50 us by 28%; at 70 us by 49% (up to 83%
for usr_1).  The benefit grows monotonically with dtR because IDA's whole
effect is collapsing multi-sense reads toward the single-sense latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .runner import normalized_read_response
from .systems import baseline, ida

__all__ = ["Fig9Result", "run_fig9", "format_fig9", "DEFAULT_DTR_SWEEP"]

#: The paper's Fig. 9 sweep, in microseconds.
DEFAULT_DTR_SWEEP: tuple[float, ...] = (30.0, 40.0, 50.0, 60.0, 70.0)


@dataclass
class Fig9Result:
    """``normalized[workload][dtr]`` = IDA-E20 RT / baseline RT at that dtR."""

    dtr_values: tuple[float, ...]
    normalized: dict[str, dict[float, float]] = field(default_factory=dict)

    def average(self, dtr: float) -> float:
        values = [per_wl[dtr] for per_wl in self.normalized.values()]
        return sum(values) / len(values) if values else 1.0


def run_fig9(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    dtr_values: tuple[float, ...] = DEFAULT_DTR_SWEEP,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Fig9Result:
    """Run the dtR sweep; baseline and IDA share each dtR setting."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = []
    for name in names:
        for dtr in dtr_values:
            units.append(RunUnit(baseline().with_dtr(dtr), name, scale, seed=seed))
            units.append(
                RunUnit(ida(error_rate).with_dtr(dtr), name, scale, seed=seed)
            )
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Fig9Result(dtr_values=dtr_values)
    pairs = iter(zip(payloads[::2], payloads[1::2]))
    for name in names:
        result.normalized[name] = {}
        for dtr in dtr_values:
            base, variant = next(pairs)
            result.normalized[name][dtr] = normalized_read_response(variant, base)
    return result


def format_fig9(result: Fig9Result) -> str:
    headers = ["workload"] + [f"dtR={dtr:.0f}us" for dtr in result.dtr_values]
    rows = [
        [name] + [f"{per_dtr[dtr]:.3f}" for dtr in result.dtr_values]
        for name, per_dtr in result.normalized.items()
    ]
    rows.append(
        ["average"] + [f"{result.average(dtr):.3f}" for dtr in result.dtr_values]
    )
    return ascii_table(
        headers,
        rows,
        title="Fig. 9: IDA-E20 read RT normalized to baseline vs dtR "
        "(paper avg: 0.86 @30us, 0.72 @50us, 0.51 @70us)",
    )
