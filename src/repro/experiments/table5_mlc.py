"""Table V — IDA-E20 on an MLC device.

Paper result: 14.9% average read response-time improvement on an MLC SSD
(65 / 115 us LSB / MSB reads) — significant, but lower than TLC's 28%
because MLC has only one slow page type and a smaller latency spread.
The same harness also drives the QLC projection (Sec. V-G leaves a QLC
evaluation as future work; see ``qlc_extension``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .runner import improvement_pct
from .systems import baseline, ida

__all__ = ["Table5Result", "run_table5", "format_table5"]


@dataclass
class Table5Result:
    """``improvement_pct[workload]`` for the chosen device family."""

    device: str
    improvement_pct: dict[str, float] = field(default_factory=dict)

    def average(self) -> float:
        values = list(self.improvement_pct.values())
        return sum(values) / len(values) if values else 0.0


def run_table5(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    device: str = "mlc",
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Table5Result:
    """Measure IDA-E{error_rate} improvements on the given device family."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = []
    for name in names:
        units.append(RunUnit(baseline(device), name, scale, seed=seed))
        units.append(RunUnit(ida(error_rate, device), name, scale, seed=seed))
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Table5Result(device=device)
    for index, name in enumerate(names):
        base, variant = payloads[2 * index : 2 * index + 2]
        result.improvement_pct[name] = improvement_pct(variant, base)
    return result


def format_table5(result: Table5Result) -> str:
    headers = ["workload", "resp. time improvement"]
    rows = [
        [name, f"{pct:.1f}%"] for name, pct in result.improvement_pct.items()
    ]
    rows.append(["average", f"{result.average():.1f}%"])
    return ascii_table(
        headers,
        rows,
        title=f"Table V: IDA-E20 on an {result.device.upper()} device "
        "(paper MLC avg: 14.9%)",
    )
