"""Ablations of the design choices DESIGN.md calls out.

Three knobs the paper argues about but does not sweep:

* **Adjustment cost** (Sec. III-B): the paper conservatively charges one
  full MSB program per wordline for the voltage adjustment, while arguing
  ~0.5x is achievable (half the ISPP range).  ``adjust_cost`` compares
  both charges.
* **Refresh frequency** (Sec. III-C): IDA rides on refresh, so a longer
  period means fewer conversion opportunities.  ``refresh_frequency``
  sweeps refresh cycles per trace.
* **Allocation strategy** [26]: CWDP vs the plane-first extreme, to show
  the IDA benefit is not an artifact of one striping order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, failed_workloads
from .reporting import ascii_table
from .runner import improvement_pct
from .systems import SystemSpec, baseline, ida

__all__ = [
    "AblationResult",
    "run_adjust_cost_ablation",
    "run_refresh_frequency_ablation",
    "run_allocation_ablation",
    "format_ablation",
]


@dataclass
class AblationResult:
    """``improvement_pct[setting][workload]`` for one swept knob."""

    knob: str
    improvement_pct: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, setting: str) -> float:
        values = list(self.improvement_pct.get(setting, {}).values())
        return sum(values) / len(values) if values else 0.0


def _workloads(workload_names: list[str] | None) -> list[str]:
    return workload_names or ["proj_1", "usr_1", "src2_0"]


def _run_paired_sweep(
    knob: str,
    cells: list[tuple[str, str, SystemSpec, SystemSpec, RunScale]],
    seed: int,
    jobs: int,
    progress: ProgressFn | None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> AblationResult:
    """Fan out (setting, workload, baseline, variant, scale) cells.

    Each cell becomes one baseline unit and one variant unit; the
    improvement is computed after the fan-out from the collected pairs.
    With ``keep_going``, a failure prunes its workload across every
    setting so the per-setting averages stay comparable.
    """
    units = []
    for _, name, base_system, variant_system, scale in cells:
        units.append(RunUnit(base_system, name, scale, seed=seed))
        units.append(RunUnit(variant_system, name, scale, seed=seed))
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    failed = failed_workloads(payloads)
    if failed and progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")

    result = AblationResult(knob=knob)
    for index, (setting, name, *_) in enumerate(cells):
        if name in failed:
            continue
        base, variant = payloads[2 * index : 2 * index + 2]
        result.improvement_pct.setdefault(setting, {})[name] = improvement_pct(
            variant, base
        )
    return result


def run_adjust_cost_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    fractions: tuple[float, ...] = (0.5, 1.0),
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> AblationResult:
    """IDA benefit under proportional vs conservative adjustment cost."""
    scale = scale or RunScale.bench()
    cells = [
        (
            f"adjust={fraction:g}x",
            name,
            baseline(),
            replace(ida(0.2), adjust_program_fraction=fraction),
            scale,
        )
        for fraction in fractions
        for name in _workloads(workload_names)
    ]
    return _run_paired_sweep(
        "adjust_program_fraction",
        cells,
        seed,
        jobs,
        progress,
        keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )


def run_refresh_frequency_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    cycles: tuple[float, ...] = (1.5, 3.0, 6.0),
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> AblationResult:
    """IDA benefit vs refresh cycles per trace (more cycles = fresher IDA)."""
    scale = scale or RunScale.bench()
    cells = [
        (
            f"cycles={value:g}",
            name,
            baseline(),
            ida(0.2),
            replace(scale, refresh_cycles=value),
        )
        for value in cycles
        for name in _workloads(workload_names)
    ]
    return _run_paired_sweep(
        "refresh_cycles",
        cells,
        seed,
        jobs,
        progress,
        keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )


def run_allocation_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    strategies: tuple[str, ...] = ("cwdp", "pdwc"),
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> AblationResult:
    """IDA benefit under different static allocation stripe orders."""
    scale = scale or RunScale.bench()
    cells = [
        (
            f"alloc={strategy}",
            name,
            replace(baseline(), allocation=strategy),
            replace(ida(0.2), allocation=strategy),
            scale,
        )
        for strategy in strategies
        for name in _workloads(workload_names)
    ]
    return _run_paired_sweep(
        "allocation",
        cells,
        seed,
        jobs,
        progress,
        keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )


def format_ablation(result: AblationResult) -> str:
    settings = list(result.improvement_pct)
    names = sorted(
        {n for per in result.improvement_pct.values() for n in per}
    )
    headers = ["workload"] + settings
    rows = [
        [name]
        + [f"{result.improvement_pct[s].get(name, 0.0):.1f}%" for s in settings]
        for name in names
    ]
    rows.append(["average"] + [f"{result.average(s):.1f}%" for s in settings])
    return ascii_table(headers, rows, title=f"Ablation: {result.knob}")
