"""Ablations of the design choices DESIGN.md calls out.

Three knobs the paper argues about but does not sweep:

* **Adjustment cost** (Sec. III-B): the paper conservatively charges one
  full MSB program per wordline for the voltage adjustment, while arguing
  ~0.5x is achievable (half the ISPP range).  ``adjust_cost`` compares
  both charges.
* **Refresh frequency** (Sec. III-C): IDA rides on refresh, so a longer
  period means fewer conversion opportunities.  ``refresh_frequency``
  sweeps refresh cycles per trace.
* **Allocation strategy** [26]: CWDP vs the plane-first extreme, to show
  the IDA benefit is not an artifact of one striping order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .reporting import ascii_table
from .runner import improvement_pct, run_workload
from .systems import baseline, ida

__all__ = [
    "AblationResult",
    "run_adjust_cost_ablation",
    "run_refresh_frequency_ablation",
    "run_allocation_ablation",
    "format_ablation",
]


@dataclass
class AblationResult:
    """``improvement_pct[setting][workload]`` for one swept knob."""

    knob: str
    improvement_pct: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, setting: str) -> float:
        values = list(self.improvement_pct.get(setting, {}).values())
        return sum(values) / len(values) if values else 0.0


def _workloads(workload_names: list[str] | None) -> list[str]:
    return workload_names or ["proj_1", "usr_1", "src2_0"]


def run_adjust_cost_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    fractions: tuple[float, ...] = (0.5, 1.0),
    seed: int = 11,
) -> AblationResult:
    """IDA benefit under proportional vs conservative adjustment cost."""
    scale = scale or RunScale.bench()
    result = AblationResult(knob="adjust_program_fraction")
    for fraction in fractions:
        setting = f"adjust={fraction:g}x"
        result.improvement_pct[setting] = {}
        for name in _workloads(workload_names):
            spec = TABLE3_WORKLOADS[name]
            base = run_workload(baseline(), spec, scale, seed=seed)
            variant = run_workload(
                replace(ida(0.2), adjust_program_fraction=fraction),
                spec,
                scale,
                seed=seed,
            )
            result.improvement_pct[setting][name] = improvement_pct(variant, base)
    return result


def run_refresh_frequency_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    cycles: tuple[float, ...] = (1.5, 3.0, 6.0),
    seed: int = 11,
) -> AblationResult:
    """IDA benefit vs refresh cycles per trace (more cycles = fresher IDA)."""
    scale = scale or RunScale.bench()
    result = AblationResult(knob="refresh_cycles")
    for value in cycles:
        scaled = replace(scale, refresh_cycles=value)
        setting = f"cycles={value:g}"
        result.improvement_pct[setting] = {}
        for name in _workloads(workload_names):
            spec = TABLE3_WORKLOADS[name]
            base = run_workload(baseline(), spec, scaled, seed=seed)
            variant = run_workload(ida(0.2), spec, scaled, seed=seed)
            result.improvement_pct[setting][name] = improvement_pct(variant, base)
    return result


def run_allocation_ablation(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    strategies: tuple[str, ...] = ("cwdp", "pdwc"),
    seed: int = 11,
) -> AblationResult:
    """IDA benefit under different static allocation stripe orders."""
    scale = scale or RunScale.bench()
    result = AblationResult(knob="allocation")
    for strategy in strategies:
        setting = f"alloc={strategy}"
        result.improvement_pct[setting] = {}
        for name in _workloads(workload_names):
            spec = TABLE3_WORKLOADS[name]
            base = run_workload(
                replace(baseline(), allocation=strategy), spec, scale, seed=seed
            )
            variant = run_workload(
                replace(ida(0.2), allocation=strategy), spec, scale, seed=seed
            )
            result.improvement_pct[setting][name] = improvement_pct(variant, base)
    return result


def format_ablation(result: AblationResult) -> str:
    settings = list(result.improvement_pct)
    names = sorted(
        {n for per in result.improvement_pct.values() for n in per}
    )
    headers = ["workload"] + settings
    rows = [
        [name]
        + [f"{result.improvement_pct[s].get(name, 0.0):.1f}%" for s in settings]
        for name in names
    ]
    rows.append(["average"] + [f"{result.average(s):.1f}%" for s in settings])
    return ascii_table(headers, rows, title=f"Ablation: {result.knob}")
