"""QLC extension — the paper's Sec. V-G future work, executed.

The paper predicts IDA will help QLC devices more than TLC because QLC's
1/2/4/8-sense reads spread latencies even wider (and the Fig. 6 merge
collapses Bit 4 from 8 senses to 2 and Bit 3 from 4 to 1).  This module
runs that evaluation on the projected QLC device of
:func:`repro.experiments.config.device` and, for context, the
vendor-alternate 2-3-2 TLC coding the paper mentions has milder variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .reporting import ascii_table
from .runner import improvement_pct, run_workload
from .systems import baseline, ida

__all__ = ["QlcResult", "run_qlc_extension", "format_qlc"]


@dataclass
class QlcResult:
    """Per-device-family average improvements."""

    improvement_pct: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, device: str) -> float:
        values = list(self.improvement_pct.get(device, {}).values())
        return sum(values) / len(values) if values else 0.0


def run_qlc_extension(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    devices: tuple[str, ...] = ("tlc", "qlc", "tlc232"),
    error_rate: float = 0.2,
    seed: int = 11,
) -> QlcResult:
    """Compare IDA benefit across cell densities / codings."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    result = QlcResult()
    for dev in devices:
        result.improvement_pct[dev] = {}
        for name in names:
            spec = TABLE3_WORKLOADS[name]
            base = run_workload(baseline(dev), spec, scale, seed=seed)
            variant = run_workload(ida(error_rate, dev), spec, scale, seed=seed)
            result.improvement_pct[dev][name] = improvement_pct(variant, base)
    return result


def format_qlc(result: QlcResult) -> str:
    devices = list(result.improvement_pct)
    headers = ["workload"] + devices
    names = sorted(
        {n for per_dev in result.improvement_pct.values() for n in per_dev}
    )
    rows = [
        [name]
        + [f"{result.improvement_pct[dev].get(name, 0.0):.1f}%" for dev in devices]
        for name in names
    ]
    rows.append(["average"] + [f"{result.average(dev):.1f}%" for dev in devices])
    return ascii_table(
        headers,
        rows,
        title="QLC extension: IDA-E20 improvement by device family "
        "(expected ordering: qlc > tlc > tlc232)",
    )
