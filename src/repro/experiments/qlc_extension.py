"""QLC extension — the paper's Sec. V-G future work, executed.

The paper predicts IDA will help QLC devices more than TLC because QLC's
1/2/4/8-sense reads spread latencies even wider (and the Fig. 6 merge
collapses Bit 4 from 8 senses to 2 and Bit 3 from 4 to 1).  This module
runs that evaluation on the projected QLC device of
:func:`repro.experiments.config.device` and, for context, the
vendor-alternate 2-3-2 TLC coding the paper mentions has milder variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, failed_workloads
from .reporting import ascii_table
from .runner import improvement_pct
from .systems import baseline, ida

__all__ = ["QlcResult", "run_qlc_extension", "format_qlc"]


@dataclass
class QlcResult:
    """Per-device-family average improvements."""

    improvement_pct: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, device: str) -> float:
        values = list(self.improvement_pct.get(device, {}).values())
        return sum(values) / len(values) if values else 0.0


def run_qlc_extension(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    devices: tuple[str, ...] = ("tlc", "qlc", "tlc232"),
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> QlcResult:
    """Compare IDA benefit across cell densities / codings."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    cells = [(dev, name) for dev in devices for name in names]
    units = []
    for dev, name in cells:
        units.append(RunUnit(baseline(dev), name, scale, seed=seed))
        units.append(RunUnit(ida(error_rate, dev), name, scale, seed=seed))
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    # A failure prunes the workload across every device family so the
    # cross-family comparison always covers one consistent workload set.
    failed = failed_workloads(payloads)
    if failed and progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")

    result = QlcResult()
    for index, (dev, name) in enumerate(cells):
        if name in failed:
            continue
        base, variant = payloads[2 * index : 2 * index + 2]
        result.improvement_pct.setdefault(dev, {})[name] = improvement_pct(
            variant, base
        )
    return result


def format_qlc(result: QlcResult) -> str:
    devices = list(result.improvement_pct)
    headers = ["workload"] + devices
    names = sorted(
        {n for per_dev in result.improvement_pct.values() for n in per_dev}
    )
    rows = [
        [name]
        + [f"{result.improvement_pct[dev].get(name, 0.0):.1f}%" for dev in devices]
        for name in names
    ]
    rows.append(["average"] + [f"{result.average(dev):.1f}%" for dev in devices])
    return ascii_table(
        headers,
        rows,
        title="QLC extension: IDA-E20 improvement by device family "
        "(expected ordering: qlc > tlc > tlc232)",
    )
