"""Fig. 8 — normalized read response times under IDA-E0 .. IDA-E80.

Paper result: IDA-Coding-E20 improves mean read response time by 28% on
average over the baseline (E0: 31%, E50: 20.2%, E80: < 7%); the benefit
decreases monotonically as the voltage-adjustment error rate grows, since
more disturbed pages must be written back and fewer stay IDA-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .reporting import ascii_table
from .runner import normalized_read_response, run_workload
from .systems import baseline, ida

__all__ = ["Fig8Result", "run_fig8", "format_fig8", "DEFAULT_ERROR_RATES"]

#: The paper's Fig. 8 sweep points.
DEFAULT_ERROR_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4, 0.5, 0.8)


@dataclass
class Fig8Result:
    """Normalized read response per (workload, system).

    ``normalized[workload][system_name]`` is mean read response time
    divided by the baseline's (< 1.0 means IDA wins).
    """

    error_rates: tuple[float, ...]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)
    baseline_rt_us: dict[str, float] = field(default_factory=dict)

    def system_names(self) -> list[str]:
        return [f"ida-e{int(round(rate * 100))}" for rate in self.error_rates]

    def average(self, system_name: str) -> float:
        values = [per_wl[system_name] for per_wl in self.normalized.values()]
        return sum(values) / len(values) if values else 1.0

    def average_improvement_pct(self, system_name: str) -> float:
        return (1.0 - self.average(system_name)) * 100.0


def run_fig8(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    seed: int = 11,
) -> Fig8Result:
    """Run the Fig. 8 sweep."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    result = Fig8Result(error_rates=error_rates)
    for name in names:
        spec = TABLE3_WORKLOADS[name]
        base = run_workload(baseline(), spec, scale, seed=seed)
        result.baseline_rt_us[name] = base.mean_read_response_us
        result.normalized[name] = {}
        for rate in error_rates:
            system = ida(rate)
            variant = run_workload(system, spec, scale, seed=seed)
            result.normalized[name][system.name] = normalized_read_response(
                variant, base
            )
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render the Fig. 8 series as a table (baseline = 1.0)."""
    systems = result.system_names()
    headers = ["workload", "base RT(us)"] + systems
    rows = []
    for name, per_system in result.normalized.items():
        rows.append(
            [name, f"{result.baseline_rt_us[name]:.0f}"]
            + [f"{per_system[s]:.3f}" for s in systems]
        )
    rows.append(
        ["average", ""]
        + [f"{result.average(s):.3f}" for s in systems]
    )
    return ascii_table(
        headers,
        rows,
        title="Fig. 8: read response time normalized to baseline "
        "(paper: E20 avg 0.72, E0 avg 0.69)",
    )
