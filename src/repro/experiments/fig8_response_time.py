"""Fig. 8 — normalized read response times under IDA-E0 .. IDA-E80.

Paper result: IDA-Coding-E20 improves mean read response time by 28% on
average over the baseline (E0: 31%, E50: 20.2%, E80: < 7%); the benefit
decreases monotonically as the voltage-adjustment error rate grows, since
more disturbed pages must be written back and fewer stay IDA-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .runner import normalized_read_response
from .systems import baseline, ida

__all__ = ["Fig8Result", "run_fig8", "format_fig8", "DEFAULT_ERROR_RATES"]

#: The paper's Fig. 8 sweep points.
DEFAULT_ERROR_RATES: tuple[float, ...] = (0.0, 0.1, 0.2, 0.4, 0.5, 0.8)


@dataclass
class Fig8Result:
    """Normalized read response per (workload, system).

    ``normalized[workload][system_name]`` is mean read response time
    divided by the baseline's (< 1.0 means IDA wins).
    """

    error_rates: tuple[float, ...]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)
    baseline_rt_us: dict[str, float] = field(default_factory=dict)

    def system_names(self) -> list[str]:
        return [f"ida-e{int(round(rate * 100))}" for rate in self.error_rates]

    def average(self, system_name: str) -> float:
        missing = sorted(
            name
            for name, per_wl in self.normalized.items()
            if system_name not in per_wl
        )
        if missing:
            raise KeyError(
                f"system {system_name!r} has no result for workload(s) "
                f"{', '.join(missing)}; this Fig8Result holds "
                f"{sorted({s for per in self.normalized.values() for s in per})}"
            )
        values = [per_wl[system_name] for per_wl in self.normalized.values()]
        return sum(values) / len(values) if values else 1.0

    def average_improvement_pct(self, system_name: str) -> float:
        return (1.0 - self.average(system_name)) * 100.0


def run_fig8(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rates: tuple[float, ...] = DEFAULT_ERROR_RATES,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Fig8Result:
    """Run the Fig. 8 sweep; ``jobs`` fans the runs out over processes."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = []
    for name in names:
        units.append(RunUnit(baseline(), name, scale, seed=seed))
        units.extend(
            RunUnit(ida(rate), name, scale, seed=seed) for rate in error_rates
        )
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Fig8Result(error_rates=error_rates)
    stride = 1 + len(error_rates)
    for index, name in enumerate(names):
        base, *variants = payloads[index * stride : (index + 1) * stride]
        result.baseline_rt_us[name] = base.mean_read_response_us
        result.normalized[name] = {
            variant.system.name: normalized_read_response(variant, base)
            for variant in variants
        }
    return result


def format_fig8(result: Fig8Result) -> str:
    """Render the Fig. 8 series as a table (baseline = 1.0)."""
    systems = result.system_names()
    headers = ["workload", "base RT(us)"] + systems
    rows = []
    for name, per_system in result.normalized.items():
        rows.append(
            [name, f"{result.baseline_rt_us[name]:.0f}"]
            + [f"{per_system[s]:.3f}" for s in systems]
        )
    rows.append(
        ["average", ""]
        + [f"{result.average(s):.3f}" for s in systems]
    )
    return ascii_table(
        headers,
        rows,
        title="Fig. 8: read response time normalized to baseline "
        "(paper: E20 avg 0.72, E0 avg 0.69)",
    )
