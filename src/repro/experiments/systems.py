"""Evaluated systems (Sec. IV-C): Baseline, IDA-E0..E80, and variants.

A :class:`SystemSpec` captures everything that distinguishes one evaluated
system from another: refresh flow, disturb error rate, device family,
dtR override, lifetime phase (read-retry probability), allocation
strategy, and the adjustment-cost ablation knob.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..flash.errors import ReadRetryModel
from ..ftl.refresh import RefreshMode
from ..sim.policy import make_policy

__all__ = ["SystemSpec", "baseline", "ida", "error_rate_sweep"]


@dataclass(frozen=True)
class SystemSpec:
    """One evaluated system configuration.

    Attributes:
        name: Display name ("baseline", "ida-e20", ...).
        refresh_mode: Baseline or IDA-modified refresh flow.
        error_rate: Voltage-adjustment disturb rate (the E-knob).
        device: Device family name ("tlc", "mlc", "qlc", "tlc232").
        dtr_us: Read-latency step override (Fig. 9), or None for default.
        retry_fail_prob: Per-attempt decode failure probability (Fig. 11
            lifetime phase; 0 = early life, no retries).
        allocation: Static allocation strategy.
        adjust_program_fraction: Voltage-adjustment cost as a fraction of
            a program (1.0 = the paper's conservative charge).
        policy: Scheduling policy name from the
            :data:`repro.sim.policy.POLICIES` registry ("read-first" =
            the paper's Table II default, "fcfs", "throttled").
    """

    name: str
    refresh_mode: RefreshMode
    error_rate: float = 0.2
    device: str = "tlc"
    dtr_us: float | None = None
    retry_fail_prob: float = 0.0
    allocation: str = "cwdp"
    adjust_program_fraction: float = 1.0
    policy: str = "read-first"

    def retry_model(self) -> ReadRetryModel:
        return ReadRetryModel(fail_prob=self.retry_fail_prob)

    def with_device(self, device: str) -> "SystemSpec":
        return replace(self, device=device)

    def with_retry(self, fail_prob: float) -> "SystemSpec":
        return replace(self, retry_fail_prob=fail_prob)

    def with_dtr(self, dtr_us: float) -> "SystemSpec":
        return replace(self, dtr_us=dtr_us)

    def with_policy(self, policy: str) -> "SystemSpec":
        """Same system under a different scheduling policy.

        Validates eagerly so a typo fails at configuration time, not
        half-way into a run.
        """
        make_policy(policy)
        return replace(self, policy=policy)


def baseline(device: str = "tlc") -> SystemSpec:
    """The Sec. IV-C baseline: conventional coding, default refresh."""
    return SystemSpec(
        name="baseline", refresh_mode=RefreshMode.BASELINE, device=device
    )


def ida(error_rate: float = 0.2, device: str = "tlc") -> SystemSpec:
    """IDA-Coding-E{x}: IDA refresh with the given disturb rate."""
    pct = int(round(error_rate * 100))
    return SystemSpec(
        name=f"ida-e{pct}",
        refresh_mode=RefreshMode.IDA,
        error_rate=error_rate,
        device=device,
    )


def error_rate_sweep() -> list[SystemSpec]:
    """The Fig. 8 sweep: IDA-E0, E10, E20, E40, E50, E80."""
    return [ida(rate) for rate in (0.0, 0.1, 0.2, 0.4, 0.5, 0.8)]
