"""Fig. 10 — device throughput under IDA-E20.

Paper result: every tested workload gains throughput, 10% on average.
The gain comes from the reduced read service times (more requests per
unit time) and survives the refresh-overhead increase.  Measured here
closed-loop (fixed queue depth), which is the device-bound regime where
throughput can actually move.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .systems import baseline, ida

__all__ = ["Fig10Result", "run_fig10", "format_fig10"]


@dataclass
class Fig10Result:
    """``normalized[workload]`` = IDA-E20 throughput / baseline throughput."""

    normalized: dict[str, float] = field(default_factory=dict)
    baseline_mb_s: dict[str, float] = field(default_factory=dict)

    def average(self) -> float:
        values = list(self.normalized.values())
        return sum(values) / len(values) if values else 1.0


def run_fig10(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rate: float = 0.2,
    queue_depth: int = 32,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Fig10Result:
    """Closed-loop throughput comparison, baseline vs IDA-E{error_rate}."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = []
    for name in names:
        for system in (baseline(), ida(error_rate)):
            units.append(
                RunUnit(
                    system,
                    name,
                    scale,
                    seed=seed,
                    mode="closed",
                    queue_depth=queue_depth,
                )
            )
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Fig10Result()
    for index, name in enumerate(names):
        base, variant = payloads[2 * index : 2 * index + 2]
        base_tp = base.throughput_mb_s
        result.baseline_mb_s[name] = base_tp
        result.normalized[name] = (
            variant.throughput_mb_s / base_tp if base_tp > 0 else 1.0
        )
    return result


def format_fig10(result: Fig10Result) -> str:
    headers = ["workload", "baseline MB/s", "IDA-E20 / baseline"]
    rows = [
        [name, f"{result.baseline_mb_s[name]:.1f}", f"{ratio:.3f}"]
        for name, ratio in result.normalized.items()
    ]
    rows.append(["average", "", f"{result.average():.3f}"])
    return ascii_table(
        headers,
        rows,
        title="Fig. 10: normalized device throughput (paper avg: 1.10)",
    )
