"""Sec. III-C capacity / GC-cost analysis ("After the Data Refresh").

The paper's claims, reproduced here:

* IDA keeps refresh target blocks alive instead of letting GC erase
  them, so the in-use block census grows — by a *bounded* amount
  (the paper reports 2-4% of device blocks, 14-30% over the workload's
  own footprint), because IDA blocks are force-reclaimed next cycle and
  are attractive GC victims;
* when a write-intensive phase follows the read-intensive one on the
  same device, GC invocations and block erases rise by only a few
  percent versus a device that never ran IDA.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .runner import CapacityCensus
from .systems import baseline, ida

__all__ = ["CapacityResult", "run_capacity_analysis", "format_capacity"]


@dataclass
class CapacityRow:
    """Census and wear accounting for one system on one workload."""

    system: str
    in_use_blocks: int
    ida_blocks: int
    total_blocks: int
    gc_invocations: int
    block_erases: int

    @property
    def in_use_fraction(self) -> float:
        return self.in_use_blocks / self.total_blocks


@dataclass
class CapacityResult:
    workload: str
    rows: list[CapacityRow] = field(default_factory=list)

    def row(self, system: str) -> CapacityRow:
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)

    def in_use_increase_fraction(self) -> float:
        """Extra in-use blocks under IDA, as a fraction of the device."""
        base = self.row("baseline")
        variant = self.row("ida-e20")
        return (variant.in_use_blocks - base.in_use_blocks) / base.total_blocks

    def erase_increase_fraction(self) -> float:
        """Extra erases under IDA across both phases (>= -eps)."""
        base = self.row("baseline")
        variant = self.row("ida-e20")
        if base.block_erases == 0:
            return 0.0
        return (variant.block_erases - base.block_erases) / base.block_erases


def _row_from_census(system_name: str, census: CapacityCensus) -> CapacityRow:
    return CapacityRow(
        system=system_name,
        in_use_blocks=census.in_use_blocks,
        ida_blocks=census.ida_blocks,
        total_blocks=census.total_blocks,
        gc_invocations=census.gc_invocations,
        block_erases=census.block_erases,
    )


def run_capacity_analysis(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> list[CapacityResult]:
    """Compare block census and GC cost, baseline vs IDA-E20."""
    scale = scale or RunScale.bench()
    names = workload_names or ["proj_1", "usr_1", "src2_0"]
    units = []
    for name in names:
        for system in (baseline(), ida(0.2)):
            units.append(RunUnit(system, name, scale, seed=seed, mode="capacity"))
    censuses = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, censuses, _ = prune_failed(names, units, censuses, progress)

    results = []
    for index, name in enumerate(names):
        result = CapacityResult(workload=name)
        for unit, census in zip(
            units[2 * index : 2 * index + 2], censuses[2 * index : 2 * index + 2]
        ):
            result.rows.append(_row_from_census(unit.system.name, census))
        results.append(result)
    return results


def format_capacity(results: list[CapacityResult]) -> str:
    headers = [
        "workload",
        "system",
        "in-use blocks",
        "IDA blocks",
        "GC runs",
        "erases",
        "in-use +%dev",
        "erase +%",
    ]
    rows = []
    for result in results:
        for row in result.rows:
            rows.append(
                [
                    result.workload,
                    row.system,
                    f"{row.in_use_blocks} ({row.in_use_fraction:.1%})",
                    row.ida_blocks,
                    row.gc_invocations,
                    row.block_erases,
                    f"{result.in_use_increase_fraction():+.1%}"
                    if row.system != "baseline"
                    else "",
                    f"{result.erase_increase_fraction():+.1%}"
                    if row.system != "baseline"
                    else "",
                ]
            )
    return ascii_table(
        headers,
        rows,
        title="Sec. III-C capacity analysis "
        "(paper: in-use +2-4% of device, erases +<=3% after write phase)",
    )
