"""Run one (system, workload) pair and collect everything the artifacts need.

The run protocol, mirroring Sec. IV:

1. build the device and the simulator for the system spec;
2. warm up: sequential fill of the workload footprint with program times
   spread over one refresh period before the trace (staggers refresh
   ages), then the aging updates that create invalid lower pages;
3. replay the timed trace with the refresh daemon active;
4. drain, and report response times, throughput, read-mix and refresh
   accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults.plan import FaultPlan
from ..ftl.gc import GcPolicy
from ..ftl.refresh import RefreshPolicy, RefreshReport
from ..obs.health import HealthMonitor
from ..obs.histogram import Histogram
from ..obs.interval import IntervalCollector
from ..obs.profiler import SimProfiler
from ..obs.tracer import Tracer
from ..sim.metrics import ReadMixCounters, SimMetrics
from ..sim.scheduler import HostRequest
from ..sim.snapshot import (
    WarmHandle,
    WarmState,
    capture_warm_state,
    restore_warm_state,
)
from ..sim.ssd import SsdSimulator
from ..workloads.synthetic import (
    GeneratedWorkload,
    WorkloadSpec,
    generate_workload,
    sample_update_lpns,
)
from .config import DeviceConfig, RunScale, device
from .systems import SystemSpec

__all__ = [
    "RunResult",
    "RunResultPayload",
    "CapacityCensus",
    "run_workload",
    "run_capacity_phase_pair",
    "normalized_read_response",
    "warm_device",
    "warm_cache_key",
    "prepare_warm_state",
]


@dataclass
class RunResult:
    """Everything one simulation run produced.

    Attributes:
        system: The evaluated system spec.
        workload: The workload spec actually run (after scaling).
        metrics: Simulator metrics (latencies, throughput, counters).
        refresh_reports: Per-block refresh accounting (Table IV).
        in_use_blocks / ida_blocks: Post-run block census (Sec. III-C).
        utilisation: Mean die / channel utilisation over the run.
        queue_wait: Per resource class and priority queue-wait totals.
        scale / seed: The run's scale and RNG seed (for the manifest).
        profile: Aggregated :class:`~repro.obs.profiler.SimProfiler`
            output (``aggregate()`` dict) when the run was profiled,
            else ``None`` — absent keys keep unprofiled manifests
            byte-identical to pre-profiler ones.
        faults: The fault injector's ``summary()`` (plan + fired events)
            when the run had a :class:`~repro.faults.FaultPlan` bound,
            else ``None`` — same absent-key discipline as ``profile``.
        health: The health monitor's ``to_payload()`` (snapshot series,
            summary, optional SLO + registry state) when the run had a
            :class:`~repro.obs.health.HealthMonitor` bound, else
            ``None`` — same absent-key discipline again.
    """

    system: SystemSpec
    workload: WorkloadSpec
    metrics: SimMetrics
    refresh_reports: list[RefreshReport] = field(default_factory=list)
    in_use_blocks: int = 0
    ida_blocks: int = 0
    utilisation: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)
    scale: RunScale | None = None
    seed: int = 11
    profile: dict | None = None
    faults: dict | None = None
    health: dict | None = None

    @property
    def mean_read_response_us(self) -> float:
        return self.metrics.read_response.mean_us

    @property
    def throughput_mb_s(self) -> float:
        return self.metrics.throughput_mb_s()

    def to_payload(self) -> "RunResultPayload":
        return RunResultPayload.from_result(self)


@dataclass
class RunResultPayload:
    """Compact, cheaply-picklable form of a :class:`RunResult`.

    This is what crosses the process boundary in a parallel sweep: the
    raw ``SimMetrics`` sample lists and per-block ``RefreshReport``
    objects are collapsed to summary dicts, fixed-bucket histograms and
    refresh aggregates — a few KB regardless of run size — while keeping
    everything the artifact post-processing (normalisation, Table IV
    averages, manifests) consumes.  ``jobs=1`` sweeps return the same
    type, so a sweep's output is identical at any job count.
    """

    system: SystemSpec
    workload: WorkloadSpec
    scale: RunScale | None
    seed: int
    read_response: dict
    write_response: dict
    read_hist: Histogram
    write_hist: Histogram
    throughput_mb_s: float
    read_throughput_mb_s: float
    elapsed_us: float
    bytes_read: int
    bytes_written: int
    read_mix: ReadMixCounters
    counters: dict
    refresh: dict
    in_use_blocks: int
    ida_blocks: int
    utilisation: dict = field(default_factory=dict)
    queue_wait: dict = field(default_factory=dict)
    profile: dict | None = None
    faults: dict | None = None
    health: dict | None = None

    @property
    def mean_read_response_us(self) -> float:
        return self.read_response["mean_us"]

    def metrics_summary(self) -> dict:
        """The same dict :func:`reporting.metrics_summary` builds."""
        from .reporting import read_mix_dict

        return {
            "read_response": dict(self.read_response),
            "write_response": dict(self.write_response),
            "throughput_mb_s": self.throughput_mb_s,
            "read_throughput_mb_s": self.read_throughput_mb_s,
            "elapsed_us": self.elapsed_us,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "read_mix": read_mix_dict(self.read_mix),
            "counters": dict(self.counters),
        }

    @classmethod
    def from_result(cls, result: RunResult) -> "RunResultPayload":
        from .reporting import counters_dict

        metrics = result.metrics
        reports = result.refresh_reports
        ida_reports = [r for r in reports if r.n_adjusted_wordlines > 0]
        refresh = {
            "blocks_refreshed": len(reports),
            "extra_reads": sum(r.extra_reads for r in reports),
            "extra_writes": sum(r.extra_writes for r in reports),
            "ida_refreshes": len(ida_reports),
            "ida_valid_pages": sum(r.n_valid for r in ida_reports),
            "ida_extra_reads": sum(r.extra_reads for r in ida_reports),
            "ida_extra_writes": sum(r.extra_writes for r in ida_reports),
        }
        return cls(
            system=result.system,
            workload=result.workload,
            scale=result.scale,
            seed=result.seed,
            read_response=metrics.read_response.summary(),
            write_response=metrics.write_response.summary(),
            read_hist=metrics.read_response.histogram(),
            write_hist=metrics.write_response.histogram(),
            throughput_mb_s=metrics.throughput_mb_s(),
            read_throughput_mb_s=metrics.read_throughput_mb_s(),
            elapsed_us=metrics.elapsed_us,
            bytes_read=metrics.bytes_read,
            bytes_written=metrics.bytes_written,
            read_mix=metrics.read_mix,
            counters=counters_dict(metrics),
            refresh=refresh,
            in_use_blocks=result.in_use_blocks,
            ida_blocks=result.ida_blocks,
            utilisation=result.utilisation,
            queue_wait=result.queue_wait,
            profile=result.profile,
            faults=result.faults,
            health=result.health,
        )


@dataclass(frozen=True)
class CapacityCensus:
    """Block census and GC cost after a read-then-write phase pair.

    The compact result of :func:`run_capacity_phase_pair` — what the
    Sec. III-C capacity analysis transports out of a sweep worker.
    """

    in_use_blocks: int
    ida_blocks: int
    total_blocks: int
    gc_invocations: int
    block_erases: int


def _build_device(system: SystemSpec, scale: RunScale) -> DeviceConfig:
    from dataclasses import replace

    dev = device(system.device, blocks_per_plane=scale.blocks_per_plane)
    dev = DeviceConfig(dev.name, scale.apply_topology(dev.geometry), dev.timing, dev.coding)
    if system.dtr_us is not None:
        dev = dev.with_dtr(system.dtr_us)
    if system.adjust_program_fraction != 1.0:
        dev = DeviceConfig(
            dev.name,
            dev.geometry,
            replace(dev.timing, adjust_program_fraction=system.adjust_program_fraction),
            dev.coding,
        )
    return dev


def build_simulator(
    system: SystemSpec,
    scale: RunScale,
    duration_us: float,
    seed: int = 11,
    tracer: Tracer | None = None,
    collector: IntervalCollector | None = None,
    profiler: SimProfiler | None = None,
    faults: FaultPlan | None = None,
    health: HealthMonitor | None = None,
    backend: str | None = None,
) -> SsdSimulator:
    """Assemble a simulator for one system at one scale."""
    dev = _build_device(system, scale)
    period_us = duration_us / scale.refresh_cycles
    policy = RefreshPolicy(
        mode=system.refresh_mode,
        period_us=period_us,
        error_rate=system.error_rate,
    )
    return SsdSimulator(
        geometry=dev.geometry,
        timing=dev.timing,
        coding=dev.coding,
        refresh_policy=policy,
        gc_policy=GcPolicy(scale.gc_low_watermark, scale.gc_target_free),
        retry_model=system.retry_model(),
        seed=seed,
        allocation=system.allocation,
        policy=system.policy,
        tracer=tracer,
        collector=collector,
        profiler=profiler,
        faults=faults,
        health=health,
        backend=backend,
    )


def _health_collector(
    spec: WorkloadSpec, collector: IntervalCollector | None
) -> IntervalCollector | None:
    """Collector to sample a health monitor on.

    Health trajectories ride the interval collector's cadence; a run
    that asks for health without supplying a collector gets a default
    one spanning the trace in 16 samples.  Built from the scaled spec
    alone, so inline and pooled executions derive the same grid.
    """
    if collector is not None:
        return collector
    return IntervalCollector(interval_us=spec.duration_us / 16)


def warm_device(
    sim: SsdSimulator,
    generated: GeneratedWorkload,
    warm: WarmHandle | None = None,
) -> None:
    """Warm up one simulator: footprint fill, then the aging updates.

    The single warm-up entry point for every run mode, and the snapshot
    layer's only seam.  The cold path spreads fill ages over
    ``[-1.4P, -0.4P)`` — the oldest 40% of blocks are already refresh-due
    when the trace starts, so the measured window sees the steady state
    (as the paper's multi-day replays do) rather than an all-conventional
    cold start — then applies the aging updates that create the invalid
    lower pages IDA exploits.

    With a :class:`~repro.sim.snapshot.WarmHandle`, a cached
    :class:`~repro.sim.snapshot.WarmState` replaces the whole ritual
    (restore is a buffer copy, byte-identical by the snapshot-parity
    suite), and a cold warm-up's result is captured and offered back to
    the cache.  Traced runs always warm up cold: warm-up GC can emit
    trace events, and a restored run must not silently drop them.
    """
    use_snapshots = warm is not None and not sim.tracer.enabled
    if use_snapshots:
        state = warm.fetch()
        if state is not None:
            restore_warm_state(sim, state)
            return
    period_us = sim.ftl.refresh_policy.period_us
    sim.preload(
        generated.fill_lpns, start_us=-1.4 * period_us, end_us=-0.4 * period_us
    )
    sim.age(generated.aging_lpns, pseudo_now_us=-0.35 * period_us)
    if use_snapshots:
        warm.publish(capture_warm_state(sim))


#: Version of the warm-key derivation below.  Bump when the set of
#: fields the warm-up can observe changes, so stale spill directories
#: miss instead of restoring a subtly different state.
_WARM_KEY_SCHEMA = 1


def warm_cache_key(
    system: SystemSpec,
    spec: WorkloadSpec,
    scale: RunScale,
    seed: int,
    backend: str | None,
) -> str:
    """Content-address of the warmed state a run starts from.

    Hashes exactly the inputs the warm-up can observe: the device family
    and allocation strategy (they shape geometry and fill placement), the
    *scaled* workload spec (fill/aging LPN streams and the duration that
    sets preload timestamps), the seed, the full run scale (topology, GC
    watermarks, and ``refresh_cycles``, which fixes the preload time
    spread), and the execution backend.  Every other system field —
    refresh mode, error rate, DTR threshold, retry model, scheduling
    policy, adjust-program fraction — is deliberately *excluded*: the
    warm-up never reads them, which is precisely what lets a fig8 system
    fan or a fig9 DTR sweep share one snapshot per workload.

    Args:
        spec: The **scaled** workload spec (after ``spec.scaled(...)``).
    """
    import hashlib
    import json

    from .reporting import jsonable

    material = {
        "schema": _WARM_KEY_SCHEMA,
        "device": system.device,
        "allocation": system.allocation,
        "workload": jsonable(spec),
        "scale": jsonable(scale),
        "seed": seed,
        "backend": backend or "reference",
    }
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def prepare_warm_state(
    system: SystemSpec,
    spec: WorkloadSpec,
    scale: RunScale | None = None,
    seed: int = 11,
    backend: str | None = None,
) -> WarmState:
    """Run the warm-up on a bare simulator and capture the result.

    The sweep executor's miss path: one cold preload in the parent seeds
    the snapshot every pooled unit of the group restores from.
    """
    scale = scale or RunScale()
    spec = spec.scaled(scale.num_requests, scale.footprint_pages)
    generated = generate_workload(spec)
    sim = build_simulator(
        system, scale, spec.duration_us, seed=seed, backend=backend
    )
    warm_device(sim, generated)
    return capture_warm_state(sim)


def _to_host_requests(
    generated: GeneratedWorkload, page_size_bytes: int
) -> list[HostRequest]:
    requests = []
    for index, io in enumerate(generated.trace.requests):
        requests.append(
            HostRequest(
                request_id=index,
                arrival_us=io.time_us,
                is_read=io.is_read,
                lpns=io.lpns(page_size_bytes),
                size_bytes=io.size_bytes,
            )
        )
    return requests


def run_workload(
    system: SystemSpec,
    spec: WorkloadSpec,
    scale: RunScale | None = None,
    seed: int = 11,
    tracer: Tracer | None = None,
    collector: IntervalCollector | None = None,
    profiler: SimProfiler | None = None,
    faults: FaultPlan | None = None,
    health: HealthMonitor | None = None,
    backend: str | None = None,
    warm: WarmHandle | None = None,
) -> RunResult:
    """Execute one (system, workload) pair end to end.

    ``backend`` selects the execution backend by registry name (see
    :mod:`repro.sim.backends`); results are byte-identical across
    backends, only wall-clock changes.  ``warm`` connects the run to the
    warm-state snapshot cache (see :func:`warm_device`) — another pure
    wall-clock knob, byte-identical by the snapshot-parity suite.
    """
    scale = scale or RunScale()
    spec = spec.scaled(scale.num_requests, scale.footprint_pages)
    generated = generate_workload(spec)
    if health is not None:
        collector = _health_collector(spec, collector)
    sim = build_simulator(
        system,
        scale,
        spec.duration_us,
        seed=seed,
        tracer=tracer,
        collector=collector,
        profiler=profiler,
        faults=faults,
        health=health,
        backend=backend,
    )
    page_size = sim.geometry.page_size_bytes

    warm_device(sim, generated, warm=warm)

    # Background update stream: sustain the trace's update rate between
    # refresh cycles so invalid-lower-page exposure stays at the Table III
    # level throughout the run (the timed trace replays only a sample of
    # the original requests).
    batches_per_cycle = 8
    total_batches = max(1, int(scale.refresh_cycles * batches_per_cycle))
    per_cycle_updates = int(spec.aging_update_fraction * spec.footprint_pages)
    total_updates = int(per_cycle_updates * scale.refresh_cycles)
    update_lpns = sample_update_lpns(spec, total_updates)
    background: list[tuple[float, list[int]]] = []
    if update_lpns:
        chunk = max(1, len(update_lpns) // total_batches)
        for i in range(total_batches):
            batch = update_lpns[i * chunk : (i + 1) * chunk]
            if batch:
                time_us = (i + 0.5) * spec.duration_us / total_batches
                background.append((time_us, batch))

    metrics = sim.run_requests(
        _to_host_requests(generated, page_size), background_updates=background
    )
    return RunResult(
        system=system,
        workload=spec,
        metrics=metrics,
        refresh_reports=list(sim.ftl.refresh_reports),
        in_use_blocks=sim.ftl.table.in_use_blocks(),
        ida_blocks=sim.ftl.table.ida_blocks(),
        utilisation=sim.utilisation_report(),
        queue_wait=sim.queue_wait_report(),
        scale=scale,
        seed=seed,
        profile=sim.profiler.aggregate() if sim.profiler is not None else None,
        faults=sim.fault_summary(),
        health=sim.health.to_payload() if sim.health is not None else None,
    )


def run_workload_closed_loop(
    system: SystemSpec,
    spec: WorkloadSpec,
    scale: RunScale | None = None,
    queue_depth: int = 32,
    seed: int = 11,
    tracer: Tracer | None = None,
    collector: IntervalCollector | None = None,
    profiler: SimProfiler | None = None,
    faults: FaultPlan | None = None,
    health: HealthMonitor | None = None,
    backend: str | None = None,
    warm: WarmHandle | None = None,
) -> RunResult:
    """Closed-loop variant of :func:`run_workload` (Fig. 10 throughput).

    The host keeps ``queue_depth`` requests outstanding; throughput then
    reflects device capability rather than the trace's arrival rate.
    """
    scale = scale or RunScale()
    spec = spec.scaled(scale.num_requests, scale.footprint_pages)
    generated = generate_workload(spec)
    if health is not None:
        collector = _health_collector(spec, collector)
    sim = build_simulator(
        system,
        scale,
        spec.duration_us,
        seed=seed,
        tracer=tracer,
        collector=collector,
        profiler=profiler,
        faults=faults,
        health=health,
        backend=backend,
    )
    page_size = sim.geometry.page_size_bytes

    warm_device(sim, generated, warm=warm)

    metrics = sim.run_closed_loop(
        _to_host_requests(generated, page_size), queue_depth=queue_depth
    )
    return RunResult(
        system=system,
        workload=spec,
        metrics=metrics,
        refresh_reports=list(sim.ftl.refresh_reports),
        in_use_blocks=sim.ftl.table.in_use_blocks(),
        ida_blocks=sim.ftl.table.ida_blocks(),
        utilisation=sim.utilisation_report(),
        queue_wait=sim.queue_wait_report(),
        scale=scale,
        seed=seed,
        profile=sim.profiler.aggregate() if sim.profiler is not None else None,
        faults=sim.fault_summary(),
        health=sim.health.to_payload() if sim.health is not None else None,
    )


def run_capacity_phase_pair(
    system: SystemSpec,
    spec: WorkloadSpec,
    scale: RunScale | None = None,
    seed: int = 11,
    faults: FaultPlan | None = None,
    warm: WarmHandle | None = None,
) -> CapacityCensus:
    """Read-intensive phase followed by a write-intensive phase.

    The Sec. III-C capacity experiment: replay the timed trace, then
    rewrite a footprint-sized sample of LPNs (untimed logical churn is
    enough — the claim is about GC counts) and report the block census
    and cumulative GC cost.
    """
    scale = scale or RunScale()
    spec = spec.scaled(scale.num_requests, scale.footprint_pages)
    generated = generate_workload(spec)
    sim = build_simulator(system, scale, spec.duration_us, seed=seed, faults=faults)
    page_size = sim.geometry.page_size_bytes
    warm_device(sim, generated, warm=warm)
    sim.run_requests(_to_host_requests(generated, page_size))

    followup = sample_update_lpns(spec, scale.footprint_pages, seed_offset=9)
    now = sim.engine.now
    for lpn in followup:
        sim.ftl.write_untimed(lpn, now)

    return CapacityCensus(
        in_use_blocks=sim.ftl.table.in_use_blocks(),
        ida_blocks=sim.ftl.table.ida_blocks(),
        total_blocks=sim.geometry.total_blocks,
        gc_invocations=sim.ftl.counters.gc_invocations,
        block_erases=sim.ftl.counters.block_erases,
    )


def normalized_read_response(
    variant: RunResult | RunResultPayload, base: RunResult | RunResultPayload
) -> float:
    """Variant mean read response, normalised to the baseline's (Fig. 8)."""
    base_mean = base.mean_read_response_us
    if base_mean <= 0:
        raise ValueError("baseline produced no read responses")
    return variant.mean_read_response_us / base_mean


def improvement_pct(
    variant: RunResult | RunResultPayload, base: RunResult | RunResultPayload
) -> float:
    """Read response-time improvement of ``variant`` over ``base``, in %."""
    return (1.0 - normalized_read_response(variant, base)) * 100.0
