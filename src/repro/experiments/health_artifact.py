"""Health artifact — device-health trajectories, Baseline vs IDA-E20.

The paper's figures report end-of-run latency aggregates; an operator
deciding whether to deploy IDA-Coding also wants to know what it does to
the *device*: wear spread, estimated RBER, E-state exposure, retry and
reclaim pressure — and whether service objectives hold as the device
degrades.  This artifact runs baseline and IDA-E20 with the health
monitor attached, healthy and under a late-lifetime fault plan (the
PR 5 injector), and reports the resulting trajectories plus SLO
accounting.

Within a workload the faulted cells of both systems share one
:class:`~repro.faults.FaultPlan` (same placement, same schedule), so the
health divergence isolates the coding scheme, mirroring the pairing
discipline of the faults artifact.  Every cell carries full health
payloads — snapshot series, SLO summary, and the run's metrics-registry
state — so the JSON export is a complete health record and the
Prometheus export is one merged scrape file distinguished by
``system`` / ``condition`` labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import labeled_snapshots_to_prometheus
from ..obs.slo import SloObjective
from ..workloads.msr import workload as _catalog_workload
from .config import RunScale
from .faults_artifact import plan_for_cell
from .fig11_read_retry import DEFAULT_PHASES
from .parallel import ProgressFn, RunUnit, execute_units, failed_workloads
from .reporting import ascii_table
from .systems import baseline, ida

__all__ = [
    "DEFAULT_HEALTH_DENSITY",
    "HealthCell",
    "HealthArtifactResult",
    "health_objectives",
    "run_health",
    "format_health",
    "health_to_json",
    "health_to_prometheus",
]

#: Fault density of the degraded cells (same scale as the faults
#: artifact's densities; 4 is its heaviest default column).
DEFAULT_HEALTH_DENSITY = 4

#: Late-lifetime phase index into :data:`DEFAULT_PHASES` used for the
#: faulted cells (index 1 = the high retry-fail-prob end of Fig. 11).
_LATE_PHASE_INDEX = 1


def health_objectives(duration_us: float) -> tuple[SloObjective, ...]:
    """The artifact's default SLOs, windowed to the trace duration.

    ``read-retry-rate`` is the discriminating objective: a healthy
    device retries (essentially) never, a late-lifetime faulted one
    retries on a large fraction of reads, so the faulted cells breach
    while the healthy cells keep their full error budget.  ``read-p99``
    rides along with a deliberately loose threshold as the latency
    guardrail.
    """
    window = duration_us / 4
    return (
        SloObjective(
            name="read-retry-rate",
            metric="read_retry_rate",
            threshold=0.05,
            window_us=window,
            budget=0.1,
        ),
        SloObjective(
            name="read-p99",
            metric="read_p99_us",
            threshold=6000.0,
            window_us=window,
            budget=0.25,
        ),
    )


@dataclass(frozen=True)
class HealthCell:
    """One (workload, system, condition) run's health record."""

    workload: str
    system: str
    condition: str  # "healthy" | "faulted"
    mean_read_us: float
    #: The run's full health payload: summary, snapshot series, SLO
    #: accounting and registry snapshot (see HealthMonitor.to_payload).
    health: dict = field(default_factory=dict)

    @property
    def summary(self) -> dict:
        return self.health.get("summary", {})

    @property
    def series(self) -> list:
        return self.health.get("series", [])

    @property
    def slo(self) -> dict:
        return self.health.get("slo", {})

    @property
    def breaches(self) -> int:
        return self.slo.get("breaches", 0)


@dataclass
class HealthArtifactResult:
    """All cells plus the axes that generated them."""

    workloads: list[str]
    error_rate: float
    density: int
    retry_fail_prob: float
    cells: list[HealthCell] = field(default_factory=list)

    def cell(self, workload: str, system: str, condition: str) -> HealthCell:
        for cell in self.cells:
            if (
                cell.workload == workload
                and cell.system == system
                and cell.condition == condition
            ):
                return cell
        raise KeyError(f"no cell ({workload}, {system}, {condition})")


def run_health(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rate: float = 0.2,
    density: int = DEFAULT_HEALTH_DENSITY,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> HealthArtifactResult:
    """Sweep (workload x {baseline, ida} x {healthy, faulted}) with health on."""
    scale = scale or RunScale.bench()
    names = workload_names or ["hm_1", "proj_1"]
    late = DEFAULT_PHASES[_LATE_PHASE_INDEX]

    conditions = []  # (workload, system_name, condition) per unit
    units = []
    for name in names:
        spec = _catalog_workload(name).scaled(
            scale.num_requests, scale.footprint_pages
        )
        objectives = health_objectives(spec.duration_us)
        plan = plan_for_cell(name, _LATE_PHASE_INDEX, density, scale, seed)
        for spec_sys in (baseline(), ida(error_rate)):
            conditions.append((name, spec_sys.name, "healthy"))
            units.append(
                RunUnit(
                    spec_sys, name, scale, seed=seed, health=True, slo=objectives
                )
            )
            conditions.append((name, spec_sys.name, "faulted"))
            units.append(
                RunUnit(
                    spec_sys.with_retry(late.retry_fail_prob),
                    name,
                    scale,
                    seed=seed,
                    faults=plan,
                    health=True,
                    slo=objectives,
                )
            )

    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    failed = failed_workloads(payloads)
    if failed and progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")

    result = HealthArtifactResult(
        workloads=[n for n in names if n not in failed],
        error_rate=error_rate,
        density=density,
        retry_fail_prob=late.retry_fail_prob,
    )
    for (name, system_name, condition), payload in zip(conditions, payloads):
        if name in failed:
            continue
        result.cells.append(
            HealthCell(
                workload=name,
                system=system_name,
                condition=condition,
                mean_read_us=payload.mean_read_response_us,
                health=payload.health or {},
            )
        )
    return result


_SPARK_RAMP = " .:-=+*#%@"


def _sparkline(values: list[float]) -> str:
    """ASCII sparkline: one ramp character per value, scaled to the max."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK_RAMP[0] * len(values)
    scale = (len(_SPARK_RAMP) - 1) / top
    return "".join(_SPARK_RAMP[int(round(v * scale))] for v in values)


def format_health(result: HealthArtifactResult) -> str:
    """Summary table plus per-cell retry-rate / p99 trajectory sparklines."""
    headers = [
        "workload",
        "system",
        "condition",
        "mean read",
        "wear p99",
        "retired",
        "retries",
        "max RBER",
        "IDA exp",
        "SLO breaches",
    ]
    rows = []
    for cell in result.cells:
        summary = cell.summary
        wear = summary.get("wear", {})
        rows.append(
            [
                cell.workload,
                cell.system,
                cell.condition,
                f"{cell.mean_read_us:.0f}us",
                f"{wear.get('p99', 0):.0f}",
                summary.get("retired_blocks", 0),
                summary.get("read_retries", 0),
                f"{summary.get('max_est_rber', 0.0):.2e}",
                f"{summary.get('ida_exposure', 0.0) * 100:.1f}%",
                cell.breaches,
            ]
        )
    table = ascii_table(
        headers,
        rows,
        title=(
            "Health: device trajectories, baseline vs IDA-E20, healthy vs "
            f"faulted (density={result.density}, "
            f"retry_fail_prob={result.retry_fail_prob})"
        ),
    )
    lines = [table, "", "trajectories (per sampling interval):"]
    for cell in result.cells:
        retry = [s.get("read_retry_rate", 0.0) for s in cell.series]
        p99 = [s.get("read_latency", {}).get("p99_us", 0.0) for s in cell.series]
        label = f"{cell.workload}/{cell.system}/{cell.condition}"
        lines.append(f"  {label:<40} retry-rate [{_sparkline(retry)}]")
        lines.append(f"  {'':<40} read-p99   [{_sparkline(p99)}]")
    return "\n".join(lines)


def health_to_json(result: HealthArtifactResult) -> dict:
    """JSON-ready form of the sweep, full health payloads included.

    CI uploads this as the run's health-series artifact; everything the
    summary table shows is reconstructible from it.
    """
    return {
        "kind": "health_artifact",
        "workloads": list(result.workloads),
        "error_rate": result.error_rate,
        "density": result.density,
        "retry_fail_prob": result.retry_fail_prob,
        "cells": [
            {
                "workload": c.workload,
                "system": c.system,
                "condition": c.condition,
                "mean_read_us": c.mean_read_us,
                "health": c.health,
            }
            for c in result.cells
        ],
    }


def health_to_prometheus(result: HealthArtifactResult) -> str:
    """One Prometheus exposition for the whole sweep.

    Each cell's registry snapshot contributes its samples tagged with
    ``workload`` / ``system`` / ``condition`` labels; families are
    declared once.  Cells without a registry (shouldn't happen — health
    units always carry one) are skipped rather than failing the export.
    """
    labeled = [
        (
            {
                "workload": cell.workload,
                "system": cell.system,
                "condition": cell.condition,
            },
            cell.health["registry"],
        )
        for cell in result.cells
        if cell.health.get("registry")
    ]
    return labeled_snapshots_to_prometheus(labeled)
