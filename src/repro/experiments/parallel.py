"""Parallel sweep execution: process-pool fan-out over independent runs.

Every reproduced figure and table is a sweep of fully independent
``(system, workload, scale, seed)`` simulations — ``run_fig8`` alone is
11 workloads x 7 systems.  This module turns such a sweep into a list of
declarative :class:`RunUnit` descriptions and executes them on a process
pool, with results returned **in submission order**.

The determinism contract
------------------------

Each unit carries its own seed (and, optionally, its own
:class:`~repro.faults.FaultPlan`) and each worker constructs its own
simulator from scratch, so a unit's result is a pure function of the
unit description.  Parallel execution therefore produces *exactly* the
same numbers as sequential execution — pinned by
``tests/experiments/test_parallel_parity.py`` against the sequential
golden file — and ``jobs`` is a pure wall-clock knob that is safe to
flip on any experiment.

Only compact :class:`~repro.experiments.runner.RunResultPayload` objects
(or :class:`~repro.experiments.runner.CapacityCensus` for capacity-mode
units) cross the process boundary; raw metrics with per-sample lists
never do.  Tracing and interval collection are *inline-only* (``jobs=1``,
the default): a tracer is an open file plus callbacks, neither of which
can usefully cross a fork, and interleaving events from concurrent runs
would destroy the per-run ordering the trace inspector relies on.

Hardening
---------

Long sweeps on shared machines die in three ways the original
``Pool.imap`` loop turned into a lost afternoon: a worker segfaults (OOM
killer, native-extension crash), a unit hangs, or one unit raises and
takes the other 69 results down with it.  :class:`SweepExecutor` now
takes ``timeout_s`` (per-unit wall-clock budget), ``max_retries`` with
exponential ``backoff_s`` (crashed/hung workers are retried on a fresh
pool — unit determinism makes retries safe), and ``keep_going``
(failures become :class:`SweepError` records *in* the result list
instead of exceptions, so an artifact keeps every healthy workload).
Deterministic unit exceptions are never retried — the same unit would
fail the same way again.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
import pickle
import random
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from ..faults.plan import FaultKind, FaultPlan
from ..obs.health import HealthMonitor
from ..obs.interval import IntervalCollector
from ..obs.metrics import MetricsRegistry
from ..obs.profiler import SimProfiler
from ..obs.slo import SloEngine, SloObjective
from ..obs.tracer import Tracer
from ..sim.backends import ENGINE_BACKENDS
from ..sim.snapshot import (
    SharedSnapshotRef,
    SnapshotStore,
    WarmHandle,
    attach_warm_state,
    publish_warm_state,
)
from ..workloads.msr import workload as _catalog_workload
from ..workloads.synthetic import WorkloadSpec
from .config import RunScale
from .runner import (
    CapacityCensus,
    RunResultPayload,
    prepare_warm_state,
    run_capacity_phase_pair,
    run_workload,
    run_workload_closed_loop,
    warm_cache_key,
)
from .systems import SystemSpec

__all__ = [
    "RunUnit",
    "SweepError",
    "SweepExecutor",
    "execute_unit",
    "execute_units",
    "failed_workloads",
    "prune_failed",
    "warm_key_for_unit",
]

_log = logging.getLogger(__name__)

#: Resident warm states the executor's in-process store keeps.  Artifact
#: sweeps iterate workload-major, so a small window covers the reuse
#: pattern without pinning every distinct state of a long sweep in RAM.
_SNAPSHOT_LRU_CAPACITY = 8

#: Log-style progress callback: called once per completed unit.
ProgressFn = Callable[[str], None]

_MODES = ("open", "closed", "capacity", "recover")


@dataclass(frozen=True)
class RunUnit:
    """One independent simulation of a sweep, picklable by construction.

    Attributes:
        system: The system spec to simulate.
        workload: A catalog workload name (resolved worker-side) or an
            explicit :class:`WorkloadSpec` for non-catalog workloads.
        scale: Run scale (scaling of the spec happens in the worker).
        seed: The unit's own RNG seed — determinism is per-unit.
        mode: ``"open"`` (trace replay), ``"closed"`` (fixed queue
            depth, Fig. 10), ``"capacity"`` (read-then-write phase
            pair, Sec. III-C) or ``"recover"`` (run to a power cut,
            remount from on-flash metadata, verify and resume — see
            :mod:`repro.experiments.recovery_artifact`).
        queue_depth: Outstanding requests for ``"closed"`` units.
        profile: Attach a :class:`~repro.obs.profiler.SimProfiler` to
            the run; its aggregate rides back on the payload's
            ``profile`` field.  Unlike tracing, profiling works at any
            job count — the profiler is built worker-side (aggregates
            only, no slice events) and only its plain-dict aggregate
            crosses the process boundary.
        faults: Optional :class:`~repro.faults.FaultPlan` to bind to the
            run's simulator.  Plans are frozen and picklable, so faulted
            units fan out exactly like healthy ones; the fault summary
            rides back on the payload's ``faults`` field.
        health: Attach a :class:`~repro.obs.health.HealthMonitor` (with
            its own :class:`~repro.obs.metrics.MetricsRegistry`) to the
            run.  Like the profiler, the monitor is built worker-side —
            only its plain-dict payload crosses the process boundary —
            so health-instrumented sweeps run at any job count and
            produce identical series inline and pooled.
        slo: Optional :class:`~repro.obs.slo.SloObjective` tuple to
            evaluate against the health trajectory (implies nothing by
            itself — only honoured when ``health`` is set).  Objectives
            are frozen dataclasses, picklable by construction.
        backend: Execution-backend registry name (``"reference"`` /
            ``"batch"``, see :mod:`repro.sim.backends`).  A pure
            wall-clock knob like ``jobs``: results are byte-identical
            across backends, so it is safe to flip on any sweep.
    """

    system: SystemSpec
    workload: str | WorkloadSpec
    scale: RunScale
    seed: int = 11
    mode: str = "open"
    queue_depth: int = 32
    profile: bool = False
    faults: FaultPlan | None = None
    health: bool = False
    slo: tuple[SloObjective, ...] | None = None
    backend: str = "reference"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; choose one of {_MODES}"
            )
        if self.slo is not None and not self.health:
            raise ValueError("slo objectives require health=True")
        if self.mode == "recover" and (
            self.faults is None
            or not any(
                e.kind is FaultKind.POWER_CUT for e in self.faults.events
            )
        ):
            raise ValueError(
                "recover-mode units need a fault plan with a power_cut event"
            )
        if self.backend not in ENGINE_BACKENDS:
            valid = ", ".join(sorted(ENGINE_BACKENDS))
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"choose one of: {valid}"
            )

    def build_health(self) -> HealthMonitor | None:
        """Worker-side health monitor for this unit (None when disabled)."""
        if not self.health:
            return None
        return HealthMonitor(
            registry=MetricsRegistry(),
            slo=SloEngine(self.slo) if self.slo else None,
        )

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def resolve_workload(self) -> WorkloadSpec:
        if isinstance(self.workload, str):
            return _catalog_workload(self.workload)
        return self.workload

    def describe(self) -> str:
        return f"{self.system.name}/{self.workload_name}"


class SweepError(RuntimeError):
    """A sweep unit failed; ``unit`` identifies which one.

    For deterministic unit exceptions the worker's original exception is
    chained as ``__cause__`` and its formatted worker-side traceback is
    kept in ``details``; for crashes and timeouts ``details`` carries
    what the executor observed.  In ``keep_going`` mode these objects
    occupy the failed unit's slot in the result list — check with
    ``isinstance(outcome, SweepError)`` (or via :func:`prune_failed`).
    """

    def __init__(self, unit: RunUnit, message: str, details: str = ""):
        super().__init__(
            f"sweep unit {unit.describe()} "
            f"(mode={unit.mode}, seed={unit.seed}) failed: {message}"
        )
        self.unit = unit
        self.details = details


def warm_key_for_unit(unit: RunUnit) -> str:
    """The unit's warm-state cache key (see :func:`~.runner.warm_cache_key`).

    Units that differ only in swept parameters the warm-up cannot observe
    (refresh mode, error rate, DTR, retry model, policy, queue depth,
    mode, fault plan, observability) map to the same key and share one
    snapshot — the grouping :class:`SweepExecutor` fans shared-memory
    segments out by.
    """
    spec = unit.resolve_workload().scaled(
        unit.scale.num_requests, unit.scale.footprint_pages
    )
    return warm_cache_key(
        unit.system, spec, unit.scale, unit.seed, unit.backend
    )


def execute_unit(
    unit: RunUnit,
    tracer: Tracer | None = None,
    collector: IntervalCollector | None = None,
    warm: WarmHandle | None = None,
) -> RunResultPayload | CapacityCensus | dict:
    """Run one unit in the current process (worker body and inline path)."""
    if unit.mode == "recover":
        # Local import: recovery_artifact imports this module at top level.
        from .recovery_artifact import run_recovery_unit

        return run_recovery_unit(unit, warm=warm)
    spec = unit.resolve_workload()
    # Worker-side profiler / health monitor: constructed here so nothing
    # live crosses the fork; only plain-dict payloads ride back.
    profiler = SimProfiler(keep_events=False) if unit.profile else None
    health = unit.build_health()
    if unit.mode == "open":
        return run_workload(
            unit.system,
            spec,
            unit.scale,
            seed=unit.seed,
            tracer=tracer,
            collector=collector,
            profiler=profiler,
            faults=unit.faults,
            health=health,
            backend=unit.backend,
            warm=warm,
        ).to_payload()
    if unit.mode == "closed":
        return run_workload_closed_loop(
            unit.system,
            spec,
            unit.scale,
            queue_depth=unit.queue_depth,
            seed=unit.seed,
            tracer=tracer,
            collector=collector,
            profiler=profiler,
            faults=unit.faults,
            health=health,
            backend=unit.backend,
            warm=warm,
        ).to_payload()
    return run_capacity_phase_pair(
        unit.system,
        spec,
        unit.scale,
        seed=unit.seed,
        faults=unit.faults,
        warm=warm,
    )


class _WorkerFailure:
    """Picklable envelope for an exception raised inside a pool worker."""

    def __init__(self, exception: BaseException, details: str):
        self.exception = exception
        self.details = details


class _WarmOutcome:
    """A pool result plus what the worker did with its warm state.

    ``status`` is a ``snapshot_stats`` key: ``"hits"`` (restored from
    shared memory), or ``"fallbacks"`` (the segment was unusable and the
    unit preloaded cold — degraded wall-clock, identical results).
    """

    def __init__(self, payload, status: str):
        self.payload = payload
        self.status = status


def _pool_worker(unit: RunUnit, shm_ref: SharedSnapshotRef | None = None):
    try:
        warm = None
        status = None
        if shm_ref is not None:
            # Any attach problem (parent died and the segment is gone, a
            # checksum or schema mismatch) degrades to a cold preload —
            # a snapshot must never turn into a failed unit.
            try:
                warm = WarmHandle(state=attach_warm_state(shm_ref))
                status = "hits"
            except Exception as exc:
                status = "fallbacks"
                _log.warning(
                    "unit %s could not attach warm state %s (%s); "
                    "preloading cold",
                    unit.describe(),
                    shm_ref.name,
                    exc,
                )
        result = execute_unit(unit, warm=warm)
        if status is not None:
            return _WarmOutcome(result, status)
        return result
    except Exception as exc:
        details = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"unpicklable worker exception: {exc!r}")
        return _WorkerFailure(exc, details)


def _release_segments(segments) -> None:
    """Close and unlink parent-owned shared-memory segments (idempotent)."""
    for shm in segments:
        try:
            shm.close()
        except OSError:
            pass
        try:
            shm.unlink()
        except (OSError, FileNotFoundError):
            pass


class SweepExecutor:
    """Executes :class:`RunUnit` lists, inline or on a process pool.

    ``jobs=1`` (the default) runs every unit in-process, which keeps
    tracer / interval-collector support; ``jobs>1`` fans units out to a
    process pool.  Either way :meth:`map` returns results in submission
    order.

    Args:
        jobs: Worker count (1 = inline).
        progress: Per-completed-unit log callback.
        mp_context: Multiprocessing context (tests inject one).
        timeout_s: Per-unit wall-clock budget, measured from when the
            executor turns to that unit's result (units run concurrently,
            so time spent waiting on earlier units also covers later
            ones — the budget bounds the *extra* wait per unit).  A
            timeout kills the whole pool and re-runs the other in-flight
            units on a fresh one; determinism makes that free.  Pool
            mode only — an inline unit cannot be interrupted.
        max_retries: How many times a unit whose worker *crashed or hung*
            is retried (fresh pool, exponential backoff).  Deterministic
            unit exceptions are never retried.
        backoff_s: Base backoff.  Retry ``n`` sleeps a *full-jitter*
            delay: uniform in ``[0, min(backoff_cap_s,
            backoff_s * 2**(n-1)))``.  Jitter desynchronises the retry
            stampede when several sweeps share a machine that just
            OOM-killed their workers; the cap keeps deep retry budgets
            from sleeping for minutes.  ``0`` disables sleeping.
        backoff_cap_s: Ceiling on any single backoff delay.
        registry: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, total slept backoff rides the
            ``sweep_retry_backoff_seconds_total`` counter.
        keep_going: Instead of raising on the first failure, leave a
            :class:`SweepError` in the failed unit's result slot and
            finish the rest of the sweep.
        snapshots: Reuse warmed device state across units that share a
            warm key (see :func:`warm_key_for_unit`).  Inline, units
            draw from one in-process :class:`SnapshotStore`; pooled, the
            executor groups units by key, warms each group's state once
            in the parent, and fans it out through shared memory.  A
            pure wall-clock knob: results are byte-identical either way
            (pinned by ``tests/experiments/test_snapshot_parity.py``).
        snapshot_dir: Spill directory for warm states (implies
            ``snapshots``); snapshots then survive the process and are
            shared across invocations.

    After :meth:`map` returns, ``snapshot_stats`` holds the sweep's
    cache accounting: ``hits`` (units restored from a snapshot),
    ``misses`` (cold preloads, including the one per pooled group the
    parent performs) and ``fallbacks`` (corrupt/stale snapshots that
    degraded to a cold preload).
    """

    def __init__(
        self,
        jobs: int = 1,
        progress: ProgressFn | None = None,
        mp_context=None,
        timeout_s: float | None = None,
        max_retries: int = 0,
        backoff_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        keep_going: bool = False,
        snapshots: bool = False,
        snapshot_dir: str | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if backoff_cap_s <= 0:
            raise ValueError("backoff_cap_s must be positive")
        self.jobs = jobs
        self.progress = progress
        self._mp_context = mp_context
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        # Fixed-seed jitter: retry *timing* may vary run to run without
        # harm, but a seeded stream keeps tests and reruns repeatable.
        self._backoff_rng = random.Random(0x5EE9)
        self._backoff_total = (
            registry.counter(
                "sweep_retry_backoff_seconds_total",
                "seconds slept backing off before sweep-unit retries",
            ).unlabeled
            if registry is not None
            else None
        )
        self.keep_going = keep_going
        self.snapshot_dir = snapshot_dir
        self.snapshots = bool(snapshots or snapshot_dir)
        self.snapshot_stats = {"hits": 0, "misses": 0, "fallbacks": 0}

    def map(
        self,
        units: Sequence[RunUnit],
        tracer_factory: Callable[[RunUnit], Tracer | None] | None = None,
        collector_factory: Callable[[RunUnit], IntervalCollector | None] | None = None,
    ) -> list[RunResultPayload | CapacityCensus | SweepError]:
        units = list(units)
        for unit in units:
            if not isinstance(unit, RunUnit):
                raise TypeError(f"expected RunUnit, got {type(unit).__name__}")
        if not units:
            return []
        self.snapshot_stats = {"hits": 0, "misses": 0, "fallbacks": 0}
        if self.jobs == 1:
            return self._map_inline(units, tracer_factory, collector_factory)
        if tracer_factory is not None or collector_factory is not None:
            raise ValueError(
                "tracing / interval collection is inline-only; use jobs=1"
            )
        return self._map_pool(units)

    def _emit(
        self, done: int, total: int, unit: RunUnit, elapsed_s: float | None = None
    ) -> None:
        if self.progress is None:
            return
        timing = f" ({elapsed_s:.1f}s)" if elapsed_s is not None else ""
        self.progress(f"[{done}/{total}] {unit.describe()}{timing}")

    def _map_inline(self, units, tracer_factory, collector_factory):
        store = None
        if self.snapshots:
            store = SnapshotStore(
                capacity=_SNAPSHOT_LRU_CAPACITY, spill_dir=self.snapshot_dir
            )
        results = []
        total = len(units)
        for index, unit in enumerate(units):
            tracer = tracer_factory(unit) if tracer_factory else None
            collector = collector_factory(unit) if collector_factory else None
            warm = None
            if store is not None:
                warm = WarmHandle(store=store, key=warm_key_for_unit(unit))
            started = time.perf_counter()
            try:
                results.append(
                    execute_unit(
                        unit, tracer=tracer, collector=collector, warm=warm
                    )
                )
            except Exception as exc:
                error = SweepError(unit, str(exc), traceback.format_exc())
                if not self.keep_going:
                    raise error from exc
                error.__cause__ = exc
                results.append(error)
            else:
                if warm is not None and warm.outcome is not None:
                    key = "hits" if warm.outcome == "hit" else "misses"
                    self.snapshot_stats[key] += 1
            self._emit(index + 1, total, unit, time.perf_counter() - started)
        if store is not None:
            self.snapshot_stats["fallbacks"] += store.stats.fallbacks
        return results

    def _publish_group_snapshots(self, units):
        """Warm one state per shared key and publish it to shared memory.

        Units are grouped by warm key; every group of two or more (and,
        when a spill directory is configured, singletons too — their
        state may already be on disk, or will pay off next invocation)
        gets one parent-side warm state: pulled from the store when
        cached, otherwise preloaded cold exactly once.  Each state is
        serialized into a single ``multiprocessing.shared_memory``
        segment that every worker of the group attaches.

        Returns:
            ``(refs, segments)`` — per-unit-index
            :class:`SharedSnapshotRef` pointers, and the parent-owned
            segments the caller must close + unlink when the fan-out
            (including retry rounds) is over.
        """
        groups: dict[str, list[int]] = {}
        for index, unit in enumerate(units):
            groups.setdefault(warm_key_for_unit(unit), []).append(index)
        store = SnapshotStore(
            capacity=_SNAPSHOT_LRU_CAPACITY, spill_dir=self.snapshot_dir
        )
        refs: dict[int, SharedSnapshotRef] = {}
        segments = []
        try:
            for key, members in groups.items():
                if len(members) < 2 and self.snapshot_dir is None:
                    continue  # nothing shares it; the worker preloads cold
                unit = units[members[0]]
                warm = store.get(key)
                if warm is None:
                    warm = prepare_warm_state(
                        unit.system,
                        unit.resolve_workload(),
                        unit.scale,
                        seed=unit.seed,
                        backend=unit.backend,
                    )
                    store.put(key, warm)
                    self.snapshot_stats["misses"] += 1
                ref, shm = publish_warm_state(warm)
                segments.append(shm)
                for index in members:
                    refs[index] = ref
        except BaseException:
            _release_segments(segments)
            raise
        self.snapshot_stats["fallbacks"] += store.stats.fallbacks
        return refs, segments

    def _map_pool(self, units):
        """Round-based pool execution with crash/timeout containment.

        Each round submits every unresolved unit to a fresh
        ``ProcessPoolExecutor`` and waits on futures in submission order.
        A worker crash or unit timeout breaks the pool: the culprit's
        retry budget is charged, already-finished results are salvaged,
        the pool is killed, and the next round re-runs the remainder.
        Unit determinism (each worker rebuilds its simulator from the
        unit description alone) is what makes re-running units safe.

        With snapshots enabled, units sharing a warm key restore from
        one parent-published shared-memory segment instead of each
        repeating the preload (see :meth:`_publish_group_snapshots`).
        Segments outlive retry rounds — a re-run unit re-attaches the
        same state — and are released in a ``finally``.
        """
        context = self._mp_context or multiprocessing.get_context()
        total = len(units)
        results: list = [None] * total
        done = [False] * total
        attempts = [0] * total
        completed = 0
        refs: dict[int, SharedSnapshotRef] = {}
        segments: list = []
        if self.snapshots:
            refs, segments = self._publish_group_snapshots(units)

        def settle(index: int, outcome) -> None:
            nonlocal completed
            if isinstance(outcome, _WarmOutcome):
                self.snapshot_stats[outcome.status] += 1
                outcome = outcome.payload
            elif self.snapshots and not isinstance(outcome, _WorkerFailure):
                # No segment was fanned out for this unit: cold preload.
                self.snapshot_stats["misses"] += 1
            if isinstance(outcome, _WorkerFailure):
                # Deterministic unit exception: never retried.
                error = SweepError(
                    units[index], str(outcome.exception), outcome.details
                )
                if not self.keep_going:
                    raise error from outcome.exception
                error.__cause__ = outcome.exception
                results[index] = error
            else:
                results[index] = outcome
            done[index] = True
            completed += 1
            self._emit(completed, total, units[index])

        try:
            while completed < total:
                pending = [i for i in range(total) if not done[i]]
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(pending)), mp_context=context
                )
                crashed: tuple[int, str] | None = None
                try:
                    futures = {
                        i: executor.submit(_pool_worker, units[i], refs.get(i))
                        for i in pending
                    }
                    for i in pending:
                        try:
                            outcome = futures[i].result(timeout=self.timeout_s)
                        except concurrent.futures.TimeoutError:
                            crashed = (
                                i, f"timed out after {self.timeout_s:g}s"
                            )
                            break
                        except BrokenProcessPool:
                            crashed = (i, "worker process crashed (pool broken)")
                            break
                        settle(i, outcome)
                    if crashed is not None:
                        # Salvage units that finished before the break: their
                        # futures already hold results and cost nothing.
                        for j in pending:
                            if done[j] or j == crashed[0]:
                                continue
                            future = futures[j]
                            if not future.done() or future.cancelled():
                                continue
                            try:
                                outcome = future.result(timeout=0)
                            except Exception:
                                continue
                            if isinstance(outcome, _WorkerFailure):
                                continue  # deterministic; re-settles next round
                            settle(j, outcome)
                finally:
                    if crashed is not None:
                        # A hung or crashed worker would make a graceful
                        # shutdown block; cancel what is queued and terminate
                        # whatever processes remain.
                        executor.shutdown(wait=False, cancel_futures=True)
                        procs = getattr(executor, "_processes", None) or {}
                        for proc in list(procs.values()):
                            proc.terminate()
                    else:
                        executor.shutdown(wait=True, cancel_futures=True)
                if crashed is None:
                    continue
                index, reason = crashed
                attempts[index] += 1
                if attempts[index] > self.max_retries:
                    error = SweepError(
                        units[index],
                        reason,
                        f"gave up after {attempts[index]} attempt(s)",
                    )
                    if not self.keep_going:
                        raise error
                    results[index] = error
                    done[index] = True
                    completed += 1
                    self._emit(completed, total, units[index])
                elif self.backoff_s > 0:
                    delay = self._retry_delay(attempts[index])
                    if delay > 0:
                        time.sleep(delay)
        finally:
            _release_segments(segments)
        return results

    def _retry_delay(self, attempt: int) -> float:
        """Full-jitter delay for retry ``attempt`` (1-based), metered.

        Uniform in ``[0, min(backoff_cap_s, backoff_s * 2**(attempt-1)))``
        — the AWS "full jitter" scheme: the *ceiling* grows
        exponentially, the draw spreads concurrent retriers out over it.
        """
        ceiling = min(
            self.backoff_cap_s, self.backoff_s * (2 ** (attempt - 1))
        )
        delay = ceiling * self._backoff_rng.random()
        if self._backoff_total is not None:
            self._backoff_total.inc(delay)
        return delay


def execute_units(
    units: Sequence[RunUnit],
    jobs: int = 1,
    progress: ProgressFn | None = None,
    timeout_s: float | None = None,
    max_retries: int = 0,
    backoff_s: float = 0.5,
    backoff_cap_s: float = 30.0,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
    registry: MetricsRegistry | None = None,
) -> list[RunResultPayload | CapacityCensus | SweepError]:
    """One-shot convenience wrapper around :class:`SweepExecutor`.

    Pass a dict as ``snapshot_stats`` to receive the sweep's warm-state
    cache accounting (``hits`` / ``misses`` / ``fallbacks``) — artifact
    runners forward it into the manifest's ``execution`` block.
    """
    executor = SweepExecutor(
        jobs=jobs,
        progress=progress,
        timeout_s=timeout_s,
        max_retries=max_retries,
        backoff_s=backoff_s,
        backoff_cap_s=backoff_cap_s,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        registry=registry,
    )
    results = executor.map(units)
    if snapshot_stats is not None:
        snapshot_stats.update(executor.snapshot_stats)
    return results


def failed_workloads(outcomes: Sequence) -> set[str]:
    """Workload names with at least one :class:`SweepError` outcome."""
    return {
        outcome.unit.workload_name
        for outcome in outcomes
        if isinstance(outcome, SweepError)
    }


def prune_failed(
    names: Sequence[str],
    units: Sequence[RunUnit],
    outcomes: Sequence,
    progress: ProgressFn | None = None,
):
    """Drop every workload group touched by a failed unit (keep-going).

    Artifact runners build their unit lists grouped per workload, and
    their post-processing consumes fixed-size groups (baseline/variant
    pairs, error-rate fans).  When one unit of a group failed the whole
    group is unusable, so pruning happens at workload granularity: the
    surviving ``(names, units, outcomes)`` triple keeps its grouping
    intact and downstream slicing logic works unchanged.

    Returns:
        ``(kept_names, kept_units, kept_outcomes, errors)``.
    """
    errors = [o for o in outcomes if isinstance(o, SweepError)]
    if not errors:
        return list(names), list(units), list(outcomes), []
    failed = {error.unit.workload_name for error in errors}
    if progress is not None:
        for name in sorted(failed):
            progress(f"keep-going: dropping workload {name!r} (unit failed)")
    kept_names = [name for name in names if name not in failed]
    kept_units = [u for u in units if u.workload_name not in failed]
    kept_outcomes = [
        o for u, o in zip(units, outcomes) if u.workload_name not in failed
    ]
    return kept_names, kept_units, kept_outcomes, errors
