"""Parallel sweep execution: process-pool fan-out over independent runs.

Every reproduced figure and table is a sweep of fully independent
``(system, workload, scale, seed)`` simulations — ``run_fig8`` alone is
11 workloads x 7 systems.  This module turns such a sweep into a list of
declarative :class:`RunUnit` descriptions and executes them on a
``multiprocessing`` pool, with results returned **in submission order**.

The determinism contract
------------------------

Each unit carries its own seed and each worker constructs its own
simulator from scratch, so a unit's result is a pure function of the
unit description.  Parallel execution therefore produces *exactly* the
same numbers as sequential execution — pinned by
``tests/experiments/test_parallel_parity.py`` against the sequential
golden file — and ``jobs`` is a pure wall-clock knob that is safe to
flip on any experiment.

Only compact :class:`~repro.experiments.runner.RunResultPayload` objects
(or :class:`~repro.experiments.runner.CapacityCensus` for capacity-mode
units) cross the process boundary; raw metrics with per-sample lists
never do.  Tracing and interval collection are *inline-only* (``jobs=1``,
the default): a tracer is an open file plus callbacks, neither of which
can usefully cross a fork, and interleaving events from concurrent runs
would destroy the per-run ordering the trace inspector relies on.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from ..obs.interval import IntervalCollector
from ..obs.profiler import SimProfiler
from ..obs.tracer import Tracer
from ..workloads.msr import workload as _catalog_workload
from ..workloads.synthetic import WorkloadSpec
from .config import RunScale
from .runner import (
    CapacityCensus,
    RunResultPayload,
    run_capacity_phase_pair,
    run_workload,
    run_workload_closed_loop,
)
from .systems import SystemSpec

__all__ = [
    "RunUnit",
    "SweepError",
    "SweepExecutor",
    "execute_unit",
    "execute_units",
]

#: Log-style progress callback: called once per completed unit.
ProgressFn = Callable[[str], None]

_MODES = ("open", "closed", "capacity")


@dataclass(frozen=True)
class RunUnit:
    """One independent simulation of a sweep, picklable by construction.

    Attributes:
        system: The system spec to simulate.
        workload: A catalog workload name (resolved worker-side) or an
            explicit :class:`WorkloadSpec` for non-catalog workloads.
        scale: Run scale (scaling of the spec happens in the worker).
        seed: The unit's own RNG seed — determinism is per-unit.
        mode: ``"open"`` (trace replay), ``"closed"`` (fixed queue
            depth, Fig. 10) or ``"capacity"`` (read-then-write phase
            pair, Sec. III-C).
        queue_depth: Outstanding requests for ``"closed"`` units.
        profile: Attach a :class:`~repro.obs.profiler.SimProfiler` to
            the run; its aggregate rides back on the payload's
            ``profile`` field.  Unlike tracing, profiling works at any
            job count — the profiler is built worker-side (aggregates
            only, no slice events) and only its plain-dict aggregate
            crosses the process boundary.
    """

    system: SystemSpec
    workload: str | WorkloadSpec
    scale: RunScale
    seed: int = 11
    mode: str = "open"
    queue_depth: int = 32
    profile: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; choose one of {_MODES}"
            )

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    def resolve_workload(self) -> WorkloadSpec:
        if isinstance(self.workload, str):
            return _catalog_workload(self.workload)
        return self.workload

    def describe(self) -> str:
        return f"{self.system.name}/{self.workload_name}"


class SweepError(RuntimeError):
    """A sweep unit failed; ``unit`` identifies which one.

    The worker's original exception is chained as ``__cause__`` and its
    formatted worker-side traceback is kept in ``details``.
    """

    def __init__(self, unit: RunUnit, message: str, details: str = ""):
        super().__init__(
            f"sweep unit {unit.describe()} "
            f"(mode={unit.mode}, seed={unit.seed}) failed: {message}"
        )
        self.unit = unit
        self.details = details


def execute_unit(
    unit: RunUnit,
    tracer: Tracer | None = None,
    collector: IntervalCollector | None = None,
) -> RunResultPayload | CapacityCensus:
    """Run one unit in the current process (worker body and inline path)."""
    spec = unit.resolve_workload()
    # Worker-side profiler: constructed here so nothing live crosses the
    # fork; aggregate-only (no slice events) keeps the payload compact.
    profiler = SimProfiler(keep_events=False) if unit.profile else None
    if unit.mode == "open":
        return run_workload(
            unit.system,
            spec,
            unit.scale,
            seed=unit.seed,
            tracer=tracer,
            collector=collector,
            profiler=profiler,
        ).to_payload()
    if unit.mode == "closed":
        return run_workload_closed_loop(
            unit.system,
            spec,
            unit.scale,
            queue_depth=unit.queue_depth,
            seed=unit.seed,
            tracer=tracer,
            collector=collector,
            profiler=profiler,
        ).to_payload()
    return run_capacity_phase_pair(unit.system, spec, unit.scale, seed=unit.seed)


class _WorkerFailure:
    """Picklable envelope for an exception raised inside a pool worker."""

    def __init__(self, exception: BaseException, details: str):
        self.exception = exception
        self.details = details


def _pool_worker(unit: RunUnit):
    try:
        return execute_unit(unit)
    except Exception as exc:
        details = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = RuntimeError(f"unpicklable worker exception: {exc!r}")
        return _WorkerFailure(exc, details)


class SweepExecutor:
    """Executes :class:`RunUnit` lists, inline or on a process pool.

    ``jobs=1`` (the default) runs every unit in-process, which keeps
    tracer / interval-collector support; ``jobs>1`` fans units out to a
    ``multiprocessing`` pool.  Either way :meth:`map` returns results in
    submission order and raises :class:`SweepError` on the first failed
    unit after shutting the pool down cleanly.
    """

    def __init__(
        self,
        jobs: int = 1,
        progress: ProgressFn | None = None,
        mp_context=None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.progress = progress
        self._mp_context = mp_context

    def map(
        self,
        units: Sequence[RunUnit],
        tracer_factory: Callable[[RunUnit], Tracer | None] | None = None,
        collector_factory: Callable[[RunUnit], IntervalCollector | None] | None = None,
    ) -> list[RunResultPayload | CapacityCensus]:
        units = list(units)
        for unit in units:
            if not isinstance(unit, RunUnit):
                raise TypeError(f"expected RunUnit, got {type(unit).__name__}")
        if not units:
            return []
        if self.jobs == 1:
            return self._map_inline(units, tracer_factory, collector_factory)
        if tracer_factory is not None or collector_factory is not None:
            raise ValueError(
                "tracing / interval collection is inline-only; use jobs=1"
            )
        return self._map_pool(units)

    def _emit(
        self, done: int, total: int, unit: RunUnit, elapsed_s: float | None = None
    ) -> None:
        if self.progress is None:
            return
        timing = f" ({elapsed_s:.1f}s)" if elapsed_s is not None else ""
        self.progress(f"[{done}/{total}] {unit.describe()}{timing}")

    def _map_inline(self, units, tracer_factory, collector_factory):
        results = []
        total = len(units)
        for index, unit in enumerate(units):
            tracer = tracer_factory(unit) if tracer_factory else None
            collector = collector_factory(unit) if collector_factory else None
            started = time.perf_counter()
            try:
                results.append(
                    execute_unit(unit, tracer=tracer, collector=collector)
                )
            except Exception as exc:
                raise SweepError(unit, str(exc)) from exc
            self._emit(index + 1, total, unit, time.perf_counter() - started)
        return results

    def _map_pool(self, units):
        context = self._mp_context or multiprocessing.get_context()
        pool = context.Pool(processes=min(self.jobs, len(units)))
        results = []
        total = len(units)
        try:
            # imap yields in submission order, which is also the order
            # callers index results by; chunksize=1 keeps long and short
            # units balanced across workers.
            for index, outcome in enumerate(
                pool.imap(_pool_worker, units, chunksize=1)
            ):
                unit = units[index]
                if isinstance(outcome, _WorkerFailure):
                    raise SweepError(
                        unit, str(outcome.exception), outcome.details
                    ) from outcome.exception
                results.append(outcome)
                self._emit(index + 1, total, unit)
            pool.close()
            pool.join()
        finally:
            # Idempotent after a clean close/join; on the error path this
            # reaps the workers so no orphan processes outlive the sweep.
            pool.terminate()
            pool.join()
        return results


def execute_units(
    units: Sequence[RunUnit],
    jobs: int = 1,
    progress: ProgressFn | None = None,
) -> list[RunResultPayload | CapacityCensus]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(jobs=jobs, progress=progress).map(units)
