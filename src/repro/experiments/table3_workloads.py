"""Table III — workload characteristics, paper vs synthetic clones.

For every catalog workload: read-request ratio, mean read size (KB),
read-data ratio (all from the generated trace), and the fraction of MSB
reads with invalid lower pages (measured on the baseline system).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_REFERENCE, TABLE3_WORKLOADS
from ..workloads.synthetic import generate_workload
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .systems import baseline

__all__ = ["Table3Row", "Table3Result", "run_table3", "format_table3"]


@dataclass(frozen=True)
class Table3Row:
    """Measured vs paper characteristics for one workload."""

    workload: str
    read_ratio_pct: float
    read_size_kb: float
    read_data_pct: float
    msb_invalid_pct: float
    paper: tuple[float, float, float, float]


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)


def run_table3(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Table3Result:
    """Measure the Table III columns for the synthetic clones."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = [RunUnit(baseline(), name, scale, seed=seed) for name in names]
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Table3Result()
    for name, payload in zip(names, payloads):
        # Trace shape statistics come from the (deterministic) generator,
        # not the simulation, so they are recomputed here in the parent.
        spec = TABLE3_WORKLOADS[name].scaled(
            scale.num_requests, scale.footprint_pages
        )
        trace = generate_workload(spec).trace
        result.rows.append(
            Table3Row(
                workload=name,
                read_ratio_pct=trace.read_ratio() * 100,
                read_size_kb=trace.mean_read_size_kb(),
                read_data_pct=trace.read_data_ratio() * 100,
                msb_invalid_pct=payload.read_mix.msb_invalid_fraction(2) * 100,
                paper=TABLE3_REFERENCE[name],
            )
        )
    return result


def format_table3(result: Table3Result) -> str:
    headers = [
        "workload",
        "read% (paper)",
        "read KB (paper)",
        "read-data% (paper)",
        "MSB-inv% (paper)",
    ]
    rows = [
        [
            r.workload,
            f"{r.read_ratio_pct:.1f} ({r.paper[0]:.1f})",
            f"{r.read_size_kb:.1f} ({r.paper[1]:.1f})",
            f"{r.read_data_pct:.1f} ({r.paper[2]:.1f})",
            f"{r.msb_invalid_pct:.1f} ({r.paper[3]:.1f})",
        ]
        for r in result.rows
    ]
    return ascii_table(headers, rows, title="Table III: workload characteristics")
