"""Table IV — voltage-adjustment overhead during the IDA-modified refresh.

Paper result (192-page / 64-WL blocks, IDA-E20): a refresh target block
holds ~113 valid pages on average (98-130); the modified refresh adds
~58 page reads (the post-adjustment integrity check of the ~58 kept,
reprogrammed pages — about half the valid pages) and ~11-12 page writes
(the 20% of kept pages the adjustment corrupted).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .systems import ida

__all__ = ["Table4Row", "Table4Result", "run_table4", "format_table4"]


@dataclass(frozen=True)
class Table4Row:
    """Average refresh accounting for one workload (IDA-E20)."""

    workload: str
    pages_per_block: int
    avg_valid_pages: float
    avg_extra_reads: float
    avg_extra_writes: float
    refreshes: int


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)


def run_table4(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Table4Result:
    """Measure per-block refresh overheads under IDA-E{error_rate}."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = [RunUnit(ida(error_rate), name, scale, seed=seed) for name in names]
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Table4Result()
    for name, payload in zip(names, payloads):
        # Only refreshes that actually applied IDA carry adjustment
        # overhead; full-move reclaims of old IDA blocks are the baseline
        # flow and add nothing (the paper's Table IV is per modified
        # refresh).  The payload pre-aggregates exactly that subset.
        refresh = payload.refresh
        count = refresh["ida_refreshes"]
        if count == 0:
            result.rows.append(Table4Row(name, 192, 0.0, 0.0, 0.0, 0))
            continue
        result.rows.append(
            Table4Row(
                workload=name,
                pages_per_block=192,
                avg_valid_pages=refresh["ida_valid_pages"] / count,
                avg_extra_reads=refresh["ida_extra_reads"] / count,
                avg_extra_writes=refresh["ida_extra_writes"] / count,
                refreshes=count,
            )
        )
    return result


def format_table4(result: Table4Result) -> str:
    headers = [
        "workload",
        "valid pages / total",
        "extra reads",
        "extra writes",
        "#IDA refreshes",
    ]
    rows = [
        [
            r.workload,
            f"{r.avg_valid_pages:.1f} / {r.pages_per_block}",
            f"{r.avg_extra_reads:.1f}",
            f"{r.avg_extra_writes:.1f}",
            str(r.refreshes),
        ]
        for r in result.rows
    ]
    return ascii_table(
        headers,
        rows,
        title="Table IV: refresh overhead per block, IDA-E20 "
        "(paper avg: 113/192 valid, ~58 extra reads, ~11 extra writes)",
    )
