"""Experiment configuration: devices (Table II) and run scales.

A :class:`DeviceConfig` bundles the geometry, timing and coding of one
device family; :class:`RunScale` sets how large a simulation is (request
count, footprint, refresh cycles).  The paper's full 512 GB device is
expressible but experiments default to a proportionally scaled device so
the Python simulator finishes in seconds per run — every effect measured
is per-block / per-queue, so the scaling leaves the comparisons intact
(see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.coding import GrayCoding
from ..core.mlc import conventional_mlc
from ..core.qlc import conventional_qlc
from ..core.tlc import conventional_tlc, tlc_232
from ..flash.geometry import Geometry
from ..flash.timing import TimingSpec

__all__ = ["DeviceConfig", "RunScale", "device"]


@dataclass(frozen=True)
class DeviceConfig:
    """One device family: geometry + timing + coding.

    Attributes:
        name: Family identifier ("tlc", "mlc", "qlc", "tlc232").
        geometry: Topology (bits/cell must match the coding).
        timing: Operation latencies.
        coding: Conventional cell coding.
    """

    name: str
    geometry: Geometry
    timing: TimingSpec
    coding: GrayCoding

    def __post_init__(self) -> None:
        if self.coding.bits != self.geometry.bits_per_cell:
            raise ValueError(
                f"device {self.name!r}: coding bits {self.coding.bits} != "
                f"geometry bits {self.geometry.bits_per_cell}"
            )

    def with_dtr(self, dtr_us: float) -> "DeviceConfig":
        """Same device with a different read-latency step (Fig. 9)."""
        return replace(self, timing=self.timing.with_dtr(dtr_us))

    def with_blocks_per_plane(self, blocks: int) -> "DeviceConfig":
        return replace(self, geometry=self.geometry.scaled(blocks))


def device(name: str, blocks_per_plane: int = 64) -> DeviceConfig:
    """Build a named device family at the given scale.

    ``"tlc"`` is the Table II baseline (50/100/150 us reads, 192-page
    blocks); ``"mlc"`` the Sec. V-G device (65/115 us, 128-page blocks);
    ``"qlc"`` the projected future-work device (256-page blocks);
    ``"tlc232"`` the vendor-alternate 2-3-2 TLC coding on Table II timing.
    """
    base = Geometry()
    if name == "tlc":
        geometry = replace(base, blocks_per_plane=blocks_per_plane)
        return DeviceConfig("tlc", geometry, TimingSpec.tlc_table2(), conventional_tlc())
    if name == "tlc232":
        geometry = replace(base, blocks_per_plane=blocks_per_plane)
        return DeviceConfig("tlc232", geometry, TimingSpec.tlc_table2(), tlc_232())
    if name == "mlc":
        geometry = replace(
            base,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=128,
            bits_per_cell=2,
        )
        return DeviceConfig("mlc", geometry, TimingSpec.mlc_spec(), conventional_mlc())
    if name == "qlc":
        geometry = replace(
            base,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=256,
            bits_per_cell=4,
        )
        return DeviceConfig("qlc", geometry, TimingSpec.qlc_spec(), conventional_qlc())
    raise ValueError(f"unknown device {name!r}; choose tlc/tlc232/mlc/qlc")


@dataclass(frozen=True)
class RunScale:
    """How large one simulation run is.

    The footprint must be several blocks *per plane* for refresh (which
    targets full blocks) to have anything to work on — the paper's traces
    occupy 20-110 GB of a 512 GB device, hundreds of blocks per plane.

    Attributes:
        num_requests: Timed requests per workload.
        footprint_pages: Logical footprint (pages).
        blocks_per_plane: Device scale.
        refresh_cycles: Refresh periods within the trace duration (the
            paper refreshes every 3 days to 3 months over multi-day
            traces; we keep the same cycles-per-trace ratio).
        gc_low_watermark / gc_target_free: GC thresholds.
        channels / chips_per_channel / dies_per_chip / planes_per_die:
            Topology overrides; ``None`` keeps the Table II value.  Quick
            test scales shrink the plane count so a small footprint still
            fills whole blocks.
    """

    num_requests: int = 6000
    footprint_pages: int = 45_000
    blocks_per_plane: int = 64
    refresh_cycles: float = 3.0
    gc_low_watermark: int = 2
    gc_target_free: int = 4
    channels: int | None = None
    chips_per_channel: int | None = None
    dies_per_chip: int | None = None
    planes_per_die: int | None = None

    def __post_init__(self) -> None:
        if self.refresh_cycles <= 0:
            raise ValueError("refresh_cycles must be positive")

    def apply_topology(self, geometry: Geometry) -> Geometry:
        """Geometry with this scale's topology overrides applied."""
        from dataclasses import replace as _replace

        kwargs = {"blocks_per_plane": self.blocks_per_plane}
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
        ):
            value = getattr(self, name)
            if value is not None:
                kwargs[name] = value
        return _replace(geometry, **kwargs)

    @classmethod
    def tiny(cls) -> "RunScale":
        """Smallest viable scale: CI smoke runs and traced examples.

        Four planes of 12 blocks give refresh and GC whole blocks to
        work on while a full run (preload + trace + drain) stays well
        under a second.
        """
        return cls(
            num_requests=400,
            footprint_pages=2500,
            blocks_per_plane=12,
            channels=1,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
        )

    @classmethod
    def quick(cls) -> "RunScale":
        """Small scale for unit/integration tests (sub-second runs)."""
        return cls(
            num_requests=1200,
            footprint_pages=6000,
            blocks_per_plane=16,
            channels=2,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
        )

    @classmethod
    def bench(cls) -> "RunScale":
        """Medium scale for the benchmark harness (full Table II topology)."""
        return cls(num_requests=5000, footprint_pages=45_000, blocks_per_plane=48)

    @classmethod
    def full(cls) -> "RunScale":
        """The paper's full 512 GB device (Table II, 350,208 blocks).

        4 channels x 4 chips x 2 dies x 2 planes x 5472 blocks of 192
        pages at 8 KiB — no topology overrides.  The footprint matches
        the paper's trace occupancy band (~31 GB of the 512 GB device).
        Feasible in bounded memory because device state is columnar
        (~270 MB for the whole device, see ``repro.flash.state``) and
        preload collapses into batched segments; pair with the batch
        backend for tolerable wall-clock.
        """
        return cls(
            num_requests=20_000,
            footprint_pages=4_000_000,
            blocks_per_plane=5472,
            gc_low_watermark=8,
            gc_target_free=16,
        )
