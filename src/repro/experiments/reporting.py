"""Plain-text tables for the benchmark harness and the CLI."""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_table", "format_pct"]


def format_pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def fmt(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)
