"""Run reporting: plain-text tables and structured run manifests.

Two audiences share this module.  The benchmark harness and CLI want
aligned ASCII tables (:func:`ascii_table`); experiment automation wants a
*machine-readable artifact per run* — a JSON manifest bundling the exact
configuration (hashed for cache keys and regression bisection), the seed,
the end-of-run metrics, and an optional interval time-series.  Anything
that shows up in a paper figure should be reconstructible from the
manifest alone.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..obs.tracer import SCHEMA_VERSION
from ..sim.metrics import SimMetrics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.interval import IntervalCollector
    from ..sim.metrics import ReadMixCounters
    from .runner import RunResult, RunResultPayload

__all__ = [
    "ascii_table",
    "format_pct",
    "jsonable",
    "config_hash",
    "read_mix_dict",
    "counters_dict",
    "metrics_summary",
    "build_run_manifest",
    "manifest_for_run",
    "manifest_for_payload",
    "write_run_manifest",
]


def format_pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render a simple aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]

    def fmt(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(fmt(row) for row in cells[1:])
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
def jsonable(obj: object) -> object:
    """Recursively convert dataclasses / enums / tuples to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    return obj


def config_hash(config: dict) -> str:
    """Short stable hash of a JSON-able config dict.

    Two runs with equal hashes ran the same (system, workload, scale,
    seed) — the key experiment caches and regression bisection group by.
    """
    canonical = json.dumps(jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def read_mix_dict(mix: "ReadMixCounters") -> dict:
    """One run's :class:`ReadMixCounters` as a JSON-ready dict."""
    return {
        "total": mix.total,
        "by_type": {str(bit): count for bit, count in sorted(mix.by_type.items())},
        "csb_with_invalid_lsb": mix.csb_with_invalid_lsb,
        "msb_with_invalid_lower": mix.msb_with_invalid_lower,
        "ida_fast_reads": mix.ida_fast_reads,
    }


def counters_dict(metrics: SimMetrics) -> dict:
    """The cumulative event counters of one run, JSON-ready."""
    return {
        "gc_invocations": metrics.gc_invocations,
        "gc_page_moves": metrics.gc_page_moves,
        "block_erases": metrics.block_erases,
        "refresh_invocations": metrics.refresh_invocations,
        "refresh_page_moves": metrics.refresh_page_moves,
        "refresh_adjusted_wordlines": metrics.refresh_adjusted_wordlines,
        "refresh_reprogrammed_pages": metrics.refresh_reprogrammed_pages,
        "refresh_corrupted_pages": metrics.refresh_corrupted_pages,
        "refresh_extra_reads": metrics.refresh_extra_reads,
        "read_retries": metrics.read_retries,
        "unmapped_reads": metrics.unmapped_reads,
        "phys_ops_dispatched": metrics.phys_ops_dispatched,
        "program_failures": metrics.program_failures,
        "erase_failures": metrics.erase_failures,
        "grown_bad_blocks": metrics.grown_bad_blocks,
        "uncorrectable_reads": metrics.uncorrectable_reads,
        "read_reclaims": metrics.read_reclaims,
        "torn_adjust_recoveries": metrics.torn_adjust_recoveries,
        "die_failures": metrics.die_failures,
        "fault_page_moves": metrics.fault_page_moves,
    }


def metrics_summary(metrics: SimMetrics) -> dict:
    """One run's :class:`SimMetrics` as a JSON-ready summary."""
    return {
        "read_response": metrics.read_response.summary(),
        "write_response": metrics.write_response.summary(),
        "throughput_mb_s": metrics.throughput_mb_s(),
        "read_throughput_mb_s": metrics.read_throughput_mb_s(),
        "elapsed_us": metrics.elapsed_us,
        "bytes_read": metrics.bytes_read,
        "bytes_written": metrics.bytes_written,
        "read_mix": read_mix_dict(metrics.read_mix),
        "counters": counters_dict(metrics),
    }


def build_run_manifest(
    config: dict,
    metrics: SimMetrics,
    *,
    utilisation: dict | None = None,
    queue_wait: dict | None = None,
    collector: "IntervalCollector | None" = None,
    trace_path: str | Path | None = None,
    profile: dict | None = None,
    faults: dict | None = None,
    health: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble a run manifest from its parts.

    ``config`` is whatever identifies the run (system, workload, scale,
    seed, trace file, ...); it is hashed verbatim.  Use
    :func:`manifest_for_run` when you have a full :class:`RunResult`.
    """
    return _assemble_manifest(
        config,
        metrics_summary(metrics),
        utilisation=utilisation,
        queue_wait=queue_wait,
        collector=collector,
        trace_path=trace_path,
        profile=profile,
        faults=faults,
        health=health,
        extra=extra,
    )


def _assemble_manifest(
    config: dict,
    summary: dict,
    *,
    utilisation: dict | None = None,
    queue_wait: dict | None = None,
    collector: "IntervalCollector | None" = None,
    trace_path: str | Path | None = None,
    profile: dict | None = None,
    faults: dict | None = None,
    health: dict | None = None,
    extra: dict | None = None,
) -> dict:
    manifest: dict = {
        "kind": "run_manifest",
        "schema": SCHEMA_VERSION,
        # Alias for ``schema``, spelled the way external manifest
        # consumers (and the JSON inspector) expect the field.  Both
        # keys always carry the same value.
        "schema_version": SCHEMA_VERSION,
        "config": jsonable(config),
        "config_hash": config_hash(config),
        "metrics": summary,
    }
    if utilisation is not None:
        manifest["utilisation"] = jsonable(utilisation)
    if queue_wait is not None:
        manifest["queue_wait"] = jsonable(queue_wait)
    if profile is not None:
        # Only profiled runs carry the key: unprofiled manifests stay
        # byte-identical to pre-profiler ones.
        manifest["profile"] = jsonable(profile)
    if faults is not None:
        # Same contract: only fault-injected runs carry the key.
        manifest["faults"] = jsonable(faults)
    if health is not None:
        # And again: only health-monitored runs carry the key.
        manifest["health"] = jsonable(health)
    if collector is not None:
        manifest["time_series"] = {
            "summary": collector.summary(),
            "intervals": collector.time_series(),
        }
    if trace_path is not None:
        manifest["trace_path"] = str(trace_path)
    if extra:
        manifest.update(jsonable(extra))  # type: ignore[arg-type]
    return manifest


def _run_extras(refresh: dict, in_use_blocks: int, ida_blocks: int,
                jobs: int | None, backend: str | None = None,
                snapshots: dict | None = None) -> dict:
    extra = {
        "refresh": {
            "blocks_refreshed": refresh["blocks_refreshed"],
            "extra_reads": refresh["extra_reads"],
            "extra_writes": refresh["extra_writes"],
        },
        "blocks": {"in_use": in_use_blocks, "ida": ida_blocks},
    }
    if jobs is not None or backend is not None or snapshots is not None:
        # Recorded outside ``config`` on purpose: the executor's fan-out
        # width, the execution backend, and the warm-state snapshot
        # cache must not perturb the config hash (results are required
        # to be identical at any job count, on any backend, and with or
        # without snapshot reuse).
        execution: dict = {}
        if jobs is not None:
            execution["jobs"] = jobs
        if backend is not None:
            from ..sim.accel import accel_active

            execution["backend"] = backend
            execution["numba_active"] = accel_active()
        if snapshots is not None:
            execution["snapshots"] = dict(snapshots)
        extra["execution"] = execution
    return extra


def manifest_for_run(
    result: "RunResult",
    *,
    collector: "IntervalCollector | None" = None,
    trace_path: str | Path | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    snapshots: dict | None = None,
) -> dict:
    """Manifest for one :class:`~repro.experiments.runner.RunResult`."""
    config = {
        "system": jsonable(result.system),
        "workload": jsonable(result.workload),
        "scale": jsonable(result.scale) if result.scale is not None else None,
        "seed": result.seed,
    }
    if result.faults is not None:
        # The plan is part of the run's identity (it changes the
        # numbers), so it joins the hashed config; the fired events are
        # observations and ride outside it.
        config["faults"] = result.faults.get("plan")
    refresh = {
        "blocks_refreshed": len(result.refresh_reports),
        "extra_reads": sum(r.extra_reads for r in result.refresh_reports),
        "extra_writes": sum(r.extra_writes for r in result.refresh_reports),
    }
    return _assemble_manifest(
        config,
        metrics_summary(result.metrics),
        utilisation=result.utilisation or None,
        queue_wait=result.queue_wait or None,
        collector=collector,
        trace_path=trace_path,
        profile=result.profile,
        faults=result.faults,
        health=result.health,
        extra=_run_extras(
            refresh, result.in_use_blocks, result.ida_blocks, jobs, backend,
            snapshots,
        ),
    )


def manifest_for_payload(
    payload: "RunResultPayload",
    *,
    collector: "IntervalCollector | None" = None,
    trace_path: str | Path | None = None,
    jobs: int | None = None,
    backend: str | None = None,
    snapshots: dict | None = None,
) -> dict:
    """Manifest for one pool-transported run payload.

    Produces the same manifest :func:`manifest_for_run` would for the
    originating :class:`~repro.experiments.runner.RunResult` (payloads
    carry exactly the summary the manifest records), so sequential and
    parallel sweeps emit interchangeable artifacts.
    """
    config = {
        "system": jsonable(payload.system),
        "workload": jsonable(payload.workload),
        "scale": jsonable(payload.scale) if payload.scale is not None else None,
        "seed": payload.seed,
    }
    if payload.faults is not None:
        config["faults"] = payload.faults.get("plan")
    return _assemble_manifest(
        config,
        payload.metrics_summary(),
        utilisation=payload.utilisation or None,
        queue_wait=payload.queue_wait or None,
        collector=collector,
        trace_path=trace_path,
        profile=payload.profile,
        faults=payload.faults,
        health=payload.health,
        extra=_run_extras(
            payload.refresh, payload.in_use_blocks, payload.ida_blocks, jobs,
            backend, snapshots,
        ),
    )


def write_run_manifest(manifest: dict, path: str | Path) -> Path:
    """Write a manifest as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return target
