"""Fig. 11 — IDA effectiveness across the SSD lifetime (read retry).

Paper result: early in the device lifetime (no read-retries) IDA-E20
improves read response times by 28%; late in the lifetime, when the RBER
has grown enough that LDPC decodes fail and trigger re-sensing, the
improvement rises to 42.3% — every retry repeats the page's memory-access
time, so cutting that time compounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .runner import normalized_read_response
from .systems import baseline, ida

__all__ = ["LifetimePhase", "Fig11Result", "run_fig11", "format_fig11", "DEFAULT_PHASES"]


@dataclass(frozen=True)
class LifetimePhase:
    """One lifetime phase: a label and its per-attempt retry probability."""

    name: str
    retry_fail_prob: float


#: Early life: hard decodes always succeed.  Late life: reads frequently
#: need extra sensing passes (calibrated near [38]'s high-RBER regime).
DEFAULT_PHASES: tuple[LifetimePhase, ...] = (
    LifetimePhase("early", 0.0),
    LifetimePhase("late", 0.45),
)


@dataclass
class Fig11Result:
    """``normalized[workload][phase]`` = IDA RT / baseline RT in that phase."""

    phases: tuple[LifetimePhase, ...]
    normalized: dict[str, dict[str, float]] = field(default_factory=dict)

    def average(self, phase_name: str) -> float:
        values = [per_wl[phase_name] for per_wl in self.normalized.values()]
        return sum(values) / len(values) if values else 1.0


def run_fig11(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    phases: tuple[LifetimePhase, ...] = DEFAULT_PHASES,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> Fig11Result:
    """Compare IDA-E20 vs baseline in each lifetime phase."""
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    units = []
    for name in names:
        for phase in phases:
            units.append(
                RunUnit(
                    baseline().with_retry(phase.retry_fail_prob),
                    name,
                    scale,
                    seed=seed,
                )
            )
            units.append(
                RunUnit(
                    ida(error_rate).with_retry(phase.retry_fail_prob),
                    name,
                    scale,
                    seed=seed,
                )
            )
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = Fig11Result(phases=phases)
    pairs = iter(zip(payloads[::2], payloads[1::2]))
    for name in names:
        result.normalized[name] = {}
        for phase in phases:
            base, variant = next(pairs)
            result.normalized[name][phase.name] = normalized_read_response(
                variant, base
            )
    return result


def format_fig11(result: Fig11Result) -> str:
    headers = ["workload"] + [p.name for p in result.phases]
    rows = [
        [name] + [f"{per_phase[p.name]:.3f}" for p in result.phases]
        for name, per_phase in result.normalized.items()
    ]
    rows.append(
        ["average"] + [f"{result.average(p.name):.3f}" for p in result.phases]
    )
    return ascii_table(
        headers,
        rows,
        title="Fig. 11: normalized read RT by lifetime phase "
        "(paper avg: 0.72 early, 0.577 late)",
    )
