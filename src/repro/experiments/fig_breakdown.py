"""Stage attribution — where does the paper's ~28% actually come from?

Fig. 8 reports *that* IDA-E20 cuts mean read response; this artifact
reports *where*: it runs Baseline vs IDA-E20 across the Table III
workloads with the sim-time profiler attached and emits a stacked
per-stage attribution table (queue wait / sense / transfer / ECC / host
overhead, in microseconds of mean read response).  The sense row shrinks
*directly* (fewer senses per read on IDA-coded wordlines) and the queue-
wait row shrinks *indirectly* (shorter senses drain die queues faster —
the Sec. V-A queueing effect); transfer, ECC and host overhead are
invariant, which is exactly the paper's argument.

Self-check: each system's attributed components are summed and compared
against the *independently measured* mean read response from
``SimMetrics`` (accumulated by the completion path, not the profiler).
A mismatch beyond float tolerance raises — the table is only worth
printing if attribution is conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..workloads.msr import TABLE3_WORKLOADS
from .config import RunScale
from .parallel import ProgressFn, RunUnit, execute_units, prune_failed
from .reporting import ascii_table
from .systems import baseline, ida

__all__ = [
    "BreakdownCell",
    "BreakdownResult",
    "run_fig_breakdown",
    "format_fig_breakdown",
    "breakdown_to_json",
]

#: Attribution components, in display order.  ``queue_wait`` is the
#: critical op's total queue time across its stages; the stage names are
#: the read pipeline's service stages; ``host_overhead`` is the fixed
#: per-request constant.
COMPONENTS = ("queue_wait", "sense", "transfer", "ecc", "host_overhead")


@dataclass
class BreakdownCell:
    """Mean read-response attribution of one (workload, system) run."""

    workload: str
    system: str
    reads: int
    mean_response_us: float  # independently measured (SimMetrics)
    components_us: dict[str, float] = field(default_factory=dict)
    residual_us: float = 0.0  # |measured - attributed sum|

    @property
    def attributed_us(self) -> float:
        return sum(self.components_us.values())


@dataclass
class BreakdownResult:
    """Per-workload Baseline vs IDA attribution cells."""

    system_names: tuple[str, str]
    cells: dict[str, dict[str, BreakdownCell]] = field(default_factory=dict)
    tolerance_us: float = 1e-6

    def improvement_us(self, workload: str) -> dict[str, float]:
        """Per-component response-time saving (baseline - variant)."""
        base_name, variant_name = self.system_names
        base = self.cells[workload][base_name]
        variant = self.cells[workload][variant_name]
        return {
            comp: base.components_us.get(comp, 0.0)
            - variant.components_us.get(comp, 0.0)
            for comp in COMPONENTS
        }

    def mean_improvement_pct(self) -> float:
        """Mean normalized improvement across workloads (Fig. 8 style)."""
        base_name, variant_name = self.system_names
        ratios = [
            per[variant_name].mean_response_us / per[base_name].mean_response_us
            for per in self.cells.values()
            if per[base_name].mean_response_us > 0
        ]
        if not ratios:
            return 0.0
        return (1.0 - sum(ratios) / len(ratios)) * 100.0


def _attribution_cell(payload, workload: str, tolerance_us: float) -> BreakdownCell:
    profile = payload.profile
    if profile is None:
        raise ValueError(
            f"run {payload.system.name}/{workload} carried no profile; "
            "fig_breakdown units must set profile=True"
        )
    reads = profile["requests"].get("read")
    if reads is None:
        raise ValueError(f"run {payload.system.name}/{workload} saw no reads")
    components = {"queue_wait": reads["mean_queue_wait_us"]}
    components.update(reads["mean_service_us"])
    components["host_overhead"] = reads["mean_host_overhead_us"]
    measured = payload.read_response["mean_us"]
    cell = BreakdownCell(
        workload=workload,
        system=payload.system.name,
        reads=reads["count"],
        mean_response_us=measured,
        components_us=components,
    )
    cell.residual_us = abs(measured - cell.attributed_us)
    tolerance = max(tolerance_us, 1e-9 * abs(measured))
    if cell.residual_us > tolerance:
        raise AssertionError(
            f"attribution not conservative for {cell.system}/{workload}: "
            f"measured mean {measured:.6f} us vs attributed "
            f"{cell.attributed_us:.6f} us (residual {cell.residual_us:.3g} "
            f"> tolerance {tolerance:.3g})"
        )
    if payload.read_response["count"] != reads["count"]:
        raise AssertionError(
            f"profiler saw {reads['count']} reads but metrics recorded "
            f"{payload.read_response['count']} for {cell.system}/{workload}"
        )
    return cell


def run_fig_breakdown(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    tolerance_us: float = 1e-6,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> BreakdownResult:
    """Run Baseline vs IDA with profiling and build the attribution table.

    Each run's per-stage attribution is self-checked against the
    independently measured mean read response (see module docstring);
    ``jobs > 1`` fans runs out with aggregate-only worker profilers.
    """
    scale = scale or RunScale.bench()
    names = workload_names or list(TABLE3_WORKLOADS)
    systems = (baseline(), ida(error_rate))
    units = [
        RunUnit(system, name, scale, seed=seed, profile=True)
        for name in names
        for system in systems
    ]
    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    names, units, payloads, _ = prune_failed(names, units, payloads, progress)

    result = BreakdownResult(
        system_names=(systems[0].name, systems[1].name),
        tolerance_us=tolerance_us,
    )
    for index, name in enumerate(names):
        base_payload, variant_payload = payloads[2 * index : 2 * index + 2]
        result.cells[name] = {
            payload.system.name: _attribution_cell(payload, name, tolerance_us)
            for payload in (base_payload, variant_payload)
        }
    return result


def format_fig_breakdown(result: BreakdownResult) -> str:
    """Render the stacked attribution table plus the per-component delta."""
    headers = ["workload", "system", "reads"] + [
        f"{comp}_us" for comp in COMPONENTS
    ] + ["attributed_us", "measured_us"]
    rows = []
    for workload, per_system in result.cells.items():
        for system_name in result.system_names:
            cell = per_system[system_name]
            rows.append(
                [workload, system_name, cell.reads]
                + [f"{cell.components_us.get(c, 0.0):.1f}" for c in COMPONENTS]
                + [f"{cell.attributed_us:.1f}", f"{cell.mean_response_us:.1f}"]
            )
        saving = result.improvement_us(workload)
        total_saving = sum(saving.values())
        rows.append(
            [workload, "saved", ""]
            + [f"{saving[c]:.1f}" for c in COMPONENTS]
            + [f"{total_saving:.1f}", ""]
        )
    table = ascii_table(
        headers,
        rows,
        title="Read response attribution: where the improvement comes from "
        "(mean us per read; 'saved' = baseline - variant)",
    )
    return (
        f"{table}\n"
        f"mean improvement: {result.mean_improvement_pct():.1f}% "
        f"(paper: ~28% for E20); attribution residual <= "
        f"{result.tolerance_us:g} us on every run"
    )


def breakdown_to_json(result: BreakdownResult) -> dict:
    """JSON-ready form of the attribution table (the CI artifact)."""
    return {
        "kind": "fig_breakdown",
        "systems": list(result.system_names),
        "components": list(COMPONENTS),
        "mean_improvement_pct": result.mean_improvement_pct(),
        "workloads": {
            workload: {
                system: {
                    "reads": cell.reads,
                    "mean_response_us": cell.mean_response_us,
                    "components_us": dict(cell.components_us),
                    "residual_us": cell.residual_us,
                }
                for system, cell in per_system.items()
            }
            | {"saved_us": result.improvement_us(workload)}
            for workload, per_system in result.cells.items()
        },
    }
