"""Crash-consistency artifact — power-cut / remount / verify sweep.

Sudden power-off recovery (SPOR) is only as good as the set of instants
it was tested at.  This artifact samples hundreds of cut points across a
workload's life — mid host write burst, mid GC erase chain, inside a
refresh pass, *between an IDA ADJUST's journal intent and its commit* —
and, for every cut, replays the run to that exact dispatched-op ordinal,
lets :class:`~repro.faults.PowerCutError` kill the simulator, remounts
the surviving :class:`~repro.flash.state.DeviceState` via
:func:`~repro.ftl.recovery.mount_device`, and checks the recovery
contract against an oracle captured at the instant of the cut:

* **no acked-write loss** — every logical page whose host write was
  acknowledged before the cut is mapped after the mount;
* **no resurrection** — the recovered mapping equals the pre-cut
  mapping exactly: no trimmed / invalidated version comes back, and no
  mapped page disappears (FTL transitions are eager at dispatch, so the
  pre-cut map *is* what the flash arrays hold);
* **byte-identical reads** — every LPN the torn-wordline roll-forward
  did not relocate still maps to the same physical page carrying the
  same write-sequence stamp (same stamp = same write = same bytes);
  relocated LPNs must have existed pre-cut (their content was copied);
* **coding-state ground truth** — no wordline is left in the torn
  marker state and :func:`~repro.faults.check_coding_invariants` comes
  back empty;
* **resumability** — a fresh simulator adopts the mounted FTL and runs
  every request the cut left unacknowledged to completion, after which
  the invariants still hold.

Cut points are chosen from a *census probe*: one cut-free run per
workload records the op kind at every dispatch ordinal
(:attr:`~repro.faults.FaultInjector.census`), ordinals are classified
into write / GC / refresh / ADJUST / read phases, and the cut budget is
spread across the phases.  Ordinals are backend-invariant (both
execution backends route every timed op through the same dispatch
path), so one probe serves the reference and batch sweeps and the same
ordinal cuts the same instant on both.

Each cut is an independent :class:`~.parallel.RunUnit` in
``mode="recover"``, so the sweep fans out across processes, retries,
snapshots and keep-going exactly like every other artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults.injector import PowerCutError
from ..faults.invariants import check_coding_invariants
from ..faults.plan import FaultEvent, FaultKind, FaultPlan
from ..flash.block import TORN_WL
from ..ftl.recovery import mount_device
from ..sim.snapshot import WarmHandle
from ..sim.ssd import SsdSimulator
from ..workloads.synthetic import generate_workload, sample_update_lpns
from .config import RunScale
from .parallel import (
    ProgressFn,
    RunUnit,
    SweepError,
    execute_units,
)
from .reporting import ascii_table
from .runner import _to_host_requests, build_simulator, warm_device
from .systems import SystemSpec, ida

__all__ = [
    "CutOutcome",
    "RecoveryResult",
    "choose_cut_ordinals",
    "format_recovery",
    "probe_census",
    "recovery_to_json",
    "run_recovery",
    "run_recovery_unit",
]

#: Ordinal no run ever reaches — a power-cut event at this ordinal arms
#: the injector (and with it the dispatch census) without ever firing.
NEVER_ORDINAL = 1 << 60

#: Cut-phase labels, in display order.
PHASES = ("write", "gc", "refresh", "adjust", "read")

#: Dispatch ordinals within this many ops after an ADJUST are labelled
#: ``refresh``: IDA refresh passes interleave their reprogram writes and
#: verify reads around the adjust chain, so proximity to an ADJUST is
#: what distinguishes a refresh move from an ordinary host/GC write.
_REFRESH_WAKE = 8


def _phase_labels(census: list[str]) -> list[str]:
    """Label each dispatch ordinal (1-based list index) with its phase."""
    labels = []
    wake = 0  # ordinals left in the current post-adjust refresh window
    for kind in census:
        if kind == "adjust":
            labels.append("adjust")
            wake = _REFRESH_WAKE
        elif kind == "erase":
            labels.append("gc")
            wake = max(0, wake - 1)
        elif wake > 0:
            labels.append("refresh")
            wake -= 1
        elif kind == "read":
            labels.append("read")
        else:
            labels.append("write")
    return labels


def _background_batches(spec, scale: RunScale) -> list[tuple[float, list[int]]]:
    """The run's background update batches (mirrors ``run_workload``)."""
    batches_per_cycle = 8
    total_batches = max(1, int(scale.refresh_cycles * batches_per_cycle))
    per_cycle_updates = int(spec.aging_update_fraction * spec.footprint_pages)
    total_updates = int(per_cycle_updates * scale.refresh_cycles)
    update_lpns = sample_update_lpns(spec, total_updates)
    background: list[tuple[float, list[int]]] = []
    if update_lpns:
        chunk = max(1, len(update_lpns) // total_batches)
        for i in range(total_batches):
            batch = update_lpns[i * chunk : (i + 1) * chunk]
            if batch:
                time_us = (i + 0.5) * spec.duration_us / total_batches
                background.append((time_us, batch))
    return background


def probe_census(
    system: SystemSpec,
    workload,
    scale: RunScale,
    seed: int = 11,
    backend: str = "reference",
) -> list[str]:
    """Run one cut-free probe; return the op kind at every ordinal.

    The probe binds a power-cut event at :data:`NEVER_ORDINAL` purely to
    get a :class:`~repro.faults.FaultInjector` on the dispatch path,
    arms its census list, and replays the full run.  ``census[i]`` is
    the kind of dispatched op ``i + 1`` — the stream a later cut at
    ordinal ``i + 1`` strikes *before*.
    """
    from ..workloads.msr import workload as _catalog_workload

    spec = workload
    if isinstance(spec, str):
        spec = _catalog_workload(spec)
    spec = spec.scaled(scale.num_requests, scale.footprint_pages)
    generated = generate_workload(spec)
    plan = FaultPlan(
        events=(
            FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=NEVER_ORDINAL),
        ),
        name="census-probe",
    )
    sim = build_simulator(
        system, scale, spec.duration_us, seed=seed, faults=plan,
        backend=backend,
    )
    sim.faults.census = []
    warm_device(sim, generated)
    sim.run_requests(
        _to_host_requests(generated, sim.geometry.page_size_bytes),
        background_updates=_background_batches(spec, scale),
    )
    return sim.faults.census


def choose_cut_ordinals(
    census: list[str], cuts: int, seed: int
) -> list[tuple[int, str]]:
    """Pick ``cuts`` ordinals spread across the phases the census shows.

    Phases with few ordinals (ADJUST commits are rare next to host
    writes) contribute everything they have; the slack flows to the
    bigger phases, so the request is met whenever the run has enough
    dispatches at all.  Deterministic in ``(census, cuts, seed)``.
    """
    labels = _phase_labels(census)
    pools: dict[str, list[int]] = {}
    for ordinal, phase in enumerate(labels, start=1):
        pools.setdefault(phase, []).append(ordinal)
    rng = np.random.default_rng(seed)
    chosen: list[tuple[int, str]] = []
    # Smallest pools first: their shortfall raises the later pools' share.
    order = sorted(pools, key=lambda p: (len(pools[p]), p))
    remaining = min(cuts, sum(len(pool) for pool in pools.values()))
    for index, phase in enumerate(order):
        share = -(-remaining // (len(order) - index))  # ceil split
        take = min(share, len(pools[phase]))
        picks = rng.choice(len(pools[phase]), size=take, replace=False)
        chosen.extend((pools[phase][i], phase) for i in sorted(picks))
        remaining -= take
    return sorted(chosen)


def _arm_ack_tracking(sim: SsdSimulator) -> tuple[set, set]:
    """Hook host-request completions; returns (acked ids, acked write lpns)."""
    acked_ids: set[int] = set()
    acked_write_lpns: set[int] = set()

    def on_complete(request, is_read: bool) -> None:
        acked_ids.add(request.request_id)
        if not is_read:
            acked_write_lpns.update(request.lpns)

    sim.on_host_request_complete = on_complete
    return acked_ids, acked_write_lpns


def run_recovery_unit(unit: RunUnit, warm: WarmHandle | None = None) -> dict:
    """Run one cut: replay to the cut, remount, verify, resume.

    The worker body behind ``mode="recover"`` units.  Returns a plain
    JSON-able dict; ``"ok"`` is the verdict and ``"violations"`` lists
    every broken guarantee in human-readable form.
    """
    spec = unit.resolve_workload().scaled(
        unit.scale.num_requests, unit.scale.footprint_pages
    )
    generated = generate_workload(spec)
    sim = build_simulator(
        unit.system, unit.scale, spec.duration_us, seed=unit.seed,
        faults=unit.faults, backend=unit.backend,
    )
    acked_ids, acked_write_lpns = _arm_ack_tracking(sim)
    requests = _to_host_requests(generated, sim.geometry.page_size_bytes)
    background = _background_batches(spec, unit.scale)
    warm_device(sim, generated, warm=warm)

    cut_event = next(
        e for e in unit.faults.events if e.kind is FaultKind.POWER_CUT
    )
    outcome = {
        "workload": unit.workload_name,
        "backend": unit.backend,
        "seed": unit.seed,
        "op_ordinal": cut_event.op_ordinal,
    }
    try:
        sim.run_requests(requests, background_updates=background)
    except PowerCutError as cut:
        outcome.update(
            cut_fired=True, cut_t_us=cut.now_us, ops_at_cut=cut.ops_dispatched
        )
    else:
        # The ordinal lies beyond this run's op stream (possible when a
        # hand-written plan overshoots); nothing to verify.
        outcome.update(
            cut_fired=False, cut_t_us=None, ops_at_cut=sim.ops_dispatched,
            acked_writes=len(acked_write_lpns), mapped_lpns=0,
            torn_rolled_forward=0, stale_journal_cleared=0,
            relocated_lpns=0, resumed_requests=0, violations=[], ok=True,
        )
        return outcome

    # ------------------------------------------------------------------
    # Oracle: the logical state at the instant the power died.
    # ------------------------------------------------------------------
    state = sim.ftl.table.state
    oracle_map = dict(sim.ftl.map.items())
    oracle_seq = {
        lpn: int(state.oob_seq_np[ppn]) for lpn, ppn in oracle_map.items()
    }
    cut_now = float(cut_event.at_us or outcome["cut_t_us"])

    # ------------------------------------------------------------------
    # Mount: rebuild everything from the device arrays alone.
    # ------------------------------------------------------------------
    ftl, report = mount_device(
        state,
        sim.geometry,
        sim.ftl.coding,
        sim.ftl.refresh_policy,
        gc_policy=sim.ftl.gc_policy,
        rng=np.random.default_rng(unit.seed + 1),
        allocation=unit.system.allocation,
    )
    violations: list[str] = []
    recovered = dict(ftl.map.items())
    relocated = set(report.relocated_lpns)

    lost_acked = acked_write_lpns - recovered.keys()
    if lost_acked:
        violations.append(
            f"{len(lost_acked)} acknowledged writes lost "
            f"(e.g. lpn {min(lost_acked)})"
        )
    lost = oracle_map.keys() - recovered.keys()
    if lost:
        violations.append(
            f"{len(lost)} mapped lpns vanished (e.g. lpn {min(lost)})"
        )
    resurrected = recovered.keys() - oracle_map.keys()
    if resurrected:
        violations.append(
            f"{len(resurrected)} stale lpns resurrected "
            f"(e.g. lpn {min(resurrected)})"
        )
    moved = [
        lpn
        for lpn, ppn in recovered.items()
        if lpn not in relocated and oracle_map.get(lpn) != ppn
    ]
    if moved:
        violations.append(
            f"{len(moved)} lpns silently remapped (e.g. lpn {min(moved)})"
        )
    stale_read = [
        lpn
        for lpn, ppn in recovered.items()
        if lpn not in relocated
        and lpn in oracle_seq
        and int(state.oob_seq_np[ppn]) != oracle_seq[lpn]
    ]
    if stale_read:
        violations.append(
            f"{len(stale_read)} lpns read a different write version "
            f"(e.g. lpn {min(stale_read)})"
        )
    ghosts = relocated - oracle_map.keys()
    if ghosts:
        violations.append(
            f"roll-forward produced {len(ghosts)} lpns that never existed "
            f"(e.g. lpn {min(ghosts)})"
        )
    if bool((state.wl_mode_np == TORN_WL).any()):
        violations.append("torn wordline marker survived the mount")
    violations.extend(check_coding_invariants(ftl))

    # ------------------------------------------------------------------
    # Resume: the host replays everything it never saw acknowledged.
    # ------------------------------------------------------------------
    remaining = [r for r in requests if r.request_id not in acked_ids]
    remaining_bg = [(t, lpns) for t, lpns in background if t > cut_now]
    if remaining:
        resumed = SsdSimulator(
            geometry=sim.geometry,
            timing=sim.timing,
            coding=ftl.coding,
            refresh_policy=ftl.refresh_policy,
            gc_policy=ftl.gc_policy,
            retry_model=unit.system.retry_model(),
            seed=unit.seed,
            allocation=unit.system.allocation,
            policy=unit.system.policy,
            backend=unit.backend,
            ftl=ftl,
        )
        try:
            resumed.run_requests(remaining, background_updates=remaining_bg)
        except Exception as exc:  # noqa: BLE001 - any resume crash is a finding
            violations.append(f"resume failed: {exc!r}")
        else:
            violations.extend(
                f"post-resume: {item}" for item in check_coding_invariants(ftl)
            )

    outcome.update(
        acked_writes=len(acked_write_lpns),
        mapped_lpns=report.mapped_lpns,
        torn_rolled_forward=report.torn_rolled_forward,
        stale_journal_cleared=report.stale_journal_cleared,
        relocated_lpns=len(report.relocated_lpns),
        resumed_requests=len(remaining),
        violations=violations,
        ok=not violations,
    )
    return outcome


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------

DEFAULT_BACKENDS: tuple[str, ...] = ("reference", "batch")

#: Total cut points sampled by default, spread over workloads, backends
#: and phases (the acceptance floor for the crash-consistency sweep).
DEFAULT_CUTS = 200


@dataclass(frozen=True)
class CutOutcome:
    """One verified cut point of the sweep."""

    workload: str
    backend: str
    phase: str
    op_ordinal: int
    ok: bool
    cut_fired: bool
    cut_t_us: float | None
    acked_writes: int
    mapped_lpns: int
    torn_rolled_forward: int
    relocated_lpns: int
    resumed_requests: int
    violations: tuple[str, ...] = ()

    @classmethod
    def from_payload(
        cls, workload: str, backend: str, phase: str, payload: dict
    ) -> "CutOutcome":
        return cls(
            workload=workload,
            backend=backend,
            phase=phase,
            op_ordinal=payload["op_ordinal"],
            ok=payload["ok"],
            cut_fired=payload["cut_fired"],
            cut_t_us=payload["cut_t_us"],
            acked_writes=payload["acked_writes"],
            mapped_lpns=payload["mapped_lpns"],
            torn_rolled_forward=payload["torn_rolled_forward"],
            relocated_lpns=payload["relocated_lpns"],
            resumed_requests=payload["resumed_requests"],
            violations=tuple(payload["violations"]),
        )


@dataclass
class RecoveryResult:
    """Every cut of the crash-consistency sweep."""

    backends: tuple[str, ...]
    cells: list[CutOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def clean(self) -> int:
        return sum(1 for c in self.cells if c.ok)

    @property
    def all_ok(self) -> bool:
        return all(c.ok for c in self.cells)

    def violations(self) -> list[str]:
        """Every broken guarantee, prefixed with its cut's coordinates."""
        return [
            f"{c.workload}/{c.backend}@{c.op_ordinal} ({c.phase}): {item}"
            for c in self.cells
            if not c.ok
            for item in c.violations
        ]


def run_recovery(
    scale: RunScale | None = None,
    workload_names: list[str] | None = None,
    cuts: int = DEFAULT_CUTS,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    error_rate: float = 0.2,
    seed: int = 11,
    jobs: int = 1,
    progress: ProgressFn | None = None,
    keep_going: bool = False,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    snapshot_stats: dict | None = None,
) -> RecoveryResult:
    """Sweep ``cuts`` power-cut points across workloads, phases, backends.

    One census probe per workload classifies every dispatch ordinal into
    write / GC / refresh / ADJUST / read phases; the cut budget is split
    evenly over the ``(workload, backend)`` grid and, within each cell,
    across the phases.  Every cut then runs as an independent
    ``mode="recover"`` unit through the standard sweep executor.
    """
    scale = scale or RunScale.bench()
    names = workload_names or ["proj_1", "usr_1", "src2_0"]
    system = ida(error_rate)
    per_cell = max(1, cuts // (len(names) * len(backends)))

    units: list[RunUnit] = []
    cells: list[tuple[str, str, str]] = []
    for wl_index, name in enumerate(names):
        if progress is not None:
            progress(f"census probe: {name}")
        census = probe_census(system, name, scale, seed=seed)
        for backend_index, backend in enumerate(backends):
            fold = seed + 997 * (wl_index + 1) + 131 * (backend_index + 1)
            for ordinal, phase in choose_cut_ordinals(census, per_cell, fold):
                plan = FaultPlan(
                    events=(
                        FaultEvent(
                            kind=FaultKind.POWER_CUT, op_ordinal=ordinal
                        ),
                    ),
                    seed=fold,
                    name=f"{name}-{phase}-cut@{ordinal}",
                )
                units.append(
                    RunUnit(
                        system,
                        name,
                        scale,
                        seed=seed,
                        mode="recover",
                        faults=plan,
                        backend=backend,
                    )
                )
                cells.append((name, backend, phase))

    payloads = execute_units(
        units,
        jobs=jobs,
        progress=progress,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
    )
    result = RecoveryResult(backends=tuple(backends))
    dropped = 0
    for (name, backend, phase), payload in zip(cells, payloads):
        if isinstance(payload, SweepError):
            dropped += 1
            continue
        result.cells.append(
            CutOutcome.from_payload(name, backend, phase, payload)
        )
    if dropped and progress is not None:
        progress(f"keep-going: dropped {dropped} failed cut unit(s)")
    return result


def format_recovery(result: RecoveryResult) -> str:
    """Per (workload, backend) row: cuts per phase, verdict, violations."""
    headers = (
        ["workload", "backend"]
        + list(PHASES)
        + ["cuts", "clean", "torn rolled", "violations"]
    )
    rows = []
    keys: list[tuple[str, str]] = []
    for cell in result.cells:
        key = (cell.workload, cell.backend)
        if key not in keys:
            keys.append(key)
    for workload, backend in keys:
        group = [
            c
            for c in result.cells
            if c.workload == workload and c.backend == backend
        ]
        rows.append(
            [workload, backend]
            + [str(sum(1 for c in group if c.phase == p)) for p in PHASES]
            + [
                str(len(group)),
                str(sum(1 for c in group if c.ok)),
                str(sum(c.torn_rolled_forward for c in group)),
                str(sum(len(c.violations) for c in group)),
            ]
        )
    rows.append(
        ["total", ""]
        + [
            str(sum(1 for c in result.cells if c.phase == p))
            for p in PHASES
        ]
        + [
            str(result.total),
            str(result.clean),
            str(sum(c.torn_rolled_forward for c in result.cells)),
            str(len(result.violations())),
        ]
    )
    table = ascii_table(
        headers,
        rows,
        title="Recovery: power-cut crash-consistency sweep "
        "(every cut: remount from on-flash metadata, verify, resume)",
    )
    problems = result.violations()
    if problems:
        table += "\n\nVIOLATIONS:\n" + "\n".join(
            f"  {line}" for line in problems
        )
    return table


def recovery_to_json(result: RecoveryResult) -> dict:
    """JSON-ready form of the sweep (the CI run artifact)."""
    return {
        "kind": "recovery_artifact",
        "backends": list(result.backends),
        "total_cuts": result.total,
        "clean_cuts": result.clean,
        "all_ok": result.all_ok,
        "violations": result.violations(),
        "cells": [
            {
                "workload": c.workload,
                "backend": c.backend,
                "phase": c.phase,
                "op_ordinal": c.op_ordinal,
                "ok": c.ok,
                "cut_fired": c.cut_fired,
                "cut_t_us": c.cut_t_us,
                "acked_writes": c.acked_writes,
                "mapped_lpns": c.mapped_lpns,
                "torn_rolled_forward": c.torn_rolled_forward,
                "relocated_lpns": c.relocated_lpns,
                "resumed_requests": c.resumed_requests,
                "violations": list(c.violations),
            }
            for c in result.cells
        ],
    }
