"""The flash translation layer: host I/O, GC, and (IDA-modified) refresh.

The FTL applies logical state transitions eagerly at dispatch time and
emits :class:`~repro.ftl.ops.PhysOp` lists for the simulator to push
through the contended die/channel resources.  This mirrors the paper's
DiskSim methodology: FTL decisions are instantaneous metadata updates; all
*time* is spent in the flash-operation queues.

Host writes invalidate the previous copy and program the next page of the
stripe-selected plane's active block (CWDP allocation [26]).  GC runs when
a plane's free blocks fall below the policy watermark.  The refresh daemon
(driven by the simulator clock) scans for blocks older than the refresh
period and executes either the baseline remapping flow or the IDA flow of
Fig. 7 — see :mod:`repro.ftl.refresh` for the planning logic and
accounting.
"""

from __future__ import annotations

import numpy as np

from ..core.coding import GrayCoding
from ..flash.block import CONVENTIONAL_WL, Block, PageState
from ..flash.errors import AdjustDisturbModel
from ..flash.geometry import Geometry
from ..flash.state import FLAG_IS_IDA
from ..flash.plane import PlanePool
from ..obs.tracer import NULL_TRACER, Tracer
from .allocation import StaticAllocator
from .blockstatus import BlockStatusTable
from .gc import GcPolicy, select_victim
from .mapping import PageMap
from .ops import FtlCounters, OpKind, PhysOp, WriteResult
from .refresh import RefreshPolicy, RefreshReport, plan_refresh

# WriteResult and FtlCounters live in .ops (the FTL <-> sim contract)
# but remain importable from here for compatibility.
__all__ = ["Ftl", "WriteResult", "FtlCounters"]


class Ftl:
    """Page-mapping FTL with GREEDY GC and (IDA-)refresh.

    Args:
        geometry: Device topology.
        coding: The conventional cell coding.
        refresh_policy: Refresh flow, period and disturb rate.
        gc_policy: GC watermarks.
        rng: Seeded generator driving the adjustment-disturb sampling.
        allocation: Static allocation strategy name ("cwdp" or "pdwc").
        tracer: Structured event tracer for GC / refresh / IDA-adjust
            events; ``None`` disables (the null fast path).
        table: An existing block status table to adopt instead of
            building a fresh one — the SPOR mount path hands the FTL a
            table rebuilt from on-flash metadata this way.
    """

    def __init__(
        self,
        geometry: Geometry,
        coding: GrayCoding,
        refresh_policy: RefreshPolicy,
        gc_policy: GcPolicy | None = None,
        rng: np.random.Generator | None = None,
        allocation: str = "cwdp",
        tracer: Tracer | None = None,
        table: BlockStatusTable | None = None,
    ) -> None:
        self.geometry = geometry
        self.coding = coding
        self.refresh_policy = refresh_policy
        self.gc_policy = gc_policy or GcPolicy()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.table = table if table is not None else BlockStatusTable(geometry, coding)
        self.map = PageMap()
        self.allocator = StaticAllocator(geometry, allocation)
        self.disturb = AdjustDisturbModel(refresh_policy.error_rate)
        self.counters = FtlCounters()
        self.refresh_reports: list[RefreshReport] = []
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Fault-recovery state.  ``_journal`` doubles as the enable flag
        # (``None`` = faults off, the zero-cost default): recording adjust
        # intents, grown-bad blocks and read-retry pressure only happens
        # when a FaultPlan is bound to the simulator.
        self.grown_bad: list[int] = []
        self._journal: dict[tuple[int, int], tuple[int, tuple[int, ...]]] | None = (
            None
        )
        self._read_reclaim_threshold: int | None = None
        self._retry_pressure: dict[int, int] = {}
        # Live telemetry handles, bound by the simulator when a metrics
        # registry is active; ``None`` (the default) costs one check per
        # GC / refresh / retirement pass — never per page.
        self.telemetry: dict | None = None

    def bind_telemetry(self, registry) -> None:
        """Publish FTL activity counters into a metrics registry.

        Increments happen at *pass* granularity (one GC reclaim, one
        block refresh, one retirement), so the per-op hot path stays
        untouched; per-page counts ride as bulk ``inc(n)`` calls.
        """
        self.telemetry = {
            "gc_passes": registry.counter(
                "ftl_gc_passes_total", "GC victim blocks reclaimed"
            ).unlabeled,
            "gc_moves": registry.counter(
                "ftl_gc_page_moves_total", "pages relocated by garbage collection"
            ).unlabeled,
            "erases": registry.counter(
                "ftl_block_erases_total", "block erase operations"
            ).unlabeled,
            "refresh_passes": registry.counter(
                "ftl_refresh_passes_total", "blocks taken through a refresh flow"
            ).unlabeled,
            "refresh_moves": registry.counter(
                "ftl_refresh_page_moves_total",
                "pages rewritten by refresh (moves plus disturb write-backs)",
            ).unlabeled,
            "adjusts": registry.counter(
                "ftl_ida_adjusted_wordlines_total",
                "wordlines voltage-adjusted into an IDA coding",
            ).unlabeled,
            "retired": registry.counter(
                "ftl_blocks_retired_total", "blocks grown bad and retired"
            ).unlabeled,
            "reclaims": registry.counter(
                "ftl_read_reclaims_total", "read-retry-pressure block reclaims"
            ).unlabeled,
        }

    @property
    def scan_interval_us(self) -> float:
        """Refresh-scan cadence (the :class:`FlashTranslation` contract)."""
        return self.refresh_policy.scan_interval_us

    # ------------------------------------------------------------------
    # Host path
    # ------------------------------------------------------------------
    def host_read(self, lpn: int, now_us: float) -> PhysOp:
        """Resolve one host page read to a physical read op.

        Reads of never-written LPNs (cold trace prefixes) are auto-mapped
        by an untimed fill write and counted in
        ``counters.unmapped_reads``.
        """
        self.counters.host_reads += 1
        ppn = self.map.lookup(lpn)
        if ppn is None:
            self.counters.unmapped_reads += 1
            self._program_page(lpn, now_us, [])
            ppn = self.map.lookup(lpn)
            assert ppn is not None
        block, page = self.table.block_of_ppn(ppn)
        wordline = block.wordline_of(page)
        mode = block.wl_mode(wordline)
        return PhysOp(
            kind=OpKind.READ,
            block_index=block.index,
            page=page,
            senses=block.senses_for(self.table.sense_table, page),
            bit=block.bit_of(page),
            wl_validity=block.wordline_validity(wordline),
            from_ida=mode != CONVENTIONAL_WL,
        )

    def host_write(self, lpn: int, now_us: float) -> WriteResult:
        """Apply one host page write; returns the implied physical work."""
        self.counters.host_writes += 1
        result = WriteResult()
        write_op = self._program_page(lpn, now_us, result.internal_ops)
        result.host_ops.append(write_op)
        return result

    def write_untimed(self, lpn: int, pseudo_now_us: float) -> None:
        """Preconditioning write: full logical effect, no timed ops.

        ``pseudo_now_us`` may be negative — warm-up fills are spread over
        the interval before the trace starts so block refresh ages (and
        hence refresh events) stagger naturally.
        """
        self._program_page(lpn, pseudo_now_us, [])

    #: Safe runs shorter than this are cheaper through the scalar loop
    #: than through the numpy setup of a bulk segment.
    _MIN_BULK_SEGMENT = 32

    def apply_untimed_batch(self, lpns, times) -> None:
        """Bulk :meth:`write_untimed`: identical final state, array speed.

        The batch backend's workhorse (preload / aging / background
        batches).  Writes are applied in *segments*: a safe run is the
        longest prefix guaranteed to trigger no GC pass and open no
        block on any plane — each plane in the allocator rotation merely
        fills its already-open active block — so the whole prefix
        collapses to column scatters on the device state plus one bulk
        map rebinding.  The write that lands on a segment boundary (GC
        watermark, block open, block fill) goes through the ordinary
        scalar path, which realigns every invariant before the next
        segment is sized.

        Args:
            lpns: Logical pages in write order (any int sequence).
            times: Per-write ``pseudo_now_us`` values — a scalar, or a
                sequence matching ``lpns``.
        """
        lpns = np.ascontiguousarray(lpns, dtype=np.int64)
        total = len(lpns)
        if total == 0:
            return
        times = np.broadcast_to(
            np.asarray(times, dtype=np.float64), (total,)
        )
        start = 0
        while start < total:
            safe = self._untimed_safe_run(total - start)
            if safe < self._MIN_BULK_SEGMENT:
                # Too short to be worth array setup; the +1 also steps
                # over the boundary write itself (GC / block open).
                for index in range(start, min(start + safe + 1, total)):
                    self.write_untimed(int(lpns[index]), float(times[index]))
                start += safe + 1
                continue
            self._apply_untimed_segment(
                lpns[start : start + safe], times[start : start + safe]
            )
            start += safe

    def _untimed_safe_run(self, limit: int) -> int:
        """Longest write run from here that stays inside active blocks.

        Position ``k`` of the run lands on rotation slot ``k % P``.  For
        each slot the first boundary is either its very first write (GC
        watermark reached, no active block, or an active block the
        scalar path must special-case) or the write that would overflow
        the active block's remaining pages.
        """
        order = self.allocator.order
        cursor = self.allocator._cursor
        n_planes = len(order)
        pages_per_block = self.geometry.pages_per_block
        watermark = self.gc_policy.low_watermark
        planes = self.table.planes
        state = self.table.state
        best = limit
        for slot in range(min(n_planes, limit)):
            pool = planes[order[(cursor + slot) % n_planes]]
            active = pool.active
            if active is None or pool.free_count < watermark:
                boundary = slot
            else:
                block_index = pool.blocks[active].index
                remaining = pages_per_block - state.next_page[block_index]
                if remaining <= 0 or state.flags[block_index] & FLAG_IS_IDA:
                    boundary = slot
                else:
                    boundary = slot + remaining * n_planes
            if boundary < best:
                best = boundary
                if best == 0:
                    break
        return best

    def _apply_untimed_segment(self, lpns: np.ndarray, times: np.ndarray) -> None:
        """Apply one GC-free run of untimed writes as column operations."""
        state = self.table.state
        geometry = self.geometry
        order = self.allocator.order
        cursor = self.allocator._cursor
        n_planes = len(order)
        pages_per_block = geometry.pages_per_block
        length = len(lpns)
        width = min(n_planes, length)

        # Destination PPNs: slot s writes pages start_page[s], +1, ... of
        # its plane's active block; position p of the segment is the
        # (p // P)-th write of slot p % P.
        pools = [
            self.table.planes[order[(cursor + slot) % n_planes]]
            for slot in range(width)
        ]
        dest_blocks = np.empty(width, dtype=np.int64)
        start_pages = np.empty(width, dtype=np.int64)
        for slot, pool in enumerate(pools):
            block_index = pool.blocks[pool.active].index
            dest_blocks[slot] = block_index
            start_pages[slot] = state.next_page[block_index]
        positions = np.arange(length, dtype=np.int64)
        slot_of = positions % n_planes
        new_ppns = (
            dest_blocks[slot_of] * pages_per_block
            + start_pages[slot_of]
            + positions // n_planes
        )

        # Duplicate LPNs inside the segment: only the first occurrence
        # displaces a pre-segment mapping; only the last stays valid.
        _, first_positions = np.unique(lpns, return_index=True)
        uniq, rev_first = np.unique(lpns[::-1], return_index=True)
        last_positions = length - 1 - rev_first
        is_last = np.zeros(length, dtype=bool)
        is_last[last_positions] = True

        # Invalidate the pre-segment copies (first occurrences only).
        old_ppns = self.map.lookup_many(lpns[first_positions])
        ext_ppns = old_ppns[old_ppns >= 0]
        page_states = state.page_state_np
        if len(ext_ppns):
            stale = page_states[ext_ppns]
            if (stale != int(PageState.VALID)).any():
                bad = int(ext_ppns[stale != int(PageState.VALID)][0])
                block_index, page = divmod(bad, pages_per_block)
                raise RuntimeError(
                    f"block {block_index} page {page} is not valid "
                    f"({PageState(page_states[bad]).name})"
                )
            page_states[ext_ppns] = int(PageState.INVALID)
            np.subtract.at(
                state.valid_count_np, ext_ppns // pages_per_block, 1
            )

        # Program the new pages: duplicates superseded within the
        # segment land directly as INVALID (net effect of program +
        # later invalidate).
        page_states[new_ppns[is_last]] = int(PageState.VALID)
        page_states[new_ppns[~is_last]] = int(PageState.INVALID)
        for slot in range(width):
            block_index = int(dest_blocks[slot])
            in_slot = slot_of == slot
            state.next_page[block_index] += int(in_slot.sum())
            state.valid_count[block_index] += int(is_last[in_slot].sum())
            stamp = state.programmed_at_us[block_index]
            if stamp != stamp:  # NaN: first program since erase
                state.programmed_at_us[block_index] = float(times[slot])

        # OOB records, in write order — identical (lpn, seq) stamps to
        # the scalar path's per-program ``stamp_oob`` calls.
        state.oob_lpn_np[new_ppns] = lpns
        state.oob_seq_np[new_ppns] = state.write_seq + positions
        state.write_seq += length

        self.map.bind_batch(uniq, new_ppns[last_positions], ext_ppns)

        for pool in pools:
            pool.retire_active()
        self.allocator.advance(length)

    # ------------------------------------------------------------------
    # Refresh daemon
    # ------------------------------------------------------------------
    def check_refresh(self, now_us: float) -> list[PhysOp]:
        """Refresh every full block older than the policy period."""
        ops: list[PhysOp] = []
        for pool in self.table.planes:
            # Snapshot: refreshing mutates pool membership via GC/allocation.
            for block in list(pool.used_blocks()):
                if not block.is_full or block.valid_count == 0:
                    continue
                age_start = block.programmed_at_us
                if age_start is None:
                    continue
                if now_us - age_start < self.refresh_policy.period_us:
                    continue
                ops.extend(self._refresh_block(block, now_us))
        return ops

    def _refresh_block(self, block: Block, now_us: float) -> list[PhysOp]:
        ops: list[PhysOp] = []
        self.counters.refresh_invocations += 1
        block.locked = True
        plan = plan_refresh(block, self.refresh_policy.mode)
        report = RefreshReport(block.index, n_valid=len(plan.valid_pages))

        # Step 1-2 of Fig. 7: read + ECC-decode every valid page.
        for page in plan.valid_pages:
            ops.append(self._internal_read_op(block, page))

        # Step 3: move the pages that cannot benefit from IDA.
        for page in plan.moves:
            ops.append(self._move_page(block, page, now_us, ops))
            report.n_moved += 1
            self.counters.refresh_page_moves += 1

        # Step 4: voltage-adjust the IDA wordlines.
        kept_pages: list[int] = []
        for wl_plan in plan.adjusted_wordlines:
            start_bit = wl_plan.decision.adjust_bits[0]
            block.set_wordline_ida(wl_plan.wordline, start_bit)
            # On-flash intent record, written before the ADJUST op is
            # issued: a power cut before the commit rolls forward from
            # this at mount (see repro.ftl.recovery).
            block.journal_adjust(
                wl_plan.wordline, start_bit, wl_plan.pages_to_keep
            )
            if self._journal is not None:
                # Intent record for torn-reprogram recovery: which mode the
                # adjust lands in and which pages ride on the wordline.
                self._journal[(block.index, wl_plan.wordline)] = (
                    start_bit,
                    tuple(wl_plan.pages_to_keep),
                )
            ops.append(
                PhysOp(
                    kind=OpKind.ADJUST,
                    block_index=block.index,
                    wordline=wl_plan.wordline,
                )
            )
            report.n_adjusted_wordlines += 1
            self.counters.refresh_adjusted_wordlines += 1
            kept_pages.extend(wl_plan.pages_to_keep)
            if self.tracer.enabled:
                self.tracer.emit(
                    now_us,
                    "ida_adjust",
                    block=block.index,
                    wordline=wl_plan.wordline,
                    start_bit=start_bit,
                    kept_pages=len(wl_plan.pages_to_keep),
                )

        # Step 5-6: re-read the reprogrammed pages to check for disturb.
        report.n_target = len(kept_pages)
        self.counters.refresh_reprogrammed_pages += len(kept_pages)
        for page in kept_pages:
            ops.append(self._internal_read_op(block, page))

        # Step 7-8: corrupted pages get their error-free copy written to
        # the new block; clean pages stay in place.
        corrupted = self.disturb.corrupted_pages(self.rng, kept_pages)
        for page in corrupted:
            ops.append(self._move_page(block, page, now_us, ops))
        report.n_error = len(corrupted)
        self.counters.refresh_corrupted_pages += len(corrupted)

        if plan.adjusted_wordlines and block.valid_count > 0:
            # The block lives on as an IDA block; restart its age so the
            # next refresh cycle force-reclaims it (Sec. III-C).
            block.programmed_at_us = now_us
        block.locked = False
        self.refresh_reports.append(report)
        if self.telemetry is not None:
            self.telemetry["refresh_passes"].inc()
            moved = report.n_moved + report.n_error
            if moved:
                self.telemetry["refresh_moves"].inc(moved)
            if report.n_adjusted_wordlines:
                self.telemetry["adjusts"].inc(report.n_adjusted_wordlines)
        if self.tracer.enabled:
            self.tracer.emit(
                now_us,
                "refresh",
                block=block.index,
                mode=self.refresh_policy.mode.value,
                n_valid=report.n_valid,
                n_moved=report.n_moved,
                n_target=report.n_target,
                n_error=report.n_error,
                n_adjusted_wordlines=report.n_adjusted_wordlines,
            )
        return ops

    # ------------------------------------------------------------------
    # Fault recovery (graceful degradation)
    # ------------------------------------------------------------------
    # These paths only run when a FaultPlan is bound to the simulator.
    # Because metadata transitions are eager (applied at dispatch) while
    # faults strike at op *completion*, every handler re-checks current
    # page state before acting: the page a failing program carried may
    # already have been invalidated by a newer host write, the block an
    # erase failed on may hold fresh data, and so on.

    def enable_fault_recovery(self, read_reclaim_threshold: int | None = None) -> None:
        """Arm the recovery paths (called by the fault injector's bind)."""
        self._journal = {}
        self._read_reclaim_threshold = read_reclaim_threshold

    def commit_adjust(self, block_index: int, wordline: int | None) -> None:
        """A voltage adjustment completed cleanly; commit it durably.

        Writes the wordline's final mode into the block summary and
        clears its on-flash journal row (the commit record a power cut
        checks for at mount), then drops the in-RAM intent when fault
        recovery is armed.
        """
        if wordline is None:
            return
        self.table.blocks[block_index].commit_wordline_summary(wordline)
        if self._journal is not None:
            self._journal.pop((block_index, wordline), None)

    def on_program_failure(
        self, block_index: int, page: int | None, now_us: float
    ) -> list[PhysOp]:
        """A page program reported status failure.

        The block is retired (program failure is the classic grown-bad
        trigger), the in-flight page is replayed from the controller's
        write buffer to a fresh block, and any other live data is
        evacuated read+write.
        """
        self.counters.program_failures += 1
        block = self.table.blocks[block_index]
        pool = self.table.plane_of_block(block_index)
        in_plane = block_index - pool.plane_index * self.geometry.blocks_per_plane
        already_retired = pool.is_retired(in_plane)
        if not already_retired:
            pool.retire(in_plane)
            self.grown_bad.append(block_index)
            self.counters.grown_bad_blocks += 1
            if self.telemetry is not None:
                self.telemetry["retired"].inc()
        ops: list[PhysOp] = []
        # Replay the failed page itself: its data is still buffered in the
        # controller, so no read is charged, just the fresh program.
        if page is not None and block.state_of(page) is PageState.VALID:
            ops.append(self._move_page(block, page, now_us, ops))
            self.counters.fault_page_moves += 1
        # Evacuate whatever else is still live (read back, then rewrite).
        for other in block.valid_pages():
            ops.append(self._internal_read_op(block, other))
            ops.append(self._move_page(block, other, now_us, ops))
            self.counters.fault_page_moves += 1
        return ops

    def on_erase_failure(self, block_index: int, now_us: float) -> list[PhysOp]:
        """A block erase reported status failure; retire the block."""
        self.counters.erase_failures += 1
        return self.retire_block(block_index, now_us)

    def retire_block(self, block_index: int, now_us: float) -> list[PhysOp]:
        """Grown-bad retirement: evacuate live data, drop from rotation.

        Idempotent — retiring an already-retired block is a no-op, so a
        timed GROWN_BAD event can land on a block a program failure
        already condemned.
        """
        block = self.table.blocks[block_index]
        pool = self.table.plane_of_block(block_index)
        in_plane = block_index - pool.plane_index * self.geometry.blocks_per_plane
        if pool.is_retired(in_plane):
            return []
        pool.retire(in_plane)
        self.grown_bad.append(block_index)
        self.counters.grown_bad_blocks += 1
        if self.telemetry is not None:
            self.telemetry["retired"].inc()
        ops: list[PhysOp] = []
        for page in block.valid_pages():
            ops.append(self._internal_read_op(block, page))
            ops.append(self._move_page(block, page, now_us, ops))
            self.counters.fault_page_moves += 1
        return ops

    def fail_die(self, die_index: int, now_us: float) -> list[PhysOp]:
        """A whole die dropped out.

        Its planes leave the allocation rotation first (so the rebuild
        writes below cannot land on the dying die), then every live page
        is rewritten elsewhere from its outer-protection reconstruction —
        the die cannot be read back, so no read ops are charged — and all
        its blocks are retired.
        """
        self.counters.die_failures += 1
        planes = [
            plane
            for plane in range(self.geometry.total_planes)
            if self.geometry.die_of_plane(plane) == die_index
        ]
        self.allocator.remove_planes(planes)
        ops: list[PhysOp] = []
        for plane_index in planes:
            pool = self.table.planes[plane_index]
            for block in list(pool.used_blocks()):
                for page in block.valid_pages():
                    ops.append(self._move_page(block, page, now_us, ops))
                    self.counters.fault_page_moves += 1
            for in_plane in range(pool.total_blocks):
                pool.retire(in_plane)
        return ops

    def on_uncorrectable_read(
        self, block_index: int, page: int | None, now_us: float
    ) -> list[PhysOp]:
        """A host read exhausted the retry ladder and still failed.

        The sector is rebuilt from outer protection (RAID-style parity
        across dies — modelled as free, only the relocation program is
        charged) and rewritten to a healthy location.
        """
        self.counters.uncorrectable_reads += 1
        block = self.table.blocks[block_index]
        ops: list[PhysOp] = []
        if (
            page is not None
            and not block.locked
            and block.state_of(page) is PageState.VALID
        ):
            ops.append(self._move_page(block, page, now_us, ops))
            self.counters.fault_page_moves += 1
        return ops

    def note_read_retries(
        self, block_index: int, retries: int, now_us: float
    ) -> list[PhysOp]:
        """Accumulate read-retry pressure; reclaim past the threshold.

        STRAW-style read reclaim: once a block's cumulative host-read
        retry count crosses the plan's threshold, its live data migrates
        to fresh blocks (read + write each) and the pressure resets.  The
        drained block is reclaimed by ordinary GC.
        """
        if self._read_reclaim_threshold is None or retries <= 0:
            return []
        pressure = self._retry_pressure.get(block_index, 0) + retries
        self._retry_pressure[block_index] = pressure
        if pressure < self._read_reclaim_threshold:
            return []
        block = self.table.blocks[block_index]
        if block.locked or block.valid_count == 0:
            return []
        self._retry_pressure[block_index] = 0
        self.counters.read_reclaims += 1
        if self.telemetry is not None:
            self.telemetry["reclaims"].inc()
        ops: list[PhysOp] = []
        block.locked = True
        try:
            for page in block.valid_pages():
                ops.append(self._internal_read_op(block, page))
                ops.append(self._move_page(block, page, now_us, ops))
                self.counters.fault_page_moves += 1
        finally:
            block.locked = False
        return ops

    def on_adjust_interrupted(
        self, block_index: int, wordline: int | None, now_us: float
    ) -> list[PhysOp]:
        """An IDA reprogram was cut short mid-adjust (torn wordline).

        Roll-forward recovery: the journal holds the intended mode and the
        pages kept on the wordline.  Surviving kept pages are rewritten
        elsewhere from their buffered copies (the refresh flow had just
        read and decoded them — steps 1-2 of Fig. 7), then the wordline is
        resolved to the *intended* coding.  The wordline is therefore
        never left torn: it lands in exactly one of the two codings, which
        is the invariant ``check_coding_invariants`` pins.
        """
        block = self.table.blocks[block_index]
        ops: list[PhysOp] = []
        if wordline is None:
            return ops
        intent = None
        if self._journal is not None:
            intent = self._journal.pop((block_index, wordline), None)
        if intent is None:
            return ops
        start_bit, kept_pages = intent
        if block.wl_mode(wordline) != start_bit:
            # The block was erased (and possibly reused) while the adjust
            # op was in flight; the eager wordline state was superseded
            # and there is nothing left to tear.
            return ops
        self.counters.torn_adjust_recoveries += 1
        block.mark_wordline_torn(wordline)
        block.locked = True
        try:
            for page in kept_pages:
                if block.state_of(page) is PageState.VALID:
                    ops.append(self._move_page(block, page, now_us, ops))
                    self.counters.fault_page_moves += 1
        finally:
            block.locked = False
        block.resolve_wordline(wordline, start_bit)
        block.commit_wordline_summary(wordline)
        return ops

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _internal_read_op(self, block: Block, page: int) -> PhysOp:
        return PhysOp(
            kind=OpKind.READ,
            block_index=block.index,
            page=page,
            senses=block.senses_for(self.table.sense_table, page),
            bit=block.bit_of(page),
        )

    def _program_page(
        self, lpn: int, now_us: float, internal_ops: list[PhysOp]
    ) -> PhysOp:
        """Invalidate the old copy of ``lpn`` and program a new page."""
        old_ppn = self.map.lookup(lpn)
        if old_ppn is not None:
            old_block, old_page = self.table.block_of_ppn(old_ppn)
            old_block.invalidate(old_page)
            self.map.unbind(lpn)
        plane_index = self.allocator.next_plane()
        pool = self.table.planes[plane_index]
        self._ensure_free_blocks(pool, now_us, internal_ops)
        block = pool.active_block(now_us)
        page = block.program_next(now_us)
        ppn = self.geometry.page_number(block.index, page)
        self.table.state.stamp_oob(ppn, lpn)
        pool.retire_active()
        self.map.bind(lpn, ppn)
        return PhysOp(kind=OpKind.WRITE, block_index=block.index, page=page)

    def _move_page(
        self,
        source: Block,
        page: int,
        now_us: float,
        internal_ops: list[PhysOp],
    ) -> PhysOp:
        """Relocate one valid page to a freshly-allocated page."""
        old_ppn = self.geometry.page_number(source.index, page)
        plane_index = self.allocator.next_plane()
        pool = self.table.planes[plane_index]
        self._ensure_free_blocks(pool, now_us, internal_ops)
        dest = pool.active_block(now_us)
        dest_page = dest.program_next(now_us)
        new_ppn = self.geometry.page_number(dest.index, dest_page)
        self.table.state.relocate_oob(old_ppn, new_ppn)
        pool.retire_active()
        self.map.rebind_physical(old_ppn, new_ppn)
        source.invalidate(page)
        return PhysOp(kind=OpKind.WRITE, block_index=dest.index, page=dest_page)

    def _ensure_free_blocks(
        self, pool: PlanePool, now_us: float, internal_ops: list[PhysOp]
    ) -> None:
        """Run GC on ``pool`` until its free count clears the watermark."""
        if pool.free_count >= self.gc_policy.low_watermark:
            return
        while pool.free_count < self.gc_policy.target_free:
            victim = select_victim(pool)
            if victim is None:
                if pool.free_count >= 1:
                    return  # nothing reclaimable yet, but not wedged
                raise RuntimeError(
                    f"plane {pool.plane_index} wedged: no free blocks and "
                    "no GC victim"
                )
            if victim.valid_count >= victim.pages_per_block:
                raise RuntimeError(
                    f"plane {pool.plane_index} full of valid data; "
                    "workload footprint exceeds usable capacity"
                )
            internal_ops.extend(self._gc_block(victim, pool, now_us))

    def _gc_block(
        self, victim: Block, pool: PlanePool, now_us: float
    ) -> list[PhysOp]:
        """Reclaim one victim block (GREEDY wear-aware GC)."""
        ops: list[PhysOp] = []
        self.counters.gc_invocations += 1
        moves_before = self.counters.gc_page_moves
        for page in victim.valid_pages():
            ops.append(self._internal_read_op(victim, page))
            old_ppn = self.geometry.page_number(victim.index, page)
            dest = pool.active_block(now_us)
            dest_page = dest.program_next(now_us)
            new_ppn = self.geometry.page_number(dest.index, dest_page)
            self.table.state.relocate_oob(old_ppn, new_ppn)
            pool.retire_active()
            self.map.rebind_physical(old_ppn, new_ppn)
            victim.invalidate(page)
            ops.append(
                PhysOp(kind=OpKind.WRITE, block_index=dest.index, page=dest_page)
            )
            self.counters.gc_page_moves += 1
        in_plane = victim.index - pool.plane_index * self.geometry.blocks_per_plane
        victim.erase()
        pool.release(in_plane)
        ops.append(PhysOp(kind=OpKind.ERASE, block_index=victim.index))
        self.counters.block_erases += 1
        if self.telemetry is not None:
            self.telemetry["gc_passes"].inc()
            self.telemetry["gc_moves"].inc(
                self.counters.gc_page_moves - moves_before
            )
            self.telemetry["erases"].inc()
        if self.tracer.enabled:
            self.tracer.emit(
                now_us,
                "gc",
                block=victim.index,
                plane=pool.plane_index,
                moved_pages=self.counters.gc_page_moves - moves_before,
            )
        return ops
