"""GREEDY wear-aware garbage collection (Bux & Iliadis [27], Table II).

The victim is the reclaimable block with the fewest valid pages; ties are
broken toward the lowest erase count (wear-aware).  GC runs when a plane's
free-block count drops below a low watermark and keeps reclaiming until a
target is restored.  In the paper's read-dominant workloads GC is rare —
refresh is the dominant background task — but it must exist: refresh and
IDA both *consume* free blocks that only GC gives back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..flash.block import Block
from ..flash.plane import PlanePool

__all__ = ["GcPolicy", "select_victim"]


@dataclass(frozen=True)
class GcPolicy:
    """When GC runs and how far it goes.

    Attributes:
        low_watermark: Run GC when a plane's free blocks drop below this.
        target_free: Keep reclaiming until the plane has this many free.
    """

    low_watermark: int = 2
    target_free: int = 4

    def __post_init__(self) -> None:
        if self.low_watermark < 1:
            raise ValueError("low_watermark must be >= 1")
        if self.target_free < self.low_watermark:
            raise ValueError("target_free must be >= low_watermark")


def select_victim(pool: PlanePool) -> Block | None:
    """GREEDY wear-aware victim selection for one plane.

    Only *full*, unlocked blocks are eligible (partially-programmed blocks
    are still being filled; locked blocks are mid-refresh).  Returns None
    when the plane has no eligible block.
    """
    candidates = [
        block for block in pool.gc_candidates() if block.is_full and not block.locked
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda b: (b.valid_count, b.erase_count, b.index))
