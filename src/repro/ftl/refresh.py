"""Data refresh: the baseline remapping refresh and the IDA-modified one.

Refresh (a.k.a. data scrub, Cai et al. [23]) periodically relocates aging
data before retention errors accumulate.  The baseline flow (Fig. 7a)
reads every valid page of a target block, ECC-corrects it, and writes it
into a new block; the target block is then empty of valid data and is
reclaimed by GC later.

The IDA-modified flow (Fig. 7b) instead classifies every wordline
(Table I, :func:`repro.core.cases.classify_validity`):

* wordlines whose MSB is valid keep their slow pages in place — any valid
  lower pages blocking the merge are moved out, the wordline is
  voltage-adjusted, and the kept pages are re-read and ECC-checked; the
  fraction ``error_rate`` of them come back disturbed and their error-free
  copies are written to the new block instead (the E-knob of Sec. V-B);
* all other wordlines are handled exactly like the baseline.

This module *plans* a refresh (pure function of the block state) and
defines the accounting record behind Table IV; the FTL executes plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..core.cases import WordlineDecision, classify_validity
from ..flash.block import Block

__all__ = [
    "RefreshMode",
    "RefreshPolicy",
    "RefreshReport",
    "WordlinePlan",
    "RefreshPlan",
    "plan_refresh",
]


class RefreshMode(Enum):
    """Which refresh flow the FTL runs."""

    BASELINE = "baseline"
    IDA = "ida"


@dataclass(frozen=True)
class RefreshPolicy:
    """Refresh configuration.

    Attributes:
        mode: Baseline or IDA-modified flow.
        period_us: Age at which a block becomes due for refresh.  The
            paper uses 3 days to 3 months depending on the workload; the
            experiment configs scale this to the trace duration.
        check_interval_us: How often the refresh daemon scans for due
            blocks.
        error_rate: Fraction of IDA-kept pages disturbed by the voltage
            adjustment (the IDA-E{x} knob; ignored by BASELINE).
    """

    mode: RefreshMode = RefreshMode.BASELINE
    period_us: float = 24 * 3600 * 1e6  # one simulated day
    check_interval_us: float = 0.0  # 0 -> period / 16
    error_rate: float = 0.2

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError("period_us must be positive")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")

    @property
    def scan_interval_us(self) -> float:
        return self.check_interval_us if self.check_interval_us > 0 else self.period_us / 16


@dataclass
class RefreshReport:
    """Per-block refresh accounting — the raw material of Table IV.

    In the paper's notation: ``n_valid`` = N_valid, ``n_target`` =
    N_target (pages reprogrammed by IDA), ``n_error`` = N_error (pages
    corrupted by the adjustment and written back).  The baseline refresh
    performs N_valid reads and N_valid writes; the modified refresh adds
    N_target reads (the post-adjustment integrity check) and replaces the
    writes of kept pages, for a total of N_valid + N_error writes minus
    the N_target - N_error kept in place.
    """

    block_index: int
    n_valid: int = 0
    n_moved: int = 0
    n_target: int = 0
    n_error: int = 0
    n_adjusted_wordlines: int = 0

    @property
    def extra_reads(self) -> int:
        """Reads beyond the baseline refresh (= N_target)."""
        return self.n_target

    @property
    def extra_writes(self) -> int:
        """Writes beyond the pages that had to move anyway (= N_error)."""
        return self.n_error

    @property
    def total_reads(self) -> int:
        return self.n_valid + self.n_target

    @property
    def total_writes(self) -> int:
        return self.n_moved + self.n_error


@dataclass(frozen=True)
class WordlinePlan:
    """Planned treatment of one wordline during an IDA refresh.

    Attributes:
        wordline: Wordline index within the block.
        decision: The Table I classification.
        pages_to_move: Page-in-block indices to write to the new block.
        pages_to_keep: Page-in-block indices kept through the adjustment.
    """

    wordline: int
    decision: WordlineDecision
    pages_to_move: tuple[int, ...]
    pages_to_keep: tuple[int, ...]


@dataclass
class RefreshPlan:
    """Full plan for refreshing one block."""

    block_index: int
    mode: RefreshMode
    valid_pages: list[int] = field(default_factory=list)
    wordlines: list[WordlinePlan] = field(default_factory=list)

    @property
    def moves(self) -> list[int]:
        """All page-in-block indices written to the new block."""
        return [page for wl in self.wordlines for page in wl.pages_to_move]

    @property
    def kept(self) -> list[int]:
        """All page-in-block indices kept in place (IDA targets)."""
        return [page for wl in self.wordlines for page in wl.pages_to_keep]

    @property
    def adjusted_wordlines(self) -> list[WordlinePlan]:
        """Wordlines that will actually be voltage-adjusted.

        A wordline is adjusted only when it keeps pages in place; in a
        full-move plan (baseline mode, or reclaiming an old IDA block) no
        wordline qualifies even if its Table I case is 1-4.
        """
        return [wl for wl in self.wordlines if wl.pages_to_keep]


def plan_refresh(block: Block, mode: RefreshMode) -> RefreshPlan:
    """Plan the refresh of ``block`` without mutating anything.

    Baseline mode — and any block that was *already* IDA-reprogrammed
    (the paper forces IDA blocks to be fully reclaimed at their next
    refresh cycle, Sec. III-C) — moves every valid page.  IDA mode
    classifies each wordline per Table I.
    """
    plan = RefreshPlan(block_index=block.index, mode=mode)
    plan.valid_pages = block.valid_pages()
    bits = block.bits_per_cell

    full_move = mode is RefreshMode.BASELINE or block.is_ida
    for wordline in range(block.wordlines):
        base = wordline * bits
        validity = block.wordline_validity(wordline)
        valid_here = tuple(base + b for b in range(bits) if validity[b])
        if not valid_here:
            continue
        if full_move:
            plan.wordlines.append(
                WordlinePlan(
                    wordline=wordline,
                    decision=classify_validity(validity),
                    pages_to_move=valid_here,
                    pages_to_keep=(),
                )
            )
            continue
        decision = classify_validity(validity)
        if decision.applies_ida:
            moves = tuple(base + b for b in decision.pages_to_move)
            keeps = tuple(
                base + b for b in decision.adjust_bits if validity[b]
            )
            plan.wordlines.append(
                WordlinePlan(wordline, decision, moves, keeps)
            )
        else:
            plan.wordlines.append(
                WordlinePlan(wordline, decision, valid_here, ())
            )
    return plan
