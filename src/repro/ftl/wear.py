"""Wear and lifetime accounting (the paper's endurance discussion).

Sec. III-B/III-C argue IDA does **not** trade lifetime for performance:
erase counts do not rise (the adjustment reprograms without erasing) and
total refresh writes *drop* (kept pages are not rewritten).  This module
computes the quantities those claims are stated in:

* per-block erase-count statistics and wear evenness;
* write amplification factor (WAF): physical page writes per host write;
* a remaining-lifetime estimate from the erase-cycle budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from .blockstatus import BlockStatusTable
from .ftl import FtlCounters

__all__ = ["WearStats", "collect_wear", "write_amplification"]


@dataclass(frozen=True)
class WearStats:
    """Wear snapshot of a device.

    Attributes:
        total_erases: Sum of per-block erase counts.
        max_erases / min_erases: Extremes over all blocks.
        mean_erases: Average erase count.
        wear_spread: ``max - min`` (a 0 means perfectly even wear).
        rated_pe_cycles: The endurance budget compared against.
    """

    total_erases: int
    max_erases: int
    min_erases: int
    mean_erases: float
    rated_pe_cycles: int = 3000

    @property
    def wear_spread(self) -> int:
        return self.max_erases - self.min_erases

    @property
    def worst_block_life_used(self) -> float:
        """Fraction of the rated endurance the most-worn block has used."""
        return min(1.0, self.max_erases / self.rated_pe_cycles)

    def remaining_lifetime_fraction(self) -> float:
        """Remaining life under the current wear pattern (worst block)."""
        return 1.0 - self.worst_block_life_used


def collect_wear(
    table: BlockStatusTable, rated_pe_cycles: int = 3000
) -> WearStats:
    """Aggregate per-block erase counts into a :class:`WearStats`."""
    counts = table.state.erase_count_np
    if not len(counts):
        raise ValueError("device has no blocks")
    return WearStats(
        total_erases=int(counts.sum()),
        max_erases=int(counts.max()),
        min_erases=int(counts.min()),
        mean_erases=float(counts.sum() / len(counts)),
        rated_pe_cycles=rated_pe_cycles,
    )


def write_amplification(counters: FtlCounters) -> float:
    """Write amplification factor observed by the FTL.

    WAF = (host writes + GC moves + refresh moves + refresh write-backs)
    / host writes.  The IDA refresh lowers the refresh-move term (kept
    pages are voltage-adjusted in place, not rewritten), which is how the
    paper argues "the total write count decreases a little".

    Returns 1.0 when no host writes occurred (nothing to amplify).
    """
    if counters.host_writes == 0:
        return 1.0
    physical = (
        counters.host_writes
        + counters.gc_page_moves
        + counters.refresh_page_moves
        + counters.refresh_corrupted_pages
    )
    return physical / counters.host_writes
