"""The device-wide block status table (Sec. III-C).

The paper stresses that IDA needs *no new* validity tracking — it reuses
the FTL's existing block status table, extended by one bit per block
(conventional vs IDA) and one mode bit per wordline.  This class owns all
:class:`~repro.flash.block.Block` records plus the per-plane pools, and
answers the queries the rest of the FTL makes: page validity, wordline
validity, sense counts, and block-level aggregates.
"""

from __future__ import annotations

from ..core.coding import GrayCoding
from ..flash.block import Block, SenseTable
from ..flash.geometry import Geometry
from ..flash.plane import PlanePool

__all__ = ["BlockStatusTable"]


class BlockStatusTable:
    """All block state of the device, indexed linearly and per plane."""

    def __init__(self, geometry: Geometry, coding: GrayCoding) -> None:
        if coding.bits != geometry.bits_per_cell:
            raise ValueError(
                f"coding has {coding.bits} bits/cell but geometry expects "
                f"{geometry.bits_per_cell}"
            )
        self.geometry = geometry
        self.coding = coding
        self.sense_table = SenseTable(coding)
        self.blocks: list[Block] = [
            Block(
                index=index,
                pages_per_block=geometry.pages_per_block,
                bits_per_cell=geometry.bits_per_cell,
            )
            for index in range(geometry.total_blocks)
        ]
        self.planes: list[PlanePool] = []
        for plane_index in range(geometry.total_planes):
            start = plane_index * geometry.blocks_per_plane
            end = start + geometry.blocks_per_plane
            self.planes.append(PlanePool(plane_index, self.blocks[start:end]))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def block(self, block_index: int) -> Block:
        return self.blocks[block_index]

    def block_of_ppn(self, ppn: int) -> tuple[Block, int]:
        """(block, page-in-block) of a physical page number."""
        block_index, page = self.geometry.decompose_page(ppn)
        return self.blocks[block_index], page

    def plane_of_block(self, block_index: int) -> PlanePool:
        return self.planes[self.geometry.plane_of_block(block_index)]

    def senses_for_ppn(self, ppn: int) -> int:
        """Memory senses a read of this physical page currently needs."""
        block, page = self.block_of_ppn(ppn)
        return block.senses_for(self.sense_table, page)

    def wordline_validity_of_ppn(self, ppn: int) -> tuple[bool, ...]:
        block, page = self.block_of_ppn(ppn)
        return block.wordline_validity(block.wordline_of(page))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def in_use_blocks(self) -> int:
        """Blocks holding any programmed pages (Sec. III-C accounting)."""
        return sum(1 for block in self.blocks if block.next_page > 0)

    def ida_blocks(self) -> int:
        """Blocks currently carrying IDA-reprogrammed wordlines."""
        return sum(1 for block in self.blocks if block.is_ida)

    def total_valid_pages(self) -> int:
        return sum(block.valid_count for block in self.blocks)

    def total_erases(self) -> int:
        return sum(block.erase_count for block in self.blocks)

    def free_blocks(self) -> int:
        return sum(pool.free_count for pool in self.planes)

    def retired_blocks(self) -> int:
        """Grown-bad blocks permanently out of rotation (fault paths)."""
        return sum(pool.retired_count for pool in self.planes)
