"""The device-wide block status table (Sec. III-C).

The paper stresses that IDA needs *no new* validity tracking — it reuses
the FTL's existing block status table, extended by one bit per block
(conventional vs IDA) and one mode bit per wordline.  Since the columnar
refactor the table *owns* one :class:`~repro.flash.state.DeviceState`
(flat columns over every page/wordline/block of the device) and hands
out :class:`~repro.flash.block.Block` views plus the per-plane pools.
It answers the queries the rest of the FTL makes: page validity,
wordline validity, sense counts, and block-level aggregates — the
aggregates as single array reductions instead of Python loops.
"""

from __future__ import annotations

from ..core.coding import GrayCoding
from ..flash.block import Block, SenseTable
from ..flash.geometry import Geometry
from ..flash.plane import PlanePool
from ..flash.state import DeviceState

__all__ = ["BlockStatusTable"]


class BlockStatusTable:
    """All block state of the device, indexed linearly and per plane."""

    def __init__(
        self,
        geometry: Geometry,
        coding: GrayCoding,
        state: DeviceState | None = None,
    ) -> None:
        """Args:
            state: An existing columnar state to adopt instead of
                allocating a fresh (all-erased) one.  The SPOR mount
                path builds views over the surviving device arrays this
                way; the geometry must match.
        """
        if coding.bits != geometry.bits_per_cell:
            raise ValueError(
                f"coding has {coding.bits} bits/cell but geometry expects "
                f"{geometry.bits_per_cell}"
            )
        self.geometry = geometry
        self.coding = coding
        self.sense_table = SenseTable(coding)
        if state is not None:
            mine = (
                geometry.total_blocks,
                geometry.pages_per_block,
                geometry.bits_per_cell,
            )
            theirs = (
                state.num_blocks,
                state.pages_per_block,
                state.bits_per_cell,
            )
            if mine != theirs:
                raise ValueError(
                    f"adopted device state geometry {theirs} does not "
                    f"match table geometry {mine}"
                )
        self.state = state if state is not None else DeviceState(
            num_blocks=geometry.total_blocks,
            pages_per_block=geometry.pages_per_block,
            bits_per_cell=geometry.bits_per_cell,
        )
        self.blocks: list[Block] = [
            Block(
                index=index,
                pages_per_block=geometry.pages_per_block,
                bits_per_cell=geometry.bits_per_cell,
                state=self.state,
                slot=index,
            )
            for index in range(geometry.total_blocks)
        ]
        self.planes: list[PlanePool] = []
        for plane_index in range(geometry.total_planes):
            start = plane_index * geometry.blocks_per_plane
            end = start + geometry.blocks_per_plane
            self.planes.append(PlanePool(plane_index, self.blocks[start:end]))

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def block(self, block_index: int) -> Block:
        return self.blocks[block_index]

    def block_of_ppn(self, ppn: int) -> tuple[Block, int]:
        """(block, page-in-block) of a physical page number."""
        block_index, page = self.geometry.decompose_page(ppn)
        return self.blocks[block_index], page

    def plane_of_block(self, block_index: int) -> PlanePool:
        return self.planes[self.geometry.plane_of_block(block_index)]

    def senses_for_ppn(self, ppn: int) -> int:
        """Memory senses a read of this physical page currently needs."""
        block, page = self.block_of_ppn(ppn)
        return block.senses_for(self.sense_table, page)

    def wordline_validity_of_ppn(self, ppn: int) -> tuple[bool, ...]:
        block, page = self.block_of_ppn(ppn)
        return block.wordline_validity(block.wordline_of(page))

    # ------------------------------------------------------------------
    # Aggregates (array reductions over the columnar state)
    # ------------------------------------------------------------------
    def in_use_blocks(self) -> int:
        """Blocks holding any programmed pages (Sec. III-C accounting)."""
        return self.state.in_use_blocks()

    def ida_blocks(self) -> int:
        """Blocks currently carrying IDA-reprogrammed wordlines."""
        return self.state.ida_blocks()

    def total_valid_pages(self) -> int:
        return self.state.total_valid_pages()

    def total_erases(self) -> int:
        return self.state.total_erases()

    def free_blocks(self) -> int:
        return sum(pool.free_count for pool in self.planes)

    def retired_blocks(self) -> int:
        """Grown-bad blocks permanently out of rotation (fault paths)."""
        return self.state.retired_blocks()
