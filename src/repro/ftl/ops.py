"""The FTL <-> simulator contract: op descriptors and the FTL protocol.

This module is the *entire* surface the simulator sees of the flash
translation layer.  The FTL applies *logical* state transitions (mapping
updates, validity flips, wordline-mode changes) immediately, and hands
the simulator lists of :class:`PhysOp` records describing the physical
work those transitions imply.  The simulator routes each op through the
contended die / channel resources, which is where all queueing behaviour
comes from.

Keeping the contract this narrow is what lets scheduling policies and
pipeline staging evolve independently of FTL internals: any object
satisfying :class:`FlashTranslation` (the baseline page-mapping FTL, a
future stress-aware reclaim variant, a test stub) plugs into
:class:`~repro.sim.ssd.SsdSimulator` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Protocol, runtime_checkable

__all__ = [
    "OpKind",
    "PhysOp",
    "WriteResult",
    "FtlCounters",
    "FlashTranslation",
]


class OpKind(Enum):
    """Physical flash operations."""

    READ = "read"
    WRITE = "write"
    ADJUST = "adjust"
    ERASE = "erase"


@dataclass(frozen=True)
class PhysOp:
    """One physical operation to be timed by the simulator.

    Attributes:
        kind: Operation type.
        block_index: Linear block number the op targets.
        page: Page-in-block for READ/WRITE; ``None`` for ADJUST/ERASE.
        senses: Memory senses a READ needs (drives its latency).
        bit: Page type of a READ (0 = LSB), for read-mix accounting.
        wl_validity: Wordline validity snapshot at dispatch, for Fig. 4
            accounting (READ only).
        from_ida: Whether a READ is served from an IDA-reprogrammed
            wordline.
        wordline: Wordline an ADJUST targets — fault recovery needs it to
            resolve a torn reprogram; ``None`` for other kinds.
    """

    kind: OpKind
    block_index: int
    page: int | None = None
    senses: int = 0
    bit: int | None = None
    wl_validity: tuple[bool, ...] | None = None
    from_ida: bool = False
    wordline: int | None = None


@dataclass
class WriteResult:
    """Physical work implied by one host page write.

    Attributes:
        host_ops: The page program itself.
        internal_ops: Any GC work the allocation triggered.
    """

    host_ops: list[PhysOp] = field(default_factory=list)
    internal_ops: list[PhysOp] = field(default_factory=list)


@dataclass
class FtlCounters:
    """FTL-internal event counters, merged into the run metrics."""

    gc_invocations: int = 0
    gc_page_moves: int = 0
    block_erases: int = 0
    refresh_invocations: int = 0
    refresh_page_moves: int = 0
    refresh_adjusted_wordlines: int = 0
    refresh_reprogrammed_pages: int = 0
    refresh_corrupted_pages: int = 0
    host_writes: int = 0
    host_reads: int = 0
    unmapped_reads: int = 0
    # Fault handling (all zero unless a FaultPlan is active).
    program_failures: int = 0
    erase_failures: int = 0
    grown_bad_blocks: int = 0
    uncorrectable_reads: int = 0
    read_reclaims: int = 0
    torn_adjust_recoveries: int = 0
    die_failures: int = 0
    fault_page_moves: int = 0


@runtime_checkable
class FlashTranslation(Protocol):
    """What the simulator requires of a flash translation layer.

    Everything is expressed in terms of :class:`PhysOp` sequences — the
    FTL never touches simulator resources, queues, or the event engine,
    and the simulator never reaches past these five members into FTL
    internals.  Host writes may trigger GC; the implied relocation work
    comes back in :attr:`WriteResult.internal_ops` rather than being
    self-scheduled.
    """

    #: Event counters the simulator folds into the run metrics.
    counters: FtlCounters

    @property
    def scan_interval_us(self) -> float:
        """Cadence at which the simulator should call :meth:`check_refresh`."""
        ...

    def host_read(self, lpn: int, now_us: float) -> PhysOp:
        """Resolve one host page read to a physical read op."""
        ...

    def host_write(self, lpn: int, now_us: float) -> WriteResult:
        """Apply one host page write; returns the implied physical work."""
        ...

    def write_untimed(self, lpn: int, pseudo_now_us: float) -> None:
        """Preconditioning write: full logical effect, no timed ops."""
        ...

    def check_refresh(self, now_us: float) -> list[PhysOp]:
        """Scan for refresh-due blocks; returns the implied physical work."""
        ...
