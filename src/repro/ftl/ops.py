"""Physical operation descriptors the FTL emits for the simulator to time.

The FTL applies *logical* state transitions (mapping updates, validity
flips, wordline-mode changes) immediately, and hands the simulator a list
of :class:`PhysOp` records describing the physical work those transitions
imply.  The simulator routes each op through the contended die / channel
resources, which is where all queueing behaviour comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["OpKind", "PhysOp"]


class OpKind(Enum):
    """Physical flash operations."""

    READ = "read"
    WRITE = "write"
    ADJUST = "adjust"
    ERASE = "erase"


@dataclass(frozen=True)
class PhysOp:
    """One physical operation to be timed by the simulator.

    Attributes:
        kind: Operation type.
        block_index: Linear block number the op targets.
        page: Page-in-block for READ/WRITE; ``None`` for ADJUST/ERASE.
        senses: Memory senses a READ needs (drives its latency).
        bit: Page type of a READ (0 = LSB), for read-mix accounting.
        wl_validity: Wordline validity snapshot at dispatch, for Fig. 4
            accounting (READ only).
        from_ida: Whether a READ is served from an IDA-reprogrammed
            wordline.
    """

    kind: OpKind
    block_index: int
    page: int | None = None
    senses: int = 0
    bit: int | None = None
    wl_validity: tuple[bool, ...] | None = None
    from_ida: bool = False
