"""Page-level address translation.

A straightforward page-mapping FTL table: logical page number (LPN) to
physical page number (PPN) plus the reverse map GC and refresh need to
find the owner of a physical page they are about to move.
"""

from __future__ import annotations

__all__ = ["PageMap"]


class PageMap:
    """Bidirectional LPN <-> PPN map.

    Invariant (property-tested): the forward and reverse maps are exact
    inverses at all times.
    """

    def __init__(self) -> None:
        self._forward: dict[int, int] = {}
        self._reverse: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._forward)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._forward

    def lookup(self, lpn: int) -> int | None:
        """PPN currently holding ``lpn``, or None when unmapped."""
        return self._forward.get(lpn)

    def owner(self, ppn: int) -> int | None:
        """LPN stored at ``ppn``, or None when the page holds no live data."""
        return self._reverse.get(ppn)

    def bind(self, lpn: int, ppn: int) -> int | None:
        """Map ``lpn`` to ``ppn``; returns the displaced old PPN (if any).

        Raises:
            ValueError: if ``ppn`` already holds another LPN's data.
        """
        current_owner = self._reverse.get(ppn)
        if current_owner is not None and current_owner != lpn:
            raise ValueError(
                f"PPN {ppn} already holds LPN {current_owner}"
            )
        old_ppn = self._forward.get(lpn)
        if old_ppn is not None:
            del self._reverse[old_ppn]
        self._forward[lpn] = ppn
        self._reverse[ppn] = lpn
        return old_ppn

    def unbind(self, lpn: int) -> int | None:
        """Drop ``lpn``'s mapping; returns the freed PPN (if any)."""
        ppn = self._forward.pop(lpn, None)
        if ppn is not None:
            del self._reverse[ppn]
        return ppn

    def rebind_physical(self, old_ppn: int, new_ppn: int) -> int:
        """Move live data from ``old_ppn`` to ``new_ppn`` (GC / refresh).

        Returns:
            The LPN that moved.

        Raises:
            KeyError: if ``old_ppn`` holds no live data.
        """
        lpn = self._reverse[old_ppn]
        del self._reverse[old_ppn]
        self._forward[lpn] = new_ppn
        self._reverse[new_ppn] = lpn
        return lpn
