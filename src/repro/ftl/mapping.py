"""Page-level address translation.

A straightforward page-mapping FTL table: logical page number (LPN) to
physical page number (PPN) plus the reverse map GC and refresh need to
find the owner of a physical page they are about to move.

The forward map is columnar: one growable ``int64`` entry per LPN
(:data:`NO_PPN` = unmapped) instead of a dict.  At the paper's full
512 GB topology the logical space is tens of millions of pages — a flat
column holds that in a few hundred MB worst-case and answers batched
lookups (:meth:`PageMap.lookup_many`) as one numpy gather, which the
batch execution backend leans on.  The reverse map stays a dict: it is
sparse over the *physical* space (entries = live pages only), so a
67 M-entry physical column would waste far more than the dict costs.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator

import numpy as np

__all__ = ["PageMap", "NO_PPN"]

#: Forward-column sentinel: this LPN is unmapped.
NO_PPN = -1

_GROW_CHUNK = 4096


class PageMap:
    """Bidirectional LPN <-> PPN map.

    Invariant (property-tested): the forward and reverse maps are exact
    inverses at all times.
    """

    def __init__(self) -> None:
        # Growable int64 column over the dense LPN space; -1 = unmapped.
        self._forward = array("q")
        self._reverse: dict[int, int] = {}

    def _grow_to(self, lpn: int) -> None:
        """Extend the forward column to cover ``lpn`` (chunked)."""
        needed = lpn + 1 - len(self._forward)
        chunk = max(needed, _GROW_CHUNK)
        self._forward.extend([NO_PPN] * chunk)

    def __len__(self) -> int:
        return len(self._reverse)

    def __contains__(self, lpn: int) -> bool:
        forward = self._forward
        return 0 <= lpn < len(forward) and forward[lpn] != NO_PPN

    def items(self) -> Iterator[tuple[int, int]]:
        """All (lpn, ppn) pairs, ascending by LPN."""
        for lpn, ppn in enumerate(self._forward):
            if ppn != NO_PPN:
                yield lpn, ppn

    def lookup(self, lpn: int) -> int | None:
        """PPN currently holding ``lpn``, or None when unmapped."""
        forward = self._forward
        if not 0 <= lpn < len(forward):
            return None
        ppn = forward[lpn]
        return None if ppn == NO_PPN else ppn

    def lookup_many(self, lpns) -> np.ndarray:
        """Batched :meth:`lookup`: one gather, :data:`NO_PPN` = unmapped."""
        lpns = np.asarray(lpns, dtype=np.int64)
        out = np.full(len(lpns), NO_PPN, dtype=np.int64)
        if len(self._forward):
            forward = np.frombuffer(self._forward, dtype=np.int64)
            in_range = (lpns >= 0) & (lpns < len(forward))
            out[in_range] = forward[lpns[in_range]]
        return out

    def owner(self, ppn: int) -> int | None:
        """LPN stored at ``ppn``, or None when the page holds no live data."""
        return self._reverse.get(ppn)

    def bind(self, lpn: int, ppn: int) -> int | None:
        """Map ``lpn`` to ``ppn``; returns the displaced old PPN (if any).

        Raises:
            ValueError: if ``ppn`` already holds another LPN's data.
        """
        current_owner = self._reverse.get(ppn)
        if current_owner is not None and current_owner != lpn:
            raise ValueError(
                f"PPN {ppn} already holds LPN {current_owner}"
            )
        forward = self._forward
        if lpn >= len(forward):
            self._grow_to(lpn)
        old_ppn = forward[lpn]
        if old_ppn != NO_PPN:
            del self._reverse[old_ppn]
        forward[lpn] = ppn
        self._reverse[ppn] = lpn
        return None if old_ppn == NO_PPN else old_ppn

    def unbind(self, lpn: int) -> int | None:
        """Drop ``lpn``'s mapping; returns the freed PPN (if any)."""
        forward = self._forward
        if not 0 <= lpn < len(forward):
            return None
        ppn = forward[lpn]
        if ppn == NO_PPN:
            return None
        forward[lpn] = NO_PPN
        del self._reverse[ppn]
        return ppn

    def bind_batch(
        self,
        lpns: np.ndarray,
        ppns: np.ndarray,
        drop_ppns: np.ndarray,
    ) -> None:
        """Bulk rebinding with the same net effect as sequential binds.

        The caller has already resolved write order: ``lpns``/``ppns``
        are the *final* pairs (last writer wins) and ``drop_ppns`` are
        the previously-bound physical pages those binds displace.  The
        forward column takes one scatter; the reverse dict one bulk
        delete + update.

        Args:
            lpns: Distinct logical pages being (re)bound, int64.
            ppns: Their new physical pages (fresh — not currently bound).
            drop_ppns: Old physical homes to unbind first.
        """
        if len(lpns):
            max_lpn = int(lpns.max())
            if max_lpn >= len(self._forward):
                self._grow_to(max_lpn)
            forward = np.frombuffer(self._forward, dtype=np.int64)
            forward[lpns] = ppns
        reverse = self._reverse
        for ppn in drop_ppns.tolist():
            del reverse[ppn]
        reverse.update(zip(ppns.tolist(), lpns.tolist()))

    def export_forward(self) -> bytes:
        """The forward column as raw ``int64`` bytes (snapshot capture).

        The reverse dict is *not* exported: it is the exact inverse of
        the forward column (the property-tested invariant), so
        :meth:`load_forward` rebuilds it — snapshots stay half the size
        and can never carry an inconsistent pair.
        """
        return self._forward.tobytes()

    def load_forward(self, blob: bytes) -> None:
        """Replace the whole map from an :meth:`export_forward` blob.

        Rebuilds the reverse dict from the mapped entries, restoring the
        forward/reverse inverse invariant by construction.

        Raises:
            ValueError: if ``blob`` is not a whole number of ``int64``
                entries (a truncated snapshot).
        """
        if len(blob) % 8:
            raise ValueError(
                f"forward-map blob holds {len(blob)} bytes, "
                "not a whole number of int64 entries"
            )
        forward = array("q")
        forward.frombytes(blob)
        self._forward = forward
        if len(forward):
            column = np.frombuffer(forward, dtype=np.int64)
            mapped = np.flatnonzero(column != NO_PPN)
            self._reverse = dict(
                zip(column[mapped].tolist(), mapped.tolist())
            )
        else:
            self._reverse = {}

    def rebind_physical(self, old_ppn: int, new_ppn: int) -> int:
        """Move live data from ``old_ppn`` to ``new_ppn`` (GC / refresh).

        Returns:
            The LPN that moved.

        Raises:
            KeyError: if ``old_ppn`` holds no live data.
        """
        lpn = self._reverse[old_ppn]
        del self._reverse[old_ppn]
        self._forward[lpn] = new_ppn
        self._reverse[new_ppn] = lpn
        return lpn
