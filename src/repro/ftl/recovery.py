"""Sudden power-off recovery (SPOR): mount a device from its arrays alone.

The paper's IDA scheme hinges on a per-wordline coding-mode table that
must survive power loss — a post-crash read decoded with the wrong
thresholds returns garbage.  This module is the mount path: given only
the columnar :class:`~repro.flash.state.DeviceState` (the "flash
arrays" — no live FTL objects survive the cut), it rebuilds a complete,
consistent :class:`~repro.ftl.ftl.Ftl`:

* **Forward map** — a full-device OOB scan.  Every programmed page
  carries an on-flash ``(oob_lpn, oob_seq)`` record; the newest stamp of
  an LPN wins (last-write-wins), exactly the classic SPOR scan of
  page-mapping FTLs.  Page validity and per-block valid counts are
  *rebuilt* from the scan, never trusted: ``page_state``'s
  VALID/INVALID distinction is controller metadata that a real crash
  loses.
* **Block pools** — physical facts only: a block with ``next_page == 0``
  is free, a full block is in use, the (at most one per plane) partially
  programmed block is the plane's open active block, and
  ``FLAG_RETIRED`` marks grown-bad blocks.  The free list is rebuilt in
  ascending in-plane order — the pre-cut FIFO order is controller RAM
  and unrecoverable, so post-mount allocation is deterministic but not
  byte-identical to the uncut future (documented divergence; the
  crash-consistency harness verifies recovered *state*, not future
  allocation order).
* **Allocator cursor** — positioned one past the plane holding the
  globally newest OOB stamp (the closest on-flash approximation of the
  lost round-robin cursor).
* **Write sequence** — ``max(surviving oob_seq) + 1``.  This equals the
  pre-cut counter exactly: the globally newest stamp can never be
  erased, because erasing its block would require the page to be
  invalid, which would require an even newer stamp to exist.
* **IDA coding state** — for every wordline the journal columns name as
  suspect (``journal_bit != 0``: an ADJUST intent with no commit
  record), the mount rolls *forward*: kept pages still valid on the
  wordline are relocated, the wordline is resolved to the journaled
  coding and committed — mirroring the live torn-reprogram recovery of
  ``Ftl.on_adjust_interrupted``, but driven purely from on-flash
  records.  Rolling forward is safe on both sides of the race: if the
  adjust pulse completed but the commit was cut, the wordline already
  sits in the intended coding and the roll-forward merely re-homes the
  kept pages; if the pulse itself was cut, the cells are indeterminate
  and the relocation is mandatory.

What is *not* recovered (controller RAM, documented lost): FTL event
counters, refresh reports, and read-retry pressure all restart from
zero; ``grown_bad`` is rebuilt (sorted) from the retired flags rather
than in discovery order.

The acknowledged-write-durability argument, the on-flash metadata
format and the harness that sweeps hundreds of cut points live in
``docs/faults.md`` ("Power-loss recovery").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.coding import GrayCoding
from ..flash.block import CONVENTIONAL_WL, PageState
from ..flash.geometry import Geometry
from ..flash.state import FLAG_RETIRED, DeviceState
from ..obs.tracer import Tracer
from .blockstatus import BlockStatusTable
from .ftl import Ftl
from .gc import GcPolicy
from .ops import PhysOp
from .refresh import RefreshPolicy

__all__ = ["MountReport", "mount_device"]

_VALID = int(PageState.VALID)
_INVALID = int(PageState.INVALID)


@dataclass
class MountReport:
    """What one SPOR mount found and did.

    Attributes:
        mapped_lpns: Live logical pages recovered into the forward map.
        write_seq: The rebuilt global write-sequence counter.
        sealed_blocks: Full (summary-sealed) blocks placed in use.
        open_blocks: Partially programmed blocks reopened as a plane's
            active block.
        free_blocks: Erased blocks returned to free lists.
        retired_blocks: Grown-bad blocks kept out of rotation.
        torn_rolled_forward: Suspect wordlines rolled forward to their
            journaled coding.
        stale_journal_cleared: Journal rows dropped without action (the
            commit or an erase had already superseded the intent).
        relocated_lpns: LPNs whose kept pages the roll-forward moved —
            these carry fresh sequence stamps, which the
            crash-consistency harness must account for when comparing
            against the pre-cut oracle.
    """

    mapped_lpns: int = 0
    write_seq: int = 0
    sealed_blocks: int = 0
    open_blocks: int = 0
    free_blocks: int = 0
    retired_blocks: int = 0
    torn_rolled_forward: int = 0
    stale_journal_cleared: int = 0
    relocated_lpns: tuple[int, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        return {
            "mapped_lpns": self.mapped_lpns,
            "write_seq": self.write_seq,
            "sealed_blocks": self.sealed_blocks,
            "open_blocks": self.open_blocks,
            "free_blocks": self.free_blocks,
            "retired_blocks": self.retired_blocks,
            "torn_rolled_forward": self.torn_rolled_forward,
            "stale_journal_cleared": self.stale_journal_cleared,
            "relocated_lpns": list(self.relocated_lpns),
        }


def _rebuild_map(
    ftl: Ftl, state: DeviceState, report: MountReport
) -> np.ndarray:
    """Full-device OOB scan: last-write-wins map + validity rebuild.

    Returns the programmed-page index array (for the cursor heuristic).
    """
    nb = state.num_blocks
    ppb = state.pages_per_block
    # Physically programmed pages: offset < the block's program pointer.
    prog_mask = (
        np.arange(ppb, dtype=np.int64)[None, :]
        < state.next_page_np[:, None]
    )
    prog_ppns = np.flatnonzero(prog_mask.ravel())
    new_states = np.zeros(state.num_pages, dtype=np.uint8)
    if len(prog_ppns) == 0:
        state.page_state_np[:] = new_states
        state.valid_count_np[:] = 0
        report.write_seq = 0
        state.write_seq = 0
        ftl.map.load_forward(b"")
        return prog_ppns
    lpns = state.oob_lpn_np[prog_ppns]
    seqs = state.oob_seq_np[prog_ppns]
    if (lpns < 0).any():
        bad = int(prog_ppns[np.flatnonzero(lpns < 0)[0]])
        raise ValueError(
            f"programmed page {bad} carries no OOB record; the device "
            "state predates SPOR metadata and cannot be mounted"
        )
    # Newest stamp per LPN wins; everything else programmed is stale.
    order = np.lexsort((seqs, lpns))
    sorted_lpns = lpns[order]
    group_last = np.empty(len(order), dtype=bool)
    group_last[-1] = True
    group_last[:-1] = sorted_lpns[1:] != sorted_lpns[:-1]
    winner_ppns = prog_ppns[order][group_last]
    winner_lpns = sorted_lpns[group_last]

    new_states[prog_ppns] = _INVALID
    new_states[winner_ppns] = _VALID
    state.page_state_np[:] = new_states
    state.valid_count_np[:] = np.bincount(
        winner_ppns // ppb, minlength=nb
    )

    forward = np.full(int(winner_lpns[-1]) + 1, -1, dtype=np.int64)
    forward[winner_lpns] = winner_ppns
    ftl.map.load_forward(forward.tobytes())

    state.write_seq = int(seqs.max()) + 1
    report.write_seq = state.write_seq
    report.mapped_lpns = len(winner_lpns)
    return prog_ppns


def _rebuild_pools(
    ftl: Ftl, state: DeviceState, report: MountReport
) -> None:
    """Classify every block into free/active/used/retired per plane."""
    geometry = ftl.geometry
    ppb = state.pages_per_block
    bpp = geometry.blocks_per_plane
    for pool in ftl.table.planes:
        start = pool.plane_index * bpp
        flags = state.flags_np[start : start + bpp]
        pointers = state.next_page_np[start : start + bpp]
        retired = (flags & FLAG_RETIRED) != 0
        pool.retired = set(np.flatnonzero(retired).tolist())
        in_rotation = ~retired
        pool.used = set(
            np.flatnonzero(in_rotation & (pointers >= ppb)).tolist()
        )
        pool.free.clear()
        pool.free.extend(
            np.flatnonzero(in_rotation & (pointers == 0)).tolist()
        )
        pool.active = None
        partials = np.flatnonzero(
            in_rotation & (pointers > 0) & (pointers < ppb)
        ).tolist()
        if partials:
            # At most one open block per plane exists at any event
            # boundary; if several survive (defensive), the newest OOB
            # stamp marks the one that was accepting programs.
            def newest_stamp(in_plane: int) -> int:
                base = (start + in_plane) * ppb
                count = int(pointers[in_plane])
                return int(state.oob_seq_np[base : base + count].max())

            partials.sort(key=newest_stamp)
            pool.active = partials[-1]
            pool.used.update(partials[:-1])
        report.sealed_blocks += len(pool.used)
        report.open_blocks += int(pool.active is not None)
        report.free_blocks += len(pool.free)
        report.retired_blocks += len(pool.retired)
    ftl.grown_bad = sorted(
        np.flatnonzero((state.flags_np & FLAG_RETIRED) != 0).tolist()
    )


def _rebuild_allocator(
    ftl: Ftl, state: DeviceState, prog_ppns: np.ndarray
) -> None:
    """Drop dead planes from rotation; aim the cursor past the last write."""
    geometry = ftl.geometry
    dead = [
        pool.plane_index
        for pool in ftl.table.planes
        if len(pool.retired) == pool.total_blocks
    ]
    if dead:
        ftl.allocator.remove_planes(dead)
    if len(prog_ppns) == 0:
        return
    seqs = state.oob_seq_np[prog_ppns]
    newest_ppn = int(prog_ppns[int(np.argmax(seqs))])
    plane = geometry.plane_of_block(newest_ppn // state.pages_per_block)
    order = ftl.allocator.order
    if plane in order:
        ftl.allocator._cursor = (order.index(plane) + 1) % len(order)


def _resolve_journal(
    ftl: Ftl, state: DeviceState, now_us: float, report: MountReport
) -> None:
    """Roll suspect wordlines forward from the on-flash ADJUST journal."""
    geometry = ftl.geometry
    wpb = state.wordlines_per_block
    bits = state.bits_per_cell
    scratch: list[PhysOp] = []
    relocated: list[int] = []
    for gw in np.flatnonzero(state.journal_bit_np).tolist():
        slot, wordline = divmod(gw, wpb)
        block = ftl.table.blocks[slot]
        intended = int(state.journal_bit[gw])
        mode = block.wl_mode(wordline)
        committed = state.summary_wl_mode[gw] == intended
        if mode == CONVENTIONAL_WL or (committed and mode == intended):
            # Either the block was erased while the intent was in
            # flight (nothing left to tear) or the commit record landed
            # and only the journal clear was lost.  Drop the row.
            state.journal_bit[gw] = 0
            state.journal_kept[gw] = 0
            report.stale_journal_cleared += 1
            continue
        mask = int(state.journal_kept[gw])
        base = wordline * bits
        kept = [base + off for off in range(bits) if (mask >> off) & 1]
        block.mark_wordline_torn(wordline)
        block.locked = True
        try:
            for page in kept:
                if block.state_of(page) is PageState.VALID:
                    old_ppn = geometry.page_number(slot, page)
                    owner = ftl.map.owner(old_ppn)
                    if owner is not None:
                        relocated.append(owner)
                    ftl._move_page(block, page, now_us, scratch)
        finally:
            block.locked = False
        block.resolve_wordline(wordline, intended)
        block.commit_wordline_summary(wordline)
        ftl.counters.torn_adjust_recoveries += 1
        report.torn_rolled_forward += 1
    report.relocated_lpns = tuple(relocated)


def mount_device(
    state: DeviceState,
    geometry: Geometry,
    coding: GrayCoding,
    refresh_policy: RefreshPolicy,
    gc_policy: GcPolicy | None = None,
    rng: np.random.Generator | None = None,
    allocation: str = "cwdp",
    tracer: Tracer | None = None,
    now_us: float = 0.0,
) -> tuple[Ftl, MountReport]:
    """Rebuild a live FTL from surviving device arrays after power loss.

    Args:
        state: The device columns as the cut left them.  Mutated in
            place: validity is rebuilt from the OOB scan and suspect
            wordlines are resolved.
        geometry / coding / refresh_policy / gc_policy / rng /
            allocation / tracer: The FTL configuration, exactly as the
            pre-cut simulator was built (a mounted drive runs the same
            firmware it crashed under).
        now_us: Sim time the mount happens at — stamps the roll-forward
            relocations.

    Returns:
        ``(ftl, report)`` — a fully consistent FTL over ``state`` plus
        the mount accounting.

    Raises:
        ValueError: if a programmed page carries no OOB record (the
            state predates SPOR metadata) or geometry disagrees with
            ``state``.
    """
    table = BlockStatusTable(geometry, coding, state=state)
    ftl = Ftl(
        geometry,
        coding,
        refresh_policy,
        gc_policy=gc_policy,
        rng=rng,
        allocation=allocation,
        tracer=tracer,
        table=table,
    )
    report = MountReport()
    prog_ppns = _rebuild_map(ftl, state, report)
    _rebuild_pools(ftl, state, report)
    _rebuild_allocator(ftl, state, prog_ppns)
    # Torn-wordline resolution needs the map, pools and allocator live
    # (kept-page relocations allocate like any other write).
    _resolve_journal(ftl, state, now_us, report)
    return ftl, report
