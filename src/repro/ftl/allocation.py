"""Static page-allocation strategies (Jung & Kandemir [26]).

The baseline FTL stripes consecutive page writes across the device in
**CWDP** order — Channel first, then Chip (Way), then Die, then Plane — so
sequential I/O exploits channel-level parallelism before anything else.
Alternate orders are provided for the allocation-strategy ablation bench.
"""

from __future__ import annotations

from itertools import product

from ..flash.geometry import Geometry

__all__ = ["StaticAllocator", "cwdp_order", "pdwc_order"]


def cwdp_order(geometry: Geometry) -> list[int]:
    """Linear plane numbers in CWDP stripe order (channel varies fastest)."""
    sequence = []
    for plane, die, chip, channel in product(
        range(geometry.planes_per_die),
        range(geometry.dies_per_chip),
        range(geometry.chips_per_channel),
        range(geometry.channels),
    ):
        sequence.append(geometry.plane_index(channel, chip, die, plane))
    return sequence


def pdwc_order(geometry: Geometry) -> list[int]:
    """Plane-first stripe order (the opposite extreme, for ablation)."""
    sequence = []
    for channel, chip, die, plane in product(
        range(geometry.channels),
        range(geometry.chips_per_channel),
        range(geometry.dies_per_chip),
        range(geometry.planes_per_die),
    ):
        sequence.append(geometry.plane_index(channel, chip, die, plane))
    return sequence


class StaticAllocator:
    """Round-robin plane selection following a fixed stripe order.

    Attributes:
        order: Linear plane numbers in stripe order.
    """

    def __init__(self, geometry: Geometry, strategy: str = "cwdp") -> None:
        builders = {"cwdp": cwdp_order, "pdwc": pdwc_order}
        if strategy not in builders:
            raise ValueError(
                f"unknown allocation strategy {strategy!r}; "
                f"choose from {sorted(builders)}"
            )
        self.strategy = strategy
        self.order = builders[strategy](geometry)
        self._cursor = 0

    def next_plane(self) -> int:
        """Linear plane number the next page write should land on."""
        plane = self.order[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.order)
        return plane

    def peek(self, offset: int = 0) -> int:
        """Plane that ``offset`` selections from now would return."""
        return self.order[(self._cursor + offset) % len(self.order)]

    def advance(self, count: int) -> None:
        """Skip ``count`` selections at once (bulk-allocation fast path).

        Leaves the cursor exactly where ``count`` :meth:`next_plane`
        calls would have.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._cursor = (self._cursor + count) % len(self.order)

    def remove_planes(self, planes: list[int]) -> None:
        """Drop failed planes from the stripe rotation (die loss).

        The cursor keeps pointing at the same *surviving* plane it would
        have selected next, so allocation stays deterministic across the
        removal.

        Raises:
            RuntimeError: if removal would leave no planes to write to.
        """
        doomed = set(planes)
        if not doomed.intersection(self.order):
            return
        survivors = [plane for plane in self.order if plane not in doomed]
        if not survivors:
            raise RuntimeError(
                "cannot remove every plane from the allocation rotation"
            )
        rotation = self.order[self._cursor :] + self.order[: self._cursor]
        next_survivor = next(p for p in rotation if p not in doomed)
        self.order = survivors
        self._cursor = survivors.index(next_survivor)
