"""FTL substrate: mapping, allocation, GC, refresh, orchestration."""

from .allocation import StaticAllocator, cwdp_order, pdwc_order
from .blockstatus import BlockStatusTable
from .ftl import Ftl
from .gc import GcPolicy, select_victim
from .mapping import PageMap
from .ops import FlashTranslation, FtlCounters, OpKind, PhysOp, WriteResult
from .recovery import MountReport, mount_device
from .refresh import (
    RefreshMode,
    RefreshPlan,
    RefreshPolicy,
    RefreshReport,
    WordlinePlan,
    plan_refresh,
)
from .wear import WearStats, collect_wear, write_amplification

__all__ = [
    "StaticAllocator",
    "cwdp_order",
    "pdwc_order",
    "BlockStatusTable",
    "FlashTranslation",
    "Ftl",
    "FtlCounters",
    "WriteResult",
    "GcPolicy",
    "select_victim",
    "PageMap",
    "MountReport",
    "mount_device",
    "OpKind",
    "PhysOp",
    "RefreshMode",
    "RefreshPlan",
    "RefreshPolicy",
    "RefreshReport",
    "WordlinePlan",
    "plan_refresh",
    "WearStats",
    "collect_wear",
    "write_amplification",
]
