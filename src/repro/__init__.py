"""repro — reproduction of *Invalid Data-Aware Coding to Enhance the Read
Performance of High-Density Flash Memories* (Choi, Jung, Kandemir;
MICRO 2018).

Public API layers:

* :mod:`repro.core` — multi-level-cell codings and the IDA transform
  (the paper's contribution, cell-exact);
* :mod:`repro.flash` — flash device substrate (geometry, timing, cells,
  blocks, error models);
* :mod:`repro.ecc` — ECC substrate (SEC-DED codec, LDPC retry model);
* :mod:`repro.ftl` — flash translation layer (mapping, allocation, GC,
  baseline + IDA-modified refresh);
* :mod:`repro.sim` — event-driven SSD simulator;
* :mod:`repro.workloads` — traces, MSR format, calibrated synthetic
  workload catalog;
* :mod:`repro.experiments` — one harness per paper table / figure.

Quickstart::

    from repro.core import conventional_tlc, IdaTransform
    transform = IdaTransform(conventional_tlc(), valid_bits=(1, 2))
    assert transform.senses(2) == 2   # MSB: 4 senses -> 2
    assert transform.senses(1) == 1   # CSB: 2 senses -> 1

    from repro.experiments import RunScale, baseline, ida, run_workload
    from repro.workloads import workload
    base = run_workload(baseline(), workload("usr_1"), RunScale.quick())
    fast = run_workload(ida(0.2), workload("usr_1"), RunScale.quick())
    print(fast.mean_read_response_us / base.mean_read_response_us)
"""

from .core import (
    GrayCoding,
    IdaTransform,
    ReadLatencyModel,
    classify_validity,
    conventional_mlc,
    conventional_qlc,
    conventional_tlc,
    standard_coding,
    tlc_232,
)

__version__ = "1.0.0"

__all__ = [
    "GrayCoding",
    "IdaTransform",
    "ReadLatencyModel",
    "classify_validity",
    "conventional_mlc",
    "conventional_qlc",
    "conventional_tlc",
    "standard_coding",
    "tlc_232",
    "__version__",
]
