"""Sim-time SLO engine: declarative objectives with error budgets.

An :class:`SloObjective` states a promise about an observed health
metric — "read p99 stays at or under 600 us over a rolling 2 s window,
with at most 10% of that window in violation".  The :class:`SloEngine`
evaluates every objective once per health-sampling interval: each
interval contributes ``violated`` time when the metric exceeds the
threshold, a rolling window retains recent intervals, and the error
budget is the fraction of the window allowed to be in violation.

When the consumed budget reaches 1.0 a **breach event** fires: it is
emitted through the run's tracer (kind ``slo_breach``) and recorded for
the manifest, with the instantaneous *burn rate* (violation rate divided
by the budget rate — burn rate 1.0 means "exactly exhausting the budget
if this keeps up", >1 means faster).  A breach ends when consumption
falls back below the recovery fraction, so one long violation produces
one breach event, not one per interval.

Objectives are frozen dataclasses and the engine is rebuilt worker-side
from them, so SLO checking fans out across ``--jobs`` pools exactly like
fault plans do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["SloObjective", "SloEngine", "DEFAULT_READ_P99_SLO"]


@dataclass(frozen=True)
class SloObjective:
    """One declarative service-level objective, picklable by construction.

    Attributes:
        name: Label the breach events and summaries carry.
        metric: Key into the health sample's value dict (e.g.
            ``"read_p99_us"``, ``"read_mean_us"``, ``"read_retry_rate"``,
            ``"refresh_backlog"``).
        threshold: The objective is violated while ``value > threshold``.
        window_us: Rolling window the error budget is accounted over.
        budget: Fraction of the window allowed in violation (0 < b <= 1).
        recovery: Budget-consumption fraction below which an active
            breach clears (hysteresis; must be < 1).
    """

    name: str
    metric: str
    threshold: float
    window_us: float
    budget: float = 0.1
    recovery: float = 0.5

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if not self.metric:
            raise ValueError("objective needs a metric key")
        if self.window_us <= 0:
            raise ValueError("window_us must be positive")
        if not 0.0 < self.budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if not 0.0 <= self.recovery < 1.0:
            raise ValueError("recovery must be in [0, 1)")


#: The paper-flavoured default: reads stay responsive over a window two
#: refresh scans long.  Artifact code overrides threshold/window per
#: scale; this exists so ``SloEngine(objectives=None)`` means something.
DEFAULT_READ_P99_SLO = SloObjective(
    name="read-p99",
    metric="read_p99_us",
    threshold=600.0,
    window_us=2_000_000.0,
    budget=0.1,
)


class _ObjectiveState:
    """Rolling-window accounting for one objective."""

    __slots__ = (
        "objective",
        "window",
        "violated_us",
        "observed_us",
        "total_violated_us",
        "total_observed_us",
        "violations",
        "breaching",
        "breaches",
        "worst_burn_rate",
    )

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        # (start_us, end_us, violated_duration_us) per observed interval.
        self.window: deque[tuple[float, float, float]] = deque()
        self.violated_us = 0.0
        self.observed_us = 0.0
        self.total_violated_us = 0.0
        self.total_observed_us = 0.0
        self.violations = 0
        self.breaching = False
        self.breaches: list[dict] = []
        self.worst_burn_rate = 0.0

    def observe(self, start_us: float, end_us: float, value: float) -> dict | None:
        duration = max(0.0, end_us - start_us)
        violated = duration if value > self.objective.threshold else 0.0
        if violated:
            self.violations += 1
        self.window.append((start_us, end_us, violated))
        self.violated_us += violated
        self.observed_us += duration
        self.total_violated_us += violated
        self.total_observed_us += duration
        cutoff = end_us - self.objective.window_us
        while self.window and self.window[0][1] <= cutoff:
            self.violated_us -= self.window.popleft()[2]
        # Recompute observed time in window from retained entries: entries
        # are whole intervals, so partial-overlap precision is one sample
        # wide — fine at the collector cadence the engine runs at.
        self.observed_us = sum(e - s for s, e, _ in self.window)
        budget_us = self.objective.window_us * self.objective.budget
        consumed = self.violated_us / budget_us if budget_us > 0 else 0.0
        burn_rate = (
            (self.violated_us / self.observed_us) / self.objective.budget
            if self.observed_us > 0
            else 0.0
        )
        self.worst_burn_rate = max(self.worst_burn_rate, burn_rate)
        if not self.breaching and consumed >= 1.0:
            self.breaching = True
            breach = {
                "objective": self.objective.name,
                "metric": self.objective.metric,
                "time_us": end_us,
                "value": value,
                "threshold": self.objective.threshold,
                "budget_consumed": consumed,
                "burn_rate": burn_rate,
            }
            self.breaches.append(breach)
            return breach
        if self.breaching and consumed < self.objective.recovery:
            self.breaching = False
        return None

    def summary(self) -> dict:
        return {
            "objective": self.objective.name,
            "metric": self.objective.metric,
            "threshold": self.objective.threshold,
            "window_us": self.objective.window_us,
            "budget": self.objective.budget,
            "observed_us": self.total_observed_us,
            "violated_us": self.total_violated_us,
            "violating_intervals": self.violations,
            "worst_burn_rate": self.worst_burn_rate,
            "breaching": self.breaching,
            "breaches": list(self.breaches),
        }


class SloEngine:
    """Evaluates a set of objectives against periodic health samples.

    Construct with the objectives, optionally :meth:`bind_tracer`, then
    feed :meth:`observe` once per interval with the sample's value dict.
    A metric absent from the values (e.g. ``read_p99_us`` in an interval
    that completed no reads) is skipped — no reads is not a violation.
    """

    def __init__(self, objectives: "tuple[SloObjective, ...] | list[SloObjective] | None" = None):
        if objectives is None:
            objectives = (DEFAULT_READ_P99_SLO,)
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names: {names}")
        self._states = [_ObjectiveState(o) for o in objectives]
        self._tracer = None

    @property
    def objectives(self) -> tuple[SloObjective, ...]:
        return tuple(state.objective for state in self._states)

    def bind_tracer(self, tracer) -> None:
        """Route breach events into a run's tracer (``slo_breach`` kind)."""
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None

    def observe(self, start_us: float, end_us: float, values: dict) -> list[dict]:
        """Account one interval; returns breach events fired by it."""
        fired: list[dict] = []
        for state in self._states:
            value = values.get(state.objective.metric)
            if value is None:
                continue
            breach = state.observe(start_us, end_us, value)
            if breach is not None:
                fired.append(breach)
                if self._tracer is not None:
                    # The positional time argument already lands in the
                    # event as ``t_us``; passing ``time_us`` through the
                    # kwargs too would collide with the parameter name.
                    fields = {k: v for k, v in breach.items() if k != "time_us"}
                    self._tracer.emit(end_us, "slo_breach", **fields)
        return fired

    @property
    def breach_count(self) -> int:
        return sum(len(state.breaches) for state in self._states)

    def summary(self) -> dict:
        """Per-objective accounting, JSON-ready for manifests."""
        return {
            "objectives": [state.summary() for state in self._states],
            "breaches": self.breach_count,
        }
