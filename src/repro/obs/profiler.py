"""Sim-time profiler: where does simulated time actually go?

The paper's headline claim — IDA coding cuts read response ~28% by
removing senses — is a claim about *time attribution*: sense service vs
queue wait vs transfer vs ECC.  This module turns the stage-boundary
hooks the op pipeline already fires into that attribution story:

* **per-request latency attribution** — queue wait vs service time,
  split by stage (``sense`` / ``transfer`` / ``ecc`` / ``program`` /
  ``adjust`` / ``erase``) and by resource class (die / channel /
  latency-only pipeline), with a conservation invariant: for every
  completed request, critical-path queue wait + per-stage service +
  host overhead equals the recorded end-to-end response time;
* **per-resource timelines** — busy fraction and queue depth per
  resource class on the :class:`~repro.obs.interval.IntervalCollector`
  cadence, including the per-dispatch-class busy split (how much die
  time went to host reads vs writes vs internal work);
* **contention attribution** — who each class waited behind, from
  :meth:`Resource.wait_class_breakdown`: time a read spent queued
  behind a write that *started* during its wait vs behind the op
  already in service when it arrived (non-preemptive exposure);
* **exporters** — Chrome trace-event JSON (loadable in Perfetto or
  speedscope: one track per resource, one flow per request) via
  :meth:`SimProfiler.to_chrome_trace`, and a compact aggregate dict via
  :meth:`SimProfiler.aggregate` that run manifests embed and parallel
  sweeps transport.

Profiling is *passive*: hooks read clocks and counters, never schedule
events or touch RNG streams, so a profiled run produces byte-identical
metrics to an unprofiled one.  A run without a profiler pays only a
``profile is None`` check per stage boundary.  The profiler itself is
picklable (live engine/resource references are dropped and replaced by
their captured summaries), so aggregated profiles survive the
``RunResultPayload`` transport of ``--jobs`` sweeps.
"""

from __future__ import annotations

from ..sim.resources import (
    IoPriority,
    aggregate_queue_waits,
    aggregate_wait_breakdown,
    mean_utilisation,
)

__all__ = [
    "SimProfiler",
    "ProfiledOp",
    "ProfiledRequest",
    "validate_chrome_trace",
]

#: Profile aggregate schema version (bumped on breaking shape changes).
PROFILE_SCHEMA = 1

_STAGE_NAMES = ("sense", "transfer", "ecc", "program", "adjust", "erase")


class ProfiledOp:
    """Per-op stage collector handed to one :class:`OpPipeline`.

    The pipeline calls :meth:`note_stage` at every stage boundary with
    the stage object and the boundary clocks; the op extracts resource
    identity (``kind``/``index``) from the stage's resource and records
    a primitive tuple per stage — nothing here holds simulator state,
    so completed ops are trivially picklable.
    """

    __slots__ = ("profiler", "ctx", "klass", "stages")

    def __init__(
        self,
        profiler: "SimProfiler",
        ctx: "ProfiledRequest | None",
        klass: str,
    ) -> None:
        self.profiler = profiler
        self.ctx = ctx
        self.klass = klass
        #: ``(stage, res_kind, res_index, wait_us, start_us, end_us)``
        self.stages: list[tuple[str, str, int, float, float, float]] = []

    def note_stage(
        self, stage, submit_us: float, start_us: float, end_us: float
    ) -> None:
        """Record one completed stage (called by the pipeline)."""
        resource = stage.resource
        if resource is not None:
            kind, index = resource.kind, resource.index
        else:
            kind, index = "pipeline", 0
        wait = start_us - submit_us
        self.stages.append((stage.name, kind, index, wait, start_us, end_us))
        self.profiler._on_stage(
            self.klass, stage.name, kind, index, wait, start_us, end_us,
            self.ctx.request_id if self.ctx is not None else None,
        )

    def complete(self, end_us: float) -> None:
        """The pipeline finished; join the owning request, if any.

        Ops append in *completion* order, mirroring
        :class:`RequestSpan.add_page`: when the request completes, the
        last appended op is the critical-path op whose stages tile the
        dispatch -> completion window exactly.
        """
        if self.ctx is not None:
            self.ctx.ops.append(self)


class ProfiledRequest:
    """Profiling context of one in-flight host request."""

    __slots__ = ("request_id", "arrival_us", "kind", "ops")

    def __init__(self, request_id: int, arrival_us: float, kind: str) -> None:
        self.request_id = request_id
        self.arrival_us = arrival_us
        self.kind = kind  # "read" | "write"
        self.ops: list[ProfiledOp] = []


def _new_stage_cell() -> dict:
    return {"count": 0, "wait_us": 0.0, "service_us": 0.0}


def _new_request_cell() -> dict:
    return {
        "count": 0,
        "response_us": 0.0,
        "queue_wait_us": 0.0,
        "host_overhead_us": 0.0,
        "service_us": {},
    }


class SimProfiler:
    """Zero-copy consumer of the pipeline's stage-boundary hooks.

    Args:
        keep_events: Retain per-stage slice events for the Chrome trace
            exporter.  Disable for aggregate-only profiling (the worker
            side of a parallel sweep) — attribution, timelines and the
            contention breakdown are unaffected.
        max_events: Hard cap on retained slice events; beyond it new
            slices are counted in ``events_dropped`` instead of stored,
            bounding memory on long runs.

    Lifecycle (all calls made by the simulator/driver layers):
    ``bind`` -> ``start_run`` -> {``begin_request`` / ``begin_op`` /
    ``end_request`` / ``sample_interval``}* -> ``finish_run``.
    """

    def __init__(self, keep_events: bool = True, max_events: int = 200_000) -> None:
        self.enabled = True
        self.keep_events = keep_events
        self.max_events = max_events
        self.events_dropped = 0
        # Live simulator attachments (dropped on pickling).
        self._engine = None
        self._dies: list = []
        self._channels: list = []
        # (klass, stage, res_kind) -> {count, wait_us, service_us}
        self._stages: dict[tuple[str, str, str], dict] = {}
        # "read"/"write" -> request-attribution cell
        self._requests: dict[str, dict] = {}
        #: Largest |response - (wait + service + overhead)| seen — the
        #: conservation residual tests and fig_breakdown assert on.
        self.max_residual_us = 0.0
        # Slice events: (name, res_kind, res_index, ts, dur, request_id)
        self._events: list[tuple] = []
        # Flow endpoints: (phase "s"/"f", res_kind, res_index, ts, request_id)
        self._flows: list[tuple] = []
        self._timeline: list[dict] = []
        self._busy_base: dict[str, float] = {"die": 0.0, "channel": 0.0}
        self._die_class_base = [0.0] * len(IoPriority)
        self._run: dict = {"start_us": None, "end_us": None, "elapsed_us": 0.0}
        self._resources_summary: dict | None = None

    # ------------------------------------------------------------------
    # Simulator wiring
    # ------------------------------------------------------------------
    def bind(self, engine, dies: list, channels: list) -> None:
        """Attach to a simulator and arm per-resource wait profiling."""
        self._engine = engine
        self._dies = dies
        self._channels = channels
        for resource in (*dies, *channels):
            resource.enable_wait_profile()

    def start_run(self, now_us: float) -> None:
        self._run["start_us"] = now_us
        self._busy_base = {
            "die": sum(r.busy_us for r in self._dies),
            "channel": sum(r.busy_us for r in self._channels),
        }
        self._die_class_base = [
            sum(r.busy_us_by_class[k] for r in self._dies) for k in IoPriority
        ]

    def finish_run(self, now_us: float, elapsed_us: float) -> None:
        self._run["end_us"] = now_us
        self._run["elapsed_us"] = elapsed_us
        self._resources_summary = self._capture_resources(elapsed_us)

    # ------------------------------------------------------------------
    # Hooks (hot path)
    # ------------------------------------------------------------------
    def begin_request(
        self, request_id: int, arrival_us: float, kind: str
    ) -> ProfiledRequest:
        return ProfiledRequest(request_id, arrival_us, kind)

    def begin_op(self, klass: IoPriority, ctx: ProfiledRequest | None) -> ProfiledOp:
        return ProfiledOp(self, ctx, klass.name.lower())

    def _on_stage(
        self,
        klass: str,
        stage: str,
        res_kind: str,
        res_index: int,
        wait_us: float,
        start_us: float,
        end_us: float,
        request_id: int | None,
    ) -> None:
        cell = self._stages.get((klass, stage, res_kind))
        if cell is None:
            cell = self._stages[(klass, stage, res_kind)] = _new_stage_cell()
        cell["count"] += 1
        cell["wait_us"] += wait_us
        cell["service_us"] += end_us - start_us
        if self.keep_events:
            if len(self._events) < self.max_events:
                self._events.append(
                    (stage, res_kind, res_index, start_us, end_us - start_us,
                     request_id)
                )
            else:
                self.events_dropped += 1

    def end_request(
        self, ctx: ProfiledRequest, complete_us: float, host_overhead_us: float
    ) -> None:
        """Fold one completed request into the attribution aggregates."""
        response = complete_us - ctx.arrival_us + host_overhead_us
        cell = self._requests.get(ctx.kind)
        if cell is None:
            cell = self._requests[ctx.kind] = _new_request_cell()
        cell["count"] += 1
        cell["response_us"] += response
        cell["host_overhead_us"] += host_overhead_us
        attributed = host_overhead_us
        if ctx.ops:
            critical = ctx.ops[-1]
            service = cell["service_us"]
            for stage, _kind, _index, wait, start, end in critical.stages:
                cell["queue_wait_us"] += wait
                service[stage] = service.get(stage, 0.0) + (end - start)
                attributed += wait + (end - start)
        self.max_residual_us = max(self.max_residual_us, abs(response - attributed))
        if self.keep_events and ctx.ops:
            first = ctx.ops[0].stages
            last = ctx.ops[-1].stages
            if first and last:
                _, kind0, idx0, _, start0, _ = first[0]
                _, kind1, idx1, _, start1, _ = last[-1]
                self._flows.append(("s", kind0, idx0, start0, ctx.request_id))
                self._flows.append(("f", kind1, idx1, start1, ctx.request_id))

    def sample_interval(self, start_us: float, end_us: float) -> None:
        """Close one timeline sample (driven by the interval collector)."""
        elapsed = end_us - start_us
        die_busy = sum(r.busy_us for r in self._dies)
        chan_busy = sum(r.busy_us for r in self._channels)
        die_class = [
            sum(r.busy_us_by_class[k] for r in self._dies) for k in IoPriority
        ]

        def frac(busy: float, base: float, n: int) -> float:
            if elapsed <= 0 or n == 0:
                return 0.0
            return min(1.0, (busy - base) / (n * elapsed))

        self._timeline.append(
            {
                "start_us": start_us,
                "end_us": end_us,
                "die_busy_frac": frac(die_busy, self._busy_base["die"], len(self._dies)),
                "channel_busy_frac": frac(
                    chan_busy, self._busy_base["channel"], len(self._channels)
                ),
                "die_busy_by_class": {
                    k.name.lower(): frac(
                        die_class[k], self._die_class_base[k], len(self._dies)
                    )
                    for k in IoPriority
                },
                "die_queue_depth": sum(r.queued for r in self._dies),
                "channel_queue_depth": sum(r.queued for r in self._channels),
            }
        )
        self._busy_base = {"die": die_busy, "channel": chan_busy}
        self._die_class_base = die_class

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _capture_resources(self, elapsed_us: float) -> dict:
        return {
            "utilisation": {
                "die": mean_utilisation(self._dies, elapsed_us),
                "channel": mean_utilisation(self._channels, elapsed_us),
            },
            "queue_waits": {
                "die": aggregate_queue_waits(self._dies),
                "channel": aggregate_queue_waits(self._channels),
            },
            "wait_classes": {
                "die": aggregate_wait_breakdown(self._dies),
                "channel": aggregate_wait_breakdown(self._channels),
            },
        }

    def request_attribution(self, kind: str = "read") -> dict | None:
        """Mean end-to-end attribution of one request kind, or ``None``.

        The returned dict carries ``mean_response_us`` plus mean
        ``queue_wait_us`` / per-stage service / ``host_overhead_us``
        components that sum back to it (within ``max_residual_us``).
        """
        cell = self._requests.get(kind)
        if cell is None or cell["count"] == 0:
            return None
        n = cell["count"]
        return {
            "count": n,
            "mean_response_us": cell["response_us"] / n,
            "mean_queue_wait_us": cell["queue_wait_us"] / n,
            "mean_host_overhead_us": cell["host_overhead_us"] / n,
            "mean_service_us": {
                stage: total / n for stage, total in sorted(cell["service_us"].items())
            },
        }

    def aggregate(self) -> dict:
        """Compact, JSON-ready profile for manifests and sweep transport."""
        if self._resources_summary is None and self._dies:
            self._resources_summary = self._capture_resources(
                self._run["elapsed_us"]
            )
        stages: dict[str, dict] = {}
        for (klass, stage, res_kind), cell in sorted(self._stages.items()):
            row = stages.setdefault(klass, {})
            row[stage] = {
                "resource": res_kind,
                "count": cell["count"],
                "wait_us": cell["wait_us"],
                "service_us": cell["service_us"],
            }
        return {
            "schema": PROFILE_SCHEMA,
            "run": dict(self._run),
            "requests": {
                kind: self.request_attribution(kind)
                for kind in sorted(self._requests)
            },
            "stages": stages,
            "resources": self._resources_summary or {},
            "timeline": list(self._timeline),
            "max_residual_us": self.max_residual_us,
            "events_kept": len(self._events),
            "events_dropped": self.events_dropped,
        }

    def to_chrome_trace(self) -> dict:
        """Export slice events as Chrome trace-event JSON.

        One process per resource class (``die`` / ``channel`` /
        ``pipeline``), one thread per resource instance, one complete
        ("X") event per stage, one flow per request, and per-interval
        counter tracks for queue depth.  Load the file in
        https://ui.perfetto.dev or ``chrome://tracing``.
        """
        pids: dict[str, int] = {}
        threads: set[tuple[int, int]] = set()
        meta: list[dict] = []

        def pid_of(kind: str) -> int:
            pid = pids.get(kind)
            if pid is None:
                pid = pids[kind] = len(pids) + 1
                meta.append(
                    {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                     "args": {"name": kind}}
                )
            return pid

        def tid_of(kind: str, index: int) -> tuple[int, int]:
            pid = pid_of(kind)
            if (pid, index) not in threads:
                threads.add((pid, index))
                meta.append(
                    {"ph": "M", "name": "thread_name", "pid": pid, "tid": index,
                     "args": {"name": f"{kind} {index}"}}
                )
            return pid, index

        slices: list[dict] = []
        for name, kind, index, ts, dur, request_id in self._events:
            pid, tid = tid_of(kind, index)
            event = {
                "ph": "X", "name": name, "cat": "stage",
                "pid": pid, "tid": tid, "ts": ts, "dur": dur,
            }
            if request_id is not None:
                event["args"] = {"request_id": request_id}
            slices.append(event)
        for phase, kind, index, ts, request_id in self._flows:
            pid, tid = tid_of(kind, index)
            event = {
                "ph": phase, "name": "request", "cat": "request",
                "id": request_id, "pid": pid, "tid": tid, "ts": ts,
            }
            if phase == "f":
                event["bp"] = "e"
            slices.append(event)
        for sample in self._timeline:
            pid = pid_of("timeline")
            slices.append(
                {"ph": "C", "name": "queue depth", "pid": pid, "tid": 0,
                 "ts": sample["start_us"],
                 "args": {"die": sample["die_queue_depth"],
                          "channel": sample["channel_queue_depth"]}}
            )
        slices.sort(key=lambda e: e["ts"])
        return {
            "traceEvents": meta + slices,
            "displayTimeUnit": "ms",
            "otherData": {
                "profile_schema": PROFILE_SCHEMA,
                "events_dropped": self.events_dropped,
            },
        }

    # ------------------------------------------------------------------
    # Pickling (parallel-sweep transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Live simulator objects (engine heap full of closures, resources
        # holding engine references) cannot cross a process boundary;
        # capture their summary now and drop the references.
        if self._resources_summary is None and self._dies:
            self._resources_summary = self._capture_resources(
                self._run["elapsed_us"]
            )
        state = self.__dict__.copy()
        state["_engine"] = None
        state["_dies"] = []
        state["_channels"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


def validate_chrome_trace(trace: dict) -> list[str]:
    """Check a Chrome trace-event dict against the schema subset we emit.

    Returns a list of problems (empty = valid): non-monotonic ``ts``
    among non-metadata events, "X" events without a non-negative ``dur``,
    unstable pid/tid for a resource thread name, and unpaired flow ids.
    """
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts = None
    thread_names: dict[tuple[int, int], str] = {}
    flow_starts: set = set()
    flow_ends: set = set()
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                key = (event["pid"], event["tid"])
                name = event["args"]["name"]
                if thread_names.get(key, name) != name:
                    problems.append(f"event {i}: pid/tid {key} renamed")
                thread_names[key] = name
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event {i}: missing ts")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} < previous {last_ts}")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event without non-negative dur")
        elif ph == "s":
            flow_starts.add(event.get("id"))
        elif ph == "f":
            flow_ends.add(event.get("id"))
        elif ph not in ("C", "t"):
            problems.append(f"event {i}: unexpected phase {ph!r}")
    for missing in sorted(flow_starts - flow_ends):
        problems.append(f"flow {missing}: started but never finished")
    for missing in sorted(flow_ends - flow_starts):
        problems.append(f"flow {missing}: finished but never started")
    return problems
