"""Fixed-bucket histograms for latency time-series.

The interval collector samples read latencies into log-spaced buckets
instead of retaining every sample: a run with millions of reads then
costs a few hundred integers per interval rather than O(reads) floats,
which is what makes per-interval latency series affordable.  Exact
count/total/min/max are tracked alongside, so means are exact and only
percentiles are bucket-quantised (to the bucket's upper bound).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

__all__ = ["Histogram", "default_latency_bounds"]


def default_latency_bounds(
    lo_us: float = 10.0, hi_us: float = 1e6, per_decade: int = 8
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds covering ``[lo_us, hi_us]``.

    Eight buckets per decade keeps the quantisation error of a
    percentile under ~33% of its value — tight enough for trend plots
    and regression gates over 10 us .. 1 s latencies.
    """
    if lo_us <= 0 or hi_us <= lo_us:
        raise ValueError("need 0 < lo_us < hi_us")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: list[float] = []
    step = 0
    while True:
        bound = lo_us * 10 ** (step / per_decade)
        bounds.append(bound)
        if bound >= hi_us:
            break
        step += 1
    return tuple(bounds)


class Histogram:
    """Counting histogram over fixed ascending bucket bounds.

    Bucket ``i`` counts values ``<= bounds[i]`` (and greater than the
    previous bound); values above the last bound land in an overflow
    bucket whose reported percentile is the observed maximum.
    """

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_latency_bounds()
        )
        if not self.bounds:
            raise ValueError("need at least one bucket bound")
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("bounds must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile, quantised to bucket bounds."""
        if not 0 < q <= 100:
            raise ValueError("q must be in (0, 100]")
        if not self.count:
            return 0.0
        rank = max(1, -(-int(q * self.count) // 100))  # ceil(q/100 * count)
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index >= len(self.bounds):  # overflow bucket
                    return self.max
                return min(self.bounds[index], self.max)
        return self.max  # pragma: no cover - unreachable

    def _require_same_bounds(self, other: "Histogram", verb: str) -> None:
        """Mismatched bucket edges are a caller bug, never a quiet False.

        Two histograms with different bounds measure on different grids;
        comparing or merging them silently would let (say) a parity test
        "fail" with no hint that the shapes diverged, or mis-add bucket
        counts.  Fail loudly with both shapes in the message instead.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot {verb} histograms with different bucket bounds: "
                f"{len(self.bounds)} bounds [{self.bounds[0]:g} .. "
                f"{self.bounds[-1]:g}] vs {len(other.bounds)} bounds "
                f"[{other.bounds[0]:g} .. {other.bounds[-1]:g}]"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        self._require_same_bounds(other, "compare")
        return (
            self.counts == other.counts
            and self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
        )

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` (same bounds) into this histogram."""
        self._require_same_bounds(other, "merge")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> dict:
        """Count / mean / p50 / p95 / p99 / max, JSON-ready."""
        return {
            "count": self.count,
            "mean_us": self.mean,
            "p50_us": self.percentile(50),
            "p95_us": self.percentile(95),
            "p99_us": self.percentile(99),
            "max_us": self.max if self.count else 0.0,
        }

    def to_dict(self) -> dict:
        """Full bucket dump (for manifests and offline re-aggregation)."""
        return {
            "bounds_us": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total_us": self.total,
            "min_us": self.min if self.count else 0.0,
            "max_us": self.max if self.count else 0.0,
        }
