"""Offline trace analysis: the engine behind ``ida-repro inspect``.

Reads a JSONL trace produced by :class:`~repro.obs.tracer.JsonlSink`
and answers the two questions an SSD-simulation trace exists for:
*which reads were slow* (top-k with per-stage breakdown: queue wait vs
sense vs transfer vs ECC) and *what the device was doing* (event mix,
GC/refresh/IDA activity, end-of-run utilisation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .tracer import SCHEMA_VERSION, read_jsonl_trace

__all__ = [
    "TraceSummary",
    "TraceLoadError",
    "load_trace",
    "load_trace_safe",
    "summarize_trace",
    "format_trace_summary",
    "format_last_spans",
]


class TraceLoadError(ValueError):
    """A trace file could not be loaded; the message says why and where."""


def load_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace file into event dicts (alias of the reader)."""
    return read_jsonl_trace(path)


def load_trace_safe(path: str | Path) -> tuple[list[dict], list[str]]:
    """Load a JSONL trace, tolerating the failure modes real files have.

    A missing file or garbage mid-file raises :class:`TraceLoadError`
    with the offending path/line; an empty file loads as zero events;
    a truncated *final* line (the writing process died mid-event — the
    one corruption an append-only JSONL log produces on its own) is
    dropped with a warning instead of poisoning the whole trace.

    Returns ``(events, warnings)``.
    """
    target = Path(path)
    if not target.exists():
        raise TraceLoadError(f"trace file not found: {target}")
    try:
        lines = target.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TraceLoadError(f"cannot read trace {target}: {exc}") from exc
    numbered = [(i + 1, line.strip()) for i, line in enumerate(lines)]
    numbered = [(n, line) for n, line in numbered if line]
    events: list[dict] = []
    warnings: list[str] = []
    for position, (lineno, line) in enumerate(numbered):
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if position == len(numbered) - 1:
                warnings.append(
                    f"dropped truncated final event on line {lineno} "
                    f"(writer likely interrupted mid-write)"
                )
            else:
                raise TraceLoadError(
                    f"{target}: line {lineno} is not valid JSON ({exc.msg}); "
                    "not a JSONL trace?"
                ) from exc
    return events, warnings


@dataclass
class TraceSummary:
    """Everything the inspector extracts from one trace."""

    schema: int | None = None
    event_counts: dict[str, int] = field(default_factory=dict)
    slowest_reads: list[dict] = field(default_factory=list)
    read_count: int = 0
    mean_read_response_us: float = 0.0
    refresh_blocks: int = 0
    refresh_pages_moved: int = 0
    ida_adjusts: int = 0
    gc_passes: int = 0
    utilisation: dict[str, float] = field(default_factory=dict)
    #: ``slo_breach`` events in trace order (emitted by a bound
    #: :class:`~repro.obs.slo.SloEngine` when an error budget empties).
    slo_breaches: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form (the ``inspect --format json`` output)."""
        from dataclasses import asdict

        return asdict(self)


def summarize_trace(events: Sequence[dict], top: int = 10) -> TraceSummary:
    """Digest raw trace events into a :class:`TraceSummary`."""
    summary = TraceSummary()
    reads: list[dict] = []
    response_total = 0.0
    for event in events:
        kind = event.get("kind", "?")
        summary.event_counts[kind] = summary.event_counts.get(kind, 0) + 1
        if kind == "trace_header":
            summary.schema = event.get("schema")
        elif kind == "read_span":
            reads.append(event)
            response_total += event.get("response_us", 0.0)
        elif kind == "refresh":
            summary.refresh_blocks += 1
            summary.refresh_pages_moved += event.get("n_moved", 0)
        elif kind == "ida_adjust":
            summary.ida_adjusts += 1
        elif kind == "gc":
            summary.gc_passes += 1
        elif kind == "slo_breach":
            summary.slo_breaches.append(event)
        elif kind == "run_end":
            summary.utilisation = event.get("utilisation", {})
    summary.read_count = len(reads)
    if reads:
        summary.mean_read_response_us = response_total / len(reads)
    reads.sort(key=lambda e: e.get("response_us", 0.0), reverse=True)
    summary.slowest_reads = reads[: max(0, top)]
    return summary


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = ["  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in cells]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_trace_summary(events: Sequence[dict], top: int = 10) -> str:
    """Human-readable report for a trace (the ``inspect`` output)."""
    summary = summarize_trace(events, top=top)
    lines: list[str] = []
    schema = summary.schema if summary.schema is not None else "unversioned"
    lines.append(f"trace: {sum(summary.event_counts.values())} events (schema {schema}, current {SCHEMA_VERSION})")
    for kind in sorted(summary.event_counts):
        lines.append(f"  {kind:14s} {summary.event_counts[kind]}")
    lines.append("")

    if summary.slowest_reads:
        lines.append(
            f"top {len(summary.slowest_reads)} slowest reads "
            f"(of {summary.read_count}, mean {summary.mean_read_response_us:.1f} us):"
        )
        rows = []
        for event in summary.slowest_reads:
            critical = event.get("critical", {})
            wait = critical.get("queue_wait_us", 0.0)
            rows.append(
                [
                    event.get("request_id", "?"),
                    f"{event.get('arrival_us', 0.0):.0f}",
                    f"{event.get('response_us', 0.0):.1f}",
                    event.get("pages", 0),
                    f"{wait:.1f}",
                    f"{critical.get('sense_us', 0.0):.1f}",
                    f"{critical.get('transfer_us', 0.0):.1f}",
                    f"{critical.get('ecc_us', 0.0):.1f}",
                ]
            )
        lines.append(
            _table(
                ["req", "arrival_us", "response_us", "pages", "wait_us",
                 "sense_us", "xfer_us", "ecc_us"],
                rows,
            )
        )
        lines.append("")
    else:
        lines.append("no read spans in trace")
        lines.append("")

    if summary.refresh_blocks or summary.gc_passes or summary.ida_adjusts:
        lines.append(
            f"background: {summary.gc_passes} GC passes, "
            f"{summary.refresh_blocks} refreshes "
            f"({summary.refresh_pages_moved} pages moved), "
            f"{summary.ida_adjusts} IDA wordline adjustments"
        )
    if summary.slo_breaches:
        lines.append(f"SLO breaches: {len(summary.slo_breaches)}")
        rows = [
            [
                event.get("objective", "?"),
                f"{event.get('t_us', 0.0):.0f}",
                f"{event.get('value', 0.0):.3g}",
                f"{event.get('threshold', 0.0):.3g}",
                f"{event.get('burn_rate', 0.0):.2f}",
            ]
            for event in summary.slo_breaches
        ]
        lines.append(
            _table(["objective", "time_us", "value", "threshold", "burn"], rows)
        )
    if summary.utilisation:
        rows = [[name, f"{value:.1%}"] for name, value in sorted(summary.utilisation.items())]
        lines.append(_table(["resource", "utilisation"], rows))
    return "\n".join(lines).rstrip()


def format_last_spans(events: Sequence[dict], last: int) -> str:
    """The final ``last`` request spans of a trace, in completion order.

    The tail of a trace is where aborted or misbehaving runs tell their
    story (what was in flight when things went wrong); this renders just
    that window instead of the whole-trace summary.
    """
    if last < 1:
        raise ValueError("last must be >= 1")
    spans = [
        event for event in events
        if event.get("kind") in ("read_span", "write_span")
    ]
    if not spans:
        return "no request spans in trace"
    tail = spans[-last:]
    rows = []
    for event in tail:
        critical = event.get("critical", {})
        rows.append(
            [
                "R" if event.get("kind") == "read_span" else "W",
                event.get("request_id", "?"),
                f"{event.get('arrival_us', 0.0):.0f}",
                f"{event.get('response_us', 0.0):.1f}",
                event.get("pages", 0),
                f"{critical.get('queue_wait_us', 0.0):.1f}",
                f"{critical.get('sense_us', 0.0):.1f}",
                f"{critical.get('transfer_us', 0.0):.1f}",
                f"{critical.get('program_us', 0.0):.1f}",
            ]
        )
    table = _table(
        ["rw", "req", "arrival_us", "response_us", "pages", "wait_us",
         "sense_us", "xfer_us", "prog_us"],
        rows,
    )
    return f"last {len(tail)} of {len(spans)} request spans:\n{table}"
