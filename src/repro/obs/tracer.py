"""Structured event tracing with pluggable sinks.

The simulator emits one JSON-able dict per interesting occurrence — a host
request completing (with its per-page stage breakdown), a GC pass, a
refresh pass, an IDA voltage adjustment — stamped with *simulated* time.
Tracing is opt-in: the default :data:`NULL_TRACER` advertises
``enabled = False`` so every instrumentation site reduces to a single
attribute check and uninstrumented runs stay within noise of the
pre-tracing simulator (see ``benchmarks/bench_obs_overhead.py``).

Event schema (one dict per event, ``kind`` discriminates):

* every event carries ``kind`` (str) and ``t_us`` (simulated time);
* the first event of a trace is a ``trace_header`` carrying
  ``schema`` = :data:`SCHEMA_VERSION`;
* see ``docs/observability.md`` for the per-kind field tables.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Iterator

__all__ = [
    "SCHEMA_VERSION",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "read_jsonl_trace",
]

#: Version of the trace-event and run-manifest schema.  Bump when the
#: field layout of any event kind changes incompatibly.
SCHEMA_VERSION = 1


class TraceSink:
    """Where trace events go.  Subclasses override :meth:`write`."""

    def write(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""


class MemorySink(TraceSink):
    """In-memory sink; optionally a bounded ring buffer.

    Args:
        capacity: Keep only the most recent ``capacity`` events
            (``None`` = unbounded).  A ring buffer lets long runs trace
            "the last N events before the interesting thing happened"
            without unbounded growth.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self.events: deque[dict] = deque(maxlen=capacity)

    def write(self, event: dict) -> None:
        self.events.append(event)

    def by_kind(self, kind: str) -> list[dict]:
        """All retained events of one kind, in emission order."""
        return [e for e in self.events if e.get("kind") == kind]


class JsonlSink(TraceSink):
    """Append events to a JSON-lines file, one compact object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def write(self, event: dict) -> None:
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class Tracer:
    """Front-end the simulator emits events through.

    Writes a ``trace_header`` event (carrying the schema version) to the
    sink on construction, then forwards every :meth:`emit` as a flat
    dict.  Hot paths must guard on :attr:`enabled` before building event
    payloads so the disabled case costs one attribute load.
    """

    enabled: bool = True

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self.events_emitted = 0
        sink.write({"kind": "trace_header", "t_us": 0.0, "schema": SCHEMA_VERSION})

    def emit(self, time_us: float, kind: str, **fields: object) -> None:
        """Record one event at simulated ``time_us``."""
        event: dict = {"kind": kind, "t_us": time_us}
        event.update(fields)
        self.sink.write(event)
        self.events_emitted += 1

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullTracer(Tracer):
    """Disabled tracer: every emit is a no-op, no sink, no header."""

    enabled = False

    def __init__(self) -> None:
        self.sink = None  # type: ignore[assignment]
        self.events_emitted = 0

    def emit(self, time_us: float, kind: str, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared disabled tracer; the simulator default.  Stateless, safe to share.
NULL_TRACER = NullTracer()


def read_jsonl_trace(path: str | Path) -> list[dict]:
    """Load a JSONL trace file back into a list of event dicts."""
    return list(iter_jsonl_trace(path))


def iter_jsonl_trace(path: str | Path) -> Iterator[dict]:
    """Stream a JSONL trace file without holding it all in memory."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
