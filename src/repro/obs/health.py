"""SMART-style device-health telemetry sampled on the collector cadence.

A :class:`HealthMonitor` rides an :class:`~repro.obs.interval.IntervalCollector`:
each closed interval also closes one :class:`HealthSnapshot` capturing
the device's degradation state at that point in its lifetime — wear
percentiles over the per-block erase counts, retired/grown-bad block
counts, estimated RBER per block group (wear + retention age through
:class:`~repro.flash.errors.RberModel`), read-retry and reclaim rates,
the refresh backlog, the IDA E-state exposure fraction, and per-class
queue depths.  End-of-run aggregates cannot show any of this: a refresh
storm, a retry ramp or a wear cliff is only visible as a *trajectory*.

Like every observability hook the monitor is passive (it reads counters,
never mutates simulator state or RNG streams) and optional (``None``
costs one check).  Its output is plain JSON dicts, so a run's health
series rides the pickle-safe pool payload unchanged and ``--jobs N``
produces byte-identical series to an inline run.

The monitor optionally publishes into a
:class:`~repro.obs.metrics.MetricsRegistry` (for Prometheus / JSON
export) and feeds an :class:`~repro.obs.slo.SloEngine` (for error-budget
breach events); both are themselves optional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..flash.errors import RberModel, ReadRetryModel
from .metrics import MetricsRegistry
from .slo import SloEngine

__all__ = ["HEALTH_SCHEMA", "HealthSnapshot", "HealthMonitor"]

#: Version of the health-snapshot dict layout.
HEALTH_SCHEMA = 1

#: Simulated microseconds per retention day (for RBER retention aging).
_US_PER_DAY = 86_400e6


@dataclass
class HealthSnapshot:
    """One periodic device-health sample (all fields JSON-ready).

    Counter-derived fields (retries, reclaims, GC/refresh activity) are
    **deltas over the interval**; censuses (wear, blocks, queue depths,
    backlog) are instantaneous at ``end_us``.
    """

    start_us: float
    end_us: float
    wear: dict = field(default_factory=dict)
    in_use_blocks: int = 0
    free_blocks: int = 0
    retired_blocks: int = 0
    grown_bad_blocks: int = 0
    ida_blocks: int = 0
    ida_exposure: float = 0.0
    ida_read_fraction: float = 0.0
    rber_groups: list = field(default_factory=list)
    reads: int = 0
    read_retries: int = 0
    read_retry_rate: float = 0.0
    read_reclaims: int = 0
    uncorrectable_reads: int = 0
    refresh_backlog: int = 0
    refresh_invocations: int = 0
    refresh_page_moves: int = 0
    gc_invocations: int = 0
    gc_page_moves: int = 0
    queue_depth: dict = field(default_factory=dict)
    read_latency: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "start_us": self.start_us,
            "end_us": self.end_us,
            "wear": dict(self.wear),
            "in_use_blocks": self.in_use_blocks,
            "free_blocks": self.free_blocks,
            "retired_blocks": self.retired_blocks,
            "grown_bad_blocks": self.grown_bad_blocks,
            "ida_blocks": self.ida_blocks,
            "ida_exposure": self.ida_exposure,
            "ida_read_fraction": self.ida_read_fraction,
            "rber_groups": [dict(g) for g in self.rber_groups],
            "reads": self.reads,
            "read_retries": self.read_retries,
            "read_retry_rate": self.read_retry_rate,
            "read_reclaims": self.read_reclaims,
            "uncorrectable_reads": self.uncorrectable_reads,
            "refresh_backlog": self.refresh_backlog,
            "refresh_invocations": self.refresh_invocations,
            "refresh_page_moves": self.refresh_page_moves,
            "gc_invocations": self.gc_invocations,
            "gc_page_moves": self.gc_page_moves,
            "queue_depth": dict(self.queue_depth),
            "read_latency": dict(self.read_latency),
        }


def _percentile(sorted_values, q: float) -> float:
    """Nearest-rank percentile of an ascending sequence (empty -> 0)."""
    if not len(sorted_values):
        return 0.0
    rank = max(1, -(-int(q * len(sorted_values)) // 100))
    return float(sorted_values[rank - 1])


class HealthMonitor:
    """Samples a bound simulator's degradation state periodically.

    Usage mirrors the profiler: construct, pass to the simulator (which
    calls :meth:`bind` and attaches it to the interval collector), run;
    read :meth:`series` / :meth:`summary` / :meth:`to_payload` after.

    Args:
        registry: Optional metrics registry the monitor publishes each
            sample into (gauges for censuses, counters for deltas).
        slo: Optional SLO engine fed one value dict per sample.
        block_groups: How many equal-size block groups the RBER trend is
            reported over (die-sized groups tell the story; per-block
            would bloat every snapshot).
        rber_model: Wear/retention error model for the RBER estimate.
        rated_pe_cycles: Endurance budget the wear fraction is against.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        slo: SloEngine | None = None,
        block_groups: int = 8,
        rber_model: RberModel | None = None,
        rated_pe_cycles: int = 3000,
    ) -> None:
        if block_groups < 1:
            raise ValueError("block_groups must be >= 1")
        self.registry = registry
        self.slo = slo
        self.block_groups = block_groups
        self.rber_model = rber_model or RberModel(rated_pe_cycles=rated_pe_cycles)
        self.rated_pe_cycles = rated_pe_cycles
        self.snapshots: list[HealthSnapshot] = []
        self._sim = None
        self._last: dict[str, int] = {}
        self._gauges: dict = {}

    # ------------------------------------------------------------------
    # Simulator wiring
    # ------------------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach to a simulator (called by ``SsdSimulator.__init__``)."""
        self._sim = sim
        self._last = {}
        if self.slo is not None:
            self.slo.bind_tracer(sim.tracer)
        if self.registry is not None:
            self._declare_metrics()

    def _declare_metrics(self) -> None:
        reg = self.registry
        g = self._gauges
        g["wear_p99"] = reg.gauge(
            "device_wear_p99_erases", "p99 of per-block erase counts"
        ).unlabeled
        g["wear_max"] = reg.gauge(
            "device_wear_max_erases", "most-worn block's erase count"
        ).unlabeled
        g["retired"] = reg.gauge(
            "device_retired_blocks", "blocks permanently out of rotation"
        ).unlabeled
        g["free"] = reg.gauge("device_free_blocks", "erased blocks available").unlabeled
        g["ida_exposure"] = reg.gauge(
            "device_ida_exposure", "fraction of in-use blocks carrying IDA wordlines"
        ).unlabeled
        g["refresh_backlog"] = reg.gauge(
            "device_refresh_backlog_blocks", "full blocks past the refresh period"
        ).unlabeled
        g["rber"] = reg.gauge(
            "device_estimated_rber",
            "estimated raw bit error rate per block group",
            labels=("block_group",),
        )
        g["queue_depth"] = reg.gauge(
            "device_queue_depth",
            "instantaneous queued ops per resource kind and request class",
            labels=("resource", "request_class"),
        )

    # ------------------------------------------------------------------
    # Sampling (driven by IntervalCollector._close_interval)
    # ------------------------------------------------------------------
    def sample(self, start_us: float, end_us: float, read_hist=None) -> HealthSnapshot:
        """Close one health interval; passive, never touches sim state."""
        if self._sim is None:
            raise RuntimeError("health monitor not bound to a simulator")
        sim = self._sim
        ftl = sim.ftl
        table = ftl.table
        counters = ftl.counters
        metrics = sim.metrics

        erases = np.sort(table.state.erase_count_np)
        total_erases = int(erases.sum())
        n = len(erases)
        wear = {
            "mean": total_erases / n if n else 0.0,
            "p50": _percentile(erases, 50),
            "p90": _percentile(erases, 90),
            "p99": _percentile(erases, 99),
            "max": float(erases[-1]) if n else 0.0,
            "spread": float(erases[-1] - erases[0]) if n else 0.0,
            "total": total_erases,
            "life_used": (int(erases[-1]) / self.rated_pe_cycles) if n else 0.0,
        }

        in_use = table.in_use_blocks()
        ida = table.ida_blocks()
        snap = HealthSnapshot(
            start_us=start_us,
            end_us=end_us,
            wear=wear,
            in_use_blocks=in_use,
            free_blocks=table.free_blocks(),
            retired_blocks=table.retired_blocks(),
            ida_blocks=ida,
            ida_exposure=ida / in_use if in_use else 0.0,
            rber_groups=self._rber_groups(table, end_us),
            refresh_backlog=self._refresh_backlog(ftl, end_us),
            queue_depth=self._queue_depths(sim),
        )

        # Interval deltas over live counters (GC/refresh counters live on
        # the FTL until fold_counters; retries/mix live on SimMetrics).
        deltas = {
            "reads": metrics.read_response.count,
            "read_retries": metrics.read_retries,
            "read_reclaims": counters.read_reclaims,
            "uncorrectable_reads": counters.uncorrectable_reads,
            "grown_bad_blocks": counters.grown_bad_blocks,
            "refresh_invocations": counters.refresh_invocations,
            "refresh_page_moves": counters.refresh_page_moves,
            "gc_invocations": counters.gc_invocations,
            "gc_page_moves": counters.gc_page_moves,
            "ida_fast_reads": metrics.read_mix.ida_fast_reads,
            "page_reads": metrics.read_mix.total,
        }
        last = self._last
        delta = {key: value - last.get(key, 0) for key, value in deltas.items()}
        self._last = deltas
        snap.reads = delta["reads"]
        snap.read_retries = delta["read_retries"]
        snap.read_retry_rate = (
            delta["read_retries"] / delta["page_reads"] if delta["page_reads"] else 0.0
        )
        snap.read_reclaims = delta["read_reclaims"]
        snap.uncorrectable_reads = delta["uncorrectable_reads"]
        snap.grown_bad_blocks = counters.grown_bad_blocks
        snap.refresh_invocations = delta["refresh_invocations"]
        snap.refresh_page_moves = delta["refresh_page_moves"]
        snap.gc_invocations = delta["gc_invocations"]
        snap.gc_page_moves = delta["gc_page_moves"]
        snap.ida_read_fraction = (
            delta["ida_fast_reads"] / delta["page_reads"]
            if delta["page_reads"]
            else 0.0
        )
        if read_hist is not None:
            snap.read_latency = read_hist.summary()

        self.snapshots.append(snap)
        if self.registry is not None:
            self._publish(snap)
        if self.slo is not None:
            self.slo.observe(start_us, end_us, self._slo_values(snap))
        return snap

    def _rber_groups(self, table, now_us: float) -> list[dict]:
        """Estimated RBER per equal-size block group (wear + retention)."""
        state = table.state
        num_blocks = state.num_blocks
        groups = min(self.block_groups, num_blocks) or 1
        size = -(-num_blocks // groups)  # ceil
        erase_col = state.erase_count_np
        prog_col = state.programmed_at_us_np
        out: list[dict] = []
        for index in range(groups):
            lo, hi = index * size, min((index + 1) * size, num_blocks)
            if lo >= hi:
                continue
            members = hi - lo
            pe = int(erase_col[lo:hi].sum()) / members
            prog = prog_col[lo:hi]
            aged = prog[~np.isnan(prog) & (prog < now_us)]
            age_days = (
                float((now_us - aged).mean()) / _US_PER_DAY if len(aged) else 0.0
            )
            rber = self.rber_model.rber(int(pe), age_days)
            out.append(
                {
                    "group": index,
                    "blocks": members,
                    "mean_pe_cycles": pe,
                    "mean_retention_days": age_days,
                    "est_rber": rber,
                    "retry_fail_prob": ReadRetryModel.for_rber(rber).fail_prob,
                }
            )
        return out

    @staticmethod
    def _refresh_backlog(ftl, now_us: float) -> int:
        """Full blocks past the refresh period, not yet refreshed.

        The same candidacy test the refresh daemon's scan applies; a
        growing backlog means the scan cadence (or the drain rate of the
        internal queues) is not keeping up with aging.
        """
        period = ftl.refresh_policy.period_us
        state = ftl.table.state
        prog = state.programmed_at_us_np
        with np.errstate(invalid="ignore"):  # NaN = never programmed
            overdue = (
                (state.next_page_np >= state.pages_per_block)
                & (state.valid_count_np > 0)
                & (now_us - prog >= period)
            )
        return int(np.count_nonzero(overdue))

    @staticmethod
    def _queue_depths(sim) -> dict:
        """Instantaneous per-class queue depths by resource kind."""
        out: dict = {}
        for kind, resources in (("die", sim.dies), ("channel", sim.channels)):
            merged: dict[str, int] = {}
            for resource in resources:
                for cls, depth in resource.queued_by_class().items():
                    merged[cls] = merged.get(cls, 0) + depth
            merged["total"] = sum(merged.values())
            out[kind] = merged
        return out

    def _publish(self, snap: HealthSnapshot) -> None:
        """Mirror the snapshot's censuses into registry gauges.

        Counters (retries, GC, refresh, retirement) are owned by the
        instrument points themselves (simulator, FTL, ECC); the monitor
        only publishes the sampled state nobody else observes live.
        """
        g = self._gauges
        g["wear_p99"].set(snap.wear["p99"])
        g["wear_max"].set(snap.wear["max"])
        g["retired"].set(snap.retired_blocks)
        g["free"].set(snap.free_blocks)
        g["ida_exposure"].set(snap.ida_exposure)
        g["refresh_backlog"].set(snap.refresh_backlog)
        for group in snap.rber_groups:
            g["rber"].labels(block_group=group["group"]).set(group["est_rber"])
        for kind, depths in snap.queue_depth.items():
            for cls, depth in depths.items():
                if cls == "total":
                    continue
                g["queue_depth"].labels(resource=kind, request_class=cls).set(depth)

    def _slo_values(self, snap: HealthSnapshot) -> dict:
        values = {
            "read_retry_rate": snap.read_retry_rate,
            "refresh_backlog": float(snap.refresh_backlog),
            "ida_exposure": snap.ida_exposure,
            "queue_depth_total": float(
                sum(d.get("total", 0) for d in snap.queue_depth.values())
            ),
        }
        latency = snap.read_latency
        if latency.get("count"):
            values["read_mean_us"] = latency["mean_us"]
            values["read_p50_us"] = latency["p50_us"]
            values["read_p95_us"] = latency["p95_us"]
            values["read_p99_us"] = latency["p99_us"]
        return values

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def series(self) -> list[dict]:
        """The snapshots as JSON-ready dicts, in time order."""
        return [snap.to_dict() for snap in self.snapshots]

    def summary(self) -> dict:
        """Final-state aggregates a manifest can embed without the series."""
        final = self.snapshots[-1] if self.snapshots else None
        return {
            "schema": HEALTH_SCHEMA,
            "samples": len(self.snapshots),
            "wear": dict(final.wear) if final else {},
            "retired_blocks": final.retired_blocks if final else 0,
            "grown_bad_blocks": final.grown_bad_blocks if final else 0,
            "ida_exposure": final.ida_exposure if final else 0.0,
            "refresh_backlog": final.refresh_backlog if final else 0,
            "read_retries": sum(s.read_retries for s in self.snapshots),
            "read_reclaims": sum(s.read_reclaims for s in self.snapshots),
            "uncorrectable_reads": sum(s.uncorrectable_reads for s in self.snapshots),
            "peak_queue_depth": max(
                (
                    sum(d.get("total", 0) for d in s.queue_depth.values())
                    for s in self.snapshots
                ),
                default=0,
            ),
            "max_est_rber": max(
                (g["est_rber"] for s in self.snapshots for g in s.rber_groups),
                default=0.0,
            ),
        }

    def to_payload(self) -> dict:
        """Everything that rides the pool transport, as one JSON dict."""
        payload = {
            "schema": HEALTH_SCHEMA,
            "summary": self.summary(),
            "series": self.series(),
        }
        if self.slo is not None:
            payload["slo"] = self.slo.summary()
        if self.registry is not None:
            payload["registry"] = self.registry.snapshot()
        return payload
