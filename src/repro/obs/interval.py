"""Interval time-series: periodic samples of a running simulation.

The collector rides the simulation clock: every ``interval_us`` it closes
one :class:`IntervalSnapshot` capturing what happened since the previous
tick — requests completed, bytes moved, a fixed-bucket read-latency
histogram, mean die/channel utilisation over the interval, and the
instantaneous queue depths at the tick.  The resulting series is what the
paper-style "where does read time go over time" plots and regression
gates consume; end-of-run aggregates cannot show a refresh storm.

Sampling is passive: ticks read counters and never mutate simulator
state, so a collected run produces byte-identical :class:`SimMetrics`
to an uncollected one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .histogram import Histogram

__all__ = ["IntervalCollector", "IntervalSnapshot"]


@dataclass
class IntervalSnapshot:
    """What one sampling interval observed.

    Rates (throughput, utilisation) are over ``[start_us, end_us)``;
    queue depths are instantaneous at ``end_us``.
    """

    start_us: float
    end_us: float
    reads_completed: int = 0
    writes_completed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_latency: dict = field(default_factory=dict)
    die_utilisation: float = 0.0
    channel_utilisation: float = 0.0
    die_queue_depth: int = 0
    channel_queue_depth: int = 0
    events_processed: int = 0

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    def read_throughput_mb_s(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return (self.bytes_read / 1e6) / (self.duration_us / 1e6)

    def to_dict(self) -> dict:
        return {
            "start_us": self.start_us,
            "end_us": self.end_us,
            "reads_completed": self.reads_completed,
            "writes_completed": self.writes_completed,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "read_throughput_mb_s": self.read_throughput_mb_s(),
            "read_latency": self.read_latency,
            "die_utilisation": self.die_utilisation,
            "channel_utilisation": self.channel_utilisation,
            "die_queue_depth": self.die_queue_depth,
            "channel_queue_depth": self.channel_queue_depth,
            "events_processed": self.events_processed,
        }


class IntervalCollector:
    """Samples a bound simulator into an interval time-series.

    Usage: construct, pass to the simulator (which calls :meth:`bind`),
    run; read :attr:`snapshots` / :meth:`summary` afterwards.  One
    collector serves one run.

    Args:
        interval_us: Sampling period on the simulated clock.
        latency_bounds: Bucket bounds for the per-interval read-latency
            histograms (default: log-spaced 10 us .. 1 s).
    """

    def __init__(
        self,
        interval_us: float,
        latency_bounds: tuple[float, ...] | None = None,
    ) -> None:
        if interval_us <= 0:
            raise ValueError("interval_us must be positive")
        self.interval_us = interval_us
        self._latency_bounds = latency_bounds
        self.snapshots: list[IntervalSnapshot] = []
        #: Cumulative read-latency histogram over the whole run.
        self.read_latency_total = Histogram(latency_bounds)
        self._engine = None
        self._dies: list = []
        self._channels: list = []
        self._profiler = None
        self._health = None
        self._running = False
        self._reset_interval_counters(0.0)

    # ------------------------------------------------------------------
    # Simulator wiring
    # ------------------------------------------------------------------
    def bind(self, engine, dies: list, channels: list) -> None:
        """Attach to a simulator's engine and resources (idempotent)."""
        self._engine = engine
        self._dies = dies
        self._channels = channels

    def attach_profiler(self, profiler) -> None:
        """Drive a profiler's timeline from this collector's cadence.

        Each closed interval also closes one profiler timeline sample,
        so utilization/queue-depth timelines share the run's sampling
        grid instead of inventing a second clock.
        """
        self._profiler = profiler

    def attach_health(self, health) -> None:
        """Drive a health monitor from this collector's cadence.

        Each closed interval also closes one
        :class:`~repro.obs.health.HealthMonitor` sample, so the health
        trajectory shares the run's sampling grid with the latency
        time-series and profiler timelines.
        """
        self._health = health

    def start(self) -> None:
        """Begin sampling from the engine's current time."""
        if self._engine is None:
            raise RuntimeError("collector not bound to a simulator")
        if self._running:
            raise RuntimeError("collector already started (one run each)")
        self._running = True
        self._reset_interval_counters(self._engine.now)
        self._busy_baseline = self._busy_totals()
        self._processed_baseline = self._engine.processed
        self._engine.after(self.interval_us, self._tick)

    def finish(self) -> None:
        """Close the trailing partial interval, if it saw any time."""
        if not self._running:
            return
        self._running = False
        if self._engine.now > self._interval_start:
            self._close_interval()

    # ------------------------------------------------------------------
    # Completion hooks (called by the simulator)
    # ------------------------------------------------------------------
    def record_read(self, response_us: float, nbytes: int) -> None:
        self._reads += 1
        self._bytes_read += nbytes
        self._read_hist.add(response_us)
        self.read_latency_total.add(response_us)

    def record_write(self, response_us: float, nbytes: int) -> None:
        self._writes += 1
        self._bytes_written += nbytes

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _busy_totals(self) -> tuple[float, float]:
        return (
            sum(r.busy_us for r in self._dies),
            sum(r.busy_us for r in self._channels),
        )

    def _reset_interval_counters(self, start_us: float) -> None:
        self._interval_start = start_us
        self._reads = 0
        self._writes = 0
        self._bytes_read = 0
        self._bytes_written = 0
        self._read_hist = Histogram(self._latency_bounds)
        self._busy_baseline = (0.0, 0.0)
        self._processed_baseline = 0

    def _close_interval(self) -> None:
        now = self._engine.now
        elapsed = now - self._interval_start
        if self._profiler is not None:
            self._profiler.sample_interval(self._interval_start, now)
        if self._health is not None:
            # Sampled before the interval histogram resets so the health
            # snapshot sees this interval's read-latency distribution.
            self._health.sample(self._interval_start, now, self._read_hist)
        die_busy, chan_busy = self._busy_totals()

        def util(busy: float, baseline: float, n: int) -> float:
            if elapsed <= 0 or n == 0:
                return 0.0
            return min(1.0, (busy - baseline) / (n * elapsed))

        self.snapshots.append(
            IntervalSnapshot(
                start_us=self._interval_start,
                end_us=now,
                reads_completed=self._reads,
                writes_completed=self._writes,
                bytes_read=self._bytes_read,
                bytes_written=self._bytes_written,
                read_latency=self._read_hist.summary(),
                die_utilisation=util(die_busy, self._busy_baseline[0], len(self._dies)),
                channel_utilisation=util(
                    chan_busy, self._busy_baseline[1], len(self._channels)
                ),
                die_queue_depth=sum(r.queued for r in self._dies),
                channel_queue_depth=sum(r.queued for r in self._channels),
                events_processed=self._engine.processed - self._processed_baseline,
            )
        )
        self._reset_interval_counters(now)
        self._busy_baseline = (die_busy, chan_busy)
        self._processed_baseline = self._engine.processed

    def _tick(self) -> None:
        if not self._running:
            return
        if self._engine.pending:
            self._close_interval()
            # Reschedule only while other events remain: a self-perpetuating
            # tick would keep engine.run() from ever draining.
            self._engine.after(self.interval_us, self._tick)
            return
        # Trailing tick: nothing real remains, so this tick's own firing
        # is a phantom clock advance.  Rewind to the last real event and
        # close the residual interval there, keeping a collected run's
        # elapsed time (hence SimMetrics) identical to an uncollected one.
        self._running = False
        self._engine.rewind_to_previous_event()
        if self._engine.now > self._interval_start:
            self._close_interval()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def time_series(self) -> list[dict]:
        """The snapshots as JSON-ready dicts, in time order."""
        return [snap.to_dict() for snap in self.snapshots]

    def summary(self) -> dict:
        """Aggregates a manifest can embed without the full series."""
        peak_read_tp = max(
            (s.read_throughput_mb_s() for s in self.snapshots), default=0.0
        )
        peak_queue = max(
            (s.die_queue_depth + s.channel_queue_depth for s in self.snapshots),
            default=0,
        )
        return {
            "interval_us": self.interval_us,
            "intervals": len(self.snapshots),
            "read_latency": self.read_latency_total.summary(),
            "peak_read_throughput_mb_s": peak_read_tp,
            "peak_queue_depth": peak_queue,
        }
