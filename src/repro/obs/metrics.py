"""Typed metrics registry: counters, gauges and histograms with labels.

The simulator's instrumentation points (FTL wear/GC/refresh, flash
retries, pipeline queue depths, per-class latency) publish into one
:class:`MetricsRegistry` instead of inventing ad-hoc counters.  The
registry follows the same zero-cost off-path discipline as the tracer
and profiler: call sites hold ``None`` when telemetry is disabled and
pay one ``is None`` check; when enabled they hold pre-resolved
:class:`Counter` / :class:`Gauge` / :class:`HistogramMetric` handles, so
the hot path is one attribute bump — no name lookup, no label parsing.

Exports: :meth:`MetricsRegistry.snapshot` (plain JSON dict, the form
that rides the pickle-safe pool transport), :func:`merge_snapshots`
(cross-run aggregation), and Prometheus text exposition
(:meth:`MetricsRegistry.to_prometheus_text` /
:func:`snapshot_to_prometheus`) for scrape-compatible files.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping, Sequence

from .histogram import Histogram, default_latency_bounds

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricFamily",
    "MetricsRegistry",
    "merge_snapshots",
    "snapshot_to_prometheus",
    "labeled_snapshots_to_prometheus",
]

#: Version of the snapshot dict layout (bumped on breaking changes).
METRICS_SCHEMA = 1

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """Monotonically increasing count; one attribute bump per event."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, free blocks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramMetric:
    """A labeled handle wrapping one fixed-bucket :class:`Histogram`."""

    __slots__ = ("hist",)

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        self.hist = Histogram(bounds if bounds is not None else default_latency_bounds())

    def observe(self, value: float) -> None:
        self.hist.add(value)


_KIND_OF = {Counter: "counter", Gauge: "gauge", HistogramMetric: "histogram"}


class MetricFamily:
    """All children of one metric name, keyed by label values.

    Resolve children once at bind time (``family.labels(die=3)``) and
    keep the returned handle; ``labels`` is a dict lookup plus tuple
    build and does not belong on per-event paths.  A family declared
    with no label names has exactly one child, exposed as ``.unlabeled``
    (and via ``labels()`` with no arguments).
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        bounds: Sequence[float] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._bounds = tuple(bounds) if bounds is not None else None
        self._children: dict[tuple[str, ...], Counter | Gauge | HistogramMetric] = {}
        if not label_names:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return HistogramMetric(self._bounds)

    @property
    def unlabeled(self):
        """The single child of a label-less family."""
        if self.label_names:
            raise ValueError(f"metric {self.name!r} has labels {self.label_names}")
        return self._children[()]

    def labels(self, **labels: object):
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def samples(self) -> list[dict]:
        """JSON-ready per-child samples, in label-sorted order."""
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            sample: dict = {"labels": dict(zip(self.label_names, key))}
            if isinstance(child, HistogramMetric):
                sample.update(child.hist.to_dict())
            else:
                sample["value"] = child.value
            out.append(sample)
        return out


class MetricsRegistry:
    """A namespace of metric families; the root telemetry object.

    One registry serves one run.  Declaring an already-declared name
    with the same kind and label set returns the existing family
    (instrument points in different modules can share a metric);
    re-declaring with a different kind or labels raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        bounds: Sequence[float] | None = None,
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if len(set(label_names)) != len(label_names):
            raise ValueError(f"duplicate label names in {label_names}")
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != label_names:
                raise ValueError(
                    f"metric {name!r} already declared as {existing.kind}"
                    f"{existing.label_names}, not {kind}{label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help, label_names, bounds=bounds)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._declare(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        bounds: Sequence[float] | None = None,
    ) -> MetricFamily:
        return self._declare(name, "histogram", help, labels, bounds=bounds)

    def families(self) -> Iterable[MetricFamily]:
        return self._families.values()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The whole registry as a plain JSON-able dict.

        This is the form that crosses process boundaries (pool workers
        pickle it on the result payload) and lands in manifests.
        """
        return {
            "schema": METRICS_SCHEMA,
            "metrics": {
                family.name: {
                    "kind": family.kind,
                    "help": family.help,
                    "labels": list(family.label_names),
                    "samples": family.samples(),
                }
                for family in sorted(self._families.values(), key=lambda f: f.name)
            },
        }

    def to_prometheus_text(self, extra_labels: Mapping[str, str] | None = None) -> str:
        """Prometheus text exposition of the current state."""
        return snapshot_to_prometheus(self.snapshot(), extra_labels=extra_labels)


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Fold several registry snapshots into one.

    Counters and histogram buckets sum; gauges take the max (the peak
    across the merged runs — the conservative answer for health gauges
    like queue depth or refresh backlog).  Histogram merges across
    mismatched bucket bounds raise ``ValueError`` rather than mis-adding
    counts, the same contract :meth:`Histogram.merge` enforces.
    """
    merged: dict = {"schema": METRICS_SCHEMA, "metrics": {}}
    for snap in snapshots:
        if snap.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {snap.get('schema')!r} "
                f"(expected {METRICS_SCHEMA})"
            )
        for name, family in snap["metrics"].items():
            target = merged["metrics"].get(name)
            if target is None:
                merged["metrics"][name] = {
                    "kind": family["kind"],
                    "help": family["help"],
                    "labels": list(family["labels"]),
                    "samples": [dict(s, labels=dict(s["labels"])) for s in family["samples"]],
                }
                continue
            if target["kind"] != family["kind"] or target["labels"] != list(family["labels"]):
                raise ValueError(
                    f"conflicting declarations of metric {name!r} across snapshots"
                )
            by_labels = {
                tuple(sorted(s["labels"].items())): s for s in target["samples"]
            }
            for sample in family["samples"]:
                key = tuple(sorted(sample["labels"].items()))
                existing = by_labels.get(key)
                if existing is None:
                    copied = dict(sample, labels=dict(sample["labels"]))
                    target["samples"].append(copied)
                    by_labels[key] = copied
                    continue
                _merge_sample(name, family["kind"], existing, sample)
    for family in merged["metrics"].values():
        family["samples"].sort(key=lambda s: tuple(sorted(s["labels"].items())))
    return merged


def _merge_sample(name: str, kind: str, into: dict, sample: dict) -> None:
    if kind == "counter":
        into["value"] += sample["value"]
    elif kind == "gauge":
        into["value"] = max(into["value"], sample["value"])
    else:
        if into["bounds_us"] != sample["bounds_us"]:
            raise ValueError(
                f"cannot merge histogram metric {name!r} across mismatched "
                f"bucket bounds ({len(into['bounds_us'])} vs "
                f"{len(sample['bounds_us'])} bounds)"
            )
        into["counts"] = [a + b for a, b in zip(into["counts"], sample["counts"])]
        into["count"] += sample["count"]
        into["total_us"] += sample["total_us"]
        if sample["count"]:
            into["min_us"] = (
                sample["min_us"]
                if into["count"] == sample["count"]
                else min(into["min_us"], sample["min_us"])
            )
            into["max_us"] = max(into["max_us"], sample["max_us"])


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def snapshot_to_prometheus(
    snapshot: dict, extra_labels: Mapping[str, str] | None = None
) -> str:
    """Render a registry snapshot in the Prometheus text format.

    ``extra_labels`` are injected into every sample — the device the
    health artifact uses to combine several runs' registries into one
    exposition file distinguished by ``run=...`` labels.
    """
    extra = dict(extra_labels or {})
    lines: list[str] = []
    for name, family in snapshot["metrics"].items():
        kind = family["kind"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = dict(sample["labels"])
            labels.update(extra)
            if kind == "histogram":
                cumulative = 0
                for bound, count in zip(sample["bounds_us"], sample["counts"]):
                    cumulative += count
                    bucket_labels = dict(labels, le=_fmt_value(bound))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels, le="+Inf")
                lines.append(
                    f"{name}_bucket{_fmt_labels(bucket_labels)} {sample['count']}"
                )
                lines.append(
                    f"{name}_sum{_fmt_labels(labels)} {_fmt_value(sample['total_us'])}"
                )
                lines.append(f"{name}_count{_fmt_labels(labels)} {sample['count']}")
            else:
                lines.append(
                    f"{name}{_fmt_labels(labels)} {_fmt_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def labeled_snapshots_to_prometheus(
    runs: Sequence[tuple[Mapping[str, str], dict]],
) -> str:
    """One exposition for several runs' snapshots, kept distinguishable.

    Each ``(labels, snapshot)`` pair contributes every sample it holds
    with the pair's labels injected; ``# HELP`` / ``# TYPE`` headers are
    emitted once per metric name (a valid exposition declares each
    family once), in sorted name order.  This is how the health artifact
    publishes a whole sweep — baseline vs IDA, healthy vs faulted — as
    one scrape-compatible file separated by ``system=... condition=...``
    labels rather than N files.
    """
    families: dict[str, dict] = {}
    contributions: dict[str, list[tuple[Mapping[str, str], dict]]] = {}
    for labels, snap in runs:
        if snap.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot render snapshot with schema {snap.get('schema')!r} "
                f"(expected {METRICS_SCHEMA})"
            )
        for name, family in snap["metrics"].items():
            known = families.get(name)
            if known is None:
                families[name] = {"kind": family["kind"], "help": family["help"]}
            elif known["kind"] != family["kind"]:
                raise ValueError(
                    f"conflicting kinds for metric {name!r} across snapshots"
                )
            contributions.setdefault(name, []).append((labels, family))
    lines: list[str] = []
    for name in sorted(families):
        meta = families[name]
        if meta["help"]:
            lines.append(f"# HELP {name} {meta['help']}")
        lines.append(f"# TYPE {name} {meta['kind']}")
        for extra, family in contributions[name]:
            partial = snapshot_to_prometheus(
                {
                    "schema": METRICS_SCHEMA,
                    "metrics": {name: dict(family, help="")},
                },
                extra_labels=extra,
            )
            lines.extend(
                line for line in partial.splitlines() if not line.startswith("#")
            )
    return "\n".join(lines) + ("\n" if lines else "")
