"""Observability: event tracing, interval time-series, trace inspection.

The simulator's measurement story has two layers.  :mod:`repro.sim.metrics`
keeps the end-of-run aggregates the paper's tables are built from; this
package records *how a run behaved* — per-request lifecycle spans (queue
wait vs sense vs transfer vs ECC), GC / refresh / IDA-reprogram events,
and periodic samples of queue depths, utilisation and latency histograms.
All of it is opt-in and passive: a run with the default
:data:`NULL_TRACER` and no collector is behaviourally and metrically
identical to an uninstrumented one.

See ``docs/observability.md`` for the event schema and a worked example.
"""

from .health import HEALTH_SCHEMA, HealthMonitor, HealthSnapshot
from .histogram import Histogram, default_latency_bounds
from .inspect import (
    TraceLoadError,
    TraceSummary,
    format_last_spans,
    format_trace_summary,
    load_trace,
    load_trace_safe,
    summarize_trace,
)
from .interval import IntervalCollector, IntervalSnapshot
from .metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    labeled_snapshots_to_prometheus,
    merge_snapshots,
    snapshot_to_prometheus,
)
from .slo import DEFAULT_READ_P99_SLO, SloEngine, SloObjective
from .tracer import (
    NULL_TRACER,
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    NullTracer,
    TraceSink,
    Tracer,
    read_jsonl_trace,
)

__all__ = [
    "SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl_trace",
    "Histogram",
    "default_latency_bounds",
    "IntervalCollector",
    "IntervalSnapshot",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "merge_snapshots",
    "snapshot_to_prometheus",
    "labeled_snapshots_to_prometheus",
    "HEALTH_SCHEMA",
    "HealthMonitor",
    "HealthSnapshot",
    "SloEngine",
    "SloObjective",
    "DEFAULT_READ_P99_SLO",
    "SimProfiler",
    "ProfiledOp",
    "ProfiledRequest",
    "validate_chrome_trace",
    "TraceSummary",
    "TraceLoadError",
    "load_trace",
    "load_trace_safe",
    "summarize_trace",
    "format_trace_summary",
    "format_last_spans",
]

# The profiler pulls in :mod:`repro.sim.resources`, and importing any
# ``repro.sim`` submodule runs the ``repro.sim`` package init — which
# imports the simulator, which imports the FTL, which imports this
# package.  Loading the profiler lazily (PEP 562) keeps that loop open
# so ``import repro.ftl`` works on its own in a fresh interpreter.
_PROFILER_NAMES = frozenset(
    {"SimProfiler", "ProfiledOp", "ProfiledRequest", "validate_chrome_trace"}
)


def __getattr__(name: str):
    if name in _PROFILER_NAMES:
        from . import profiler

        return getattr(profiler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
