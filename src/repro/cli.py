"""Command-line front-end: regenerate any paper artifact.

Usage::

    ida-repro list
    ida-repro fig8  [--scale quick|bench|full] [--workloads usr_1,proj_1]
    ida-repro table4 --scale bench
    ida-repro all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .experiments import (
    RunScale,
    format_ablation,
    format_capacity,
    run_capacity_analysis,
    format_fig4,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_qlc,
    format_table3,
    format_table4,
    format_table5,
    run_adjust_cost_ablation,
    run_allocation_ablation,
    run_fig4,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_qlc_extension,
    run_refresh_frequency_ablation,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = ["main", "ARTIFACTS"]

#: artifact name -> (runner, formatter)
ARTIFACTS: dict[str, tuple[Callable, Callable]] = {
    "fig4": (run_fig4, format_fig4),
    "fig8": (run_fig8, format_fig8),
    "fig9": (run_fig9, format_fig9),
    "fig10": (run_fig10, format_fig10),
    "fig11": (run_fig11, format_fig11),
    "table3": (run_table3, format_table3),
    "table4": (run_table4, format_table4),
    "table5": (run_table5, format_table5),
    "qlc": (run_qlc_extension, format_qlc),
    "capacity": (run_capacity_analysis, format_capacity),
    "ablation-adjust": (run_adjust_cost_ablation, format_ablation),
    "ablation-refresh": (run_refresh_frequency_ablation, format_ablation),
    "ablation-alloc": (run_allocation_ablation, format_ablation),
}

_SCALES = {
    "quick": RunScale.quick,
    "bench": RunScale.bench,
    "full": RunScale.full,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ida-repro",
        description="Regenerate artifacts of the MICRO'18 IDA-coding paper.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["list", "all"],
        help="artifact to regenerate ('list' shows options, 'all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="simulation scale (default: bench)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (default: the paper's 11)",
    )
    return parser


def _run_one(name: str, scale: RunScale, workload_names: list[str] | None) -> str:
    runner, formatter = ARTIFACTS[name]
    started = time.time()
    result = runner(scale=scale, workload_names=workload_names)
    elapsed = time.time() - started
    return f"{formatter(result)}\n[{name}: {elapsed:.1f}s]"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(name)
        return 0
    scale = _SCALES[args.scale]()
    workload_names = args.workloads.split(",") if args.workloads else None
    targets = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in targets:
        print(_run_one(name, scale, workload_names))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
