"""Command-line front-end: paper artifacts, traced runs, trace inspection.

Usage::

    ida-repro list
    ida-repro fig8  [--scale quick|bench|full] [--workloads usr_1,proj_1]
    ida-repro table4 --scale bench
    ida-repro all --scale quick
    ida-repro health --scale bench --json-out health.json --prom health.prom
    ida-repro run --scale tiny --policy fcfs --trace /tmp/t.jsonl --report /tmp/run.json
    ida-repro run --scale tiny --health --report /tmp/run.json
    ida-repro profile --system ida-e20 --workload usr_1 --out /tmp/trace.json
    ida-repro inspect /tmp/t.jsonl --top 5
    ida-repro inspect /tmp/t.jsonl --last 20
    ida-repro inspect /tmp/t.jsonl --format json

(The ``repro`` console script is an alias of ``ida-repro``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .obs import (
    IntervalCollector,
    JsonlSink,
    TraceLoadError,
    Tracer,
    format_last_spans,
    format_trace_summary,
    load_trace_safe,
)

from .experiments import (
    RunScale,
    breakdown_to_json,
    faults_to_json,
    format_ablation,
    format_capacity,
    format_faults,
    run_capacity_analysis,
    run_faults,
    format_health,
    health_to_json,
    health_to_prometheus,
    run_health,
    format_fig4,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_fig_breakdown,
    format_qlc,
    format_recovery,
    format_table3,
    format_table4,
    format_table5,
    run_adjust_cost_ablation,
    run_allocation_ablation,
    run_fig4,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig_breakdown,
    run_qlc_extension,
    run_recovery,
    recovery_to_json,
    run_refresh_frequency_ablation,
    run_table3,
    run_table4,
    run_table5,
)

__all__ = ["main", "ARTIFACTS"]

#: artifact name -> (runner, formatter)
ARTIFACTS: dict[str, tuple[Callable, Callable]] = {
    "fig4": (run_fig4, format_fig4),
    "fig8": (run_fig8, format_fig8),
    "fig9": (run_fig9, format_fig9),
    "fig10": (run_fig10, format_fig10),
    "fig11": (run_fig11, format_fig11),
    "breakdown": (run_fig_breakdown, format_fig_breakdown),
    "table3": (run_table3, format_table3),
    "table4": (run_table4, format_table4),
    "table5": (run_table5, format_table5),
    "qlc": (run_qlc_extension, format_qlc),
    "faults": (run_faults, format_faults),
    "health": (run_health, format_health),
    "recover": (run_recovery, format_recovery),
    "capacity": (run_capacity_analysis, format_capacity),
    "ablation-adjust": (run_adjust_cost_ablation, format_ablation),
    "ablation-refresh": (run_refresh_frequency_ablation, format_ablation),
    "ablation-alloc": (run_allocation_ablation, format_ablation),
}

_SCALES = {
    "tiny": RunScale.tiny,
    "quick": RunScale.quick,
    "bench": RunScale.bench,
    "full": RunScale.full,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ida-repro",
        description="Regenerate artifacts of the MICRO'18 IDA-coding paper.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(ARTIFACTS) + ["list", "all"],
        help="artifact to regenerate ('list' shows options, 'all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="simulation scale (default: bench)",
    )
    parser.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload subset (default: the paper's 11)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sweep fan-out (default: 1 = inline)",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="on a failed sweep unit, drop that workload and finish the "
             "artifact from the surviving ones instead of aborting",
    )
    parser.add_argument(
        "--snapshots",
        action="store_true",
        help="reuse warmed device state across sweep units that share a "
             "warm-up (pure wall-clock knob; results are byte-identical)",
    )
    parser.add_argument(
        "--snapshot-dir",
        metavar="DIR",
        default=None,
        help="spill warm-state snapshots to DIR so they survive the "
             "process and are reused across invocations (implies "
             "--snapshots)",
    )
    parser.add_argument(
        "--cuts",
        type=int,
        default=None,
        metavar="N",
        help="total power-cut points for the 'recover' artifact "
             "(default: 200; other artifacts reject this flag)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the artifact's JSON form to PATH "
             "(supported by: faults, breakdown, health, recover)",
    )
    parser.add_argument(
        "--prom",
        metavar="PATH",
        default=None,
        help="also write a Prometheus text exposition to PATH "
             "(supported by: health)",
    )
    return parser


#: artifact name -> JSON exporter, for artifacts that have one.
_JSON_EXPORTERS: dict[str, Callable] = {
    "faults": faults_to_json,
    "breakdown": breakdown_to_json,
    "health": health_to_json,
    "recover": recovery_to_json,
}

#: artifact name -> Prometheus exposition exporter.
_PROM_EXPORTERS: dict[str, Callable] = {
    "health": health_to_prometheus,
}


def _run_one(
    name: str,
    scale: RunScale,
    workload_names: list[str] | None,
    jobs: int = 1,
    keep_going: bool = False,
    json_out: str | None = None,
    prom_out: str | None = None,
    snapshots: bool = False,
    snapshot_dir: str | None = None,
    cuts: int | None = None,
) -> str:
    runner, formatter = ARTIFACTS[name]
    snapshot_stats: dict | None = (
        {} if (snapshots or snapshot_dir) else None
    )
    extra = {"cuts": cuts} if cuts is not None else {}
    started = time.time()
    result = runner(
        scale=scale,
        workload_names=workload_names,
        jobs=jobs,
        progress=print if (jobs > 1 or keep_going) else None,
        keep_going=keep_going,
        snapshots=snapshots,
        snapshot_dir=snapshot_dir,
        snapshot_stats=snapshot_stats,
        **extra,
    )
    elapsed = time.time() - started
    if json_out:
        exporter = _JSON_EXPORTERS.get(name)
        if exporter is None:
            raise SystemExit(
                f"--json-out is not supported for {name!r}; "
                f"use one of {sorted(_JSON_EXPORTERS)}"
            )
        import json

        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(exporter(result), handle, indent=2)
    if prom_out:
        exporter = _PROM_EXPORTERS.get(name)
        if exporter is None:
            raise SystemExit(
                f"--prom is not supported for {name!r}; "
                f"use one of {sorted(_PROM_EXPORTERS)}"
            )
        with open(prom_out, "w", encoding="utf-8") as handle:
            handle.write(exporter(result))
    timing = f"[{name}: {elapsed:.1f}s]"
    if snapshot_stats is not None:
        timing += (
            f" [snapshots: {snapshot_stats.get('hits', 0)} hit(s), "
            f"{snapshot_stats.get('misses', 0)} miss(es), "
            f"{snapshot_stats.get('fallbacks', 0)} fallback(s)]"
        )
    return f"{formatter(result)}\n{timing}"


def _parse_system(name: str):
    """Resolve a system name ("baseline", "ida", "ida-e20", ...)."""
    from .experiments.systems import baseline, ida

    name = name.lower()
    if name == "baseline":
        return baseline()
    if name == "ida":
        return ida(0.2)
    if name.startswith("ida-e"):
        try:
            return ida(int(name[len("ida-e"):]) / 100.0)
        except ValueError:
            pass
    raise SystemExit(f"unknown system {name!r}; use baseline, ida, or ida-eNN")


def _build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ida-repro run",
        description="Run one (system, workload) simulation with observability.",
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    parser.add_argument("--workload", default="usr_1", help="workload name (Table III)")
    parser.add_argument("--system", default="ida-e20",
                        help="baseline, ida, or ida-eNN (default: ida-e20)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--policy", default="read-first",
                        help="scheduling policy: read-first (paper default), "
                             "fcfs, or throttled")
    parser.add_argument("--backend", default="reference",
                        help="execution backend: reference (event-at-a-time "
                             "default) or batch (vectorized; identical "
                             "results, faster wall-clock)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL event trace to PATH")
    parser.add_argument("--interval-us", type=float, default=None, metavar="N",
                        help="collect an interval time-series every N simulated us")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="write the run manifest (JSON) to PATH")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (N>1 runs in a pool; tracing "
                             "and interval collection require --jobs 1)")
    parser.add_argument("--faults", metavar="PATH", default=None,
                        help="inject the fault plan (JSON, see docs/faults.md) "
                             "into the run")
    parser.add_argument("--health", action="store_true",
                        help="attach the device-health monitor (SMART-style "
                             "snapshots + metrics registry + default SLOs); "
                             "the manifest gains a 'health' key")
    parser.add_argument("--snapshots", action="store_true",
                        help="draw the run's warmed device state from the "
                             "warm-state snapshot cache (pure wall-clock "
                             "knob; results are byte-identical)")
    parser.add_argument("--snapshot-dir", metavar="DIR", default=None,
                        help="spill/reuse warm-state snapshots in DIR across "
                             "invocations (implies --snapshots); the "
                             "manifest records hits and misses under "
                             "'execution.snapshots'")
    return parser


def _cmd_run(argv: list[str]) -> int:
    from .experiments.parallel import RunUnit, SweepExecutor
    from .experiments.reporting import manifest_for_payload, write_run_manifest
    from .experiments.runner import run_workload
    from .workloads import workload

    args = _build_run_parser().parse_args(argv)
    system = _parse_system(args.system)
    plan = None
    if args.faults:
        from .faults import load_plan

        try:
            plan = load_plan(args.faults)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot load fault plan {args.faults!r}: {exc}") from None
    try:
        system = system.with_policy(args.policy)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    from .sim.backends import ENGINE_BACKENDS

    if args.backend not in ENGINE_BACKENDS:
        raise SystemExit(
            f"unknown backend {args.backend!r}; "
            f"choose one of: {', '.join(sorted(ENGINE_BACKENDS))}"
        )
    try:
        spec = workload(args.workload)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    scale = _SCALES[args.scale]()
    if args.interval_us is not None and args.interval_us <= 0:
        raise SystemExit("--interval-us must be positive")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.jobs > 1 and (args.trace or args.interval_us):
        raise SystemExit(
            "--trace / --interval-us need the inline path; rerun with --jobs 1"
        )

    tracer = Tracer(JsonlSink(args.trace)) if args.trace else None
    collector = (
        IntervalCollector(args.interval_us) if args.interval_us else None
    )
    use_snapshots = bool(args.snapshots or args.snapshot_dir)
    snapshot_stats: dict | None = None
    started = time.time()
    if args.jobs == 1:
        health = None
        if args.health:
            from .obs import HealthMonitor, MetricsRegistry, SloEngine

            health = HealthMonitor(registry=MetricsRegistry(), slo=SloEngine())
        warm = None
        store = None
        if use_snapshots:
            from .experiments.runner import warm_cache_key
            from .sim.snapshot import SnapshotStore, WarmHandle

            store = SnapshotStore(spill_dir=args.snapshot_dir)
            key = warm_cache_key(
                system,
                spec.scaled(scale.num_requests, scale.footprint_pages),
                scale, args.seed, args.backend,
            )
            warm = WarmHandle(store=store, key=key)
        result = run_workload(
            system, spec, scale, seed=args.seed, tracer=tracer,
            collector=collector, faults=plan, health=health,
            backend=args.backend, warm=warm,
        )
        payload = result.to_payload()
        if store is not None:
            snapshot_stats = {
                "hits": store.stats.hits,
                "misses": store.stats.misses,
                "fallbacks": store.stats.fallbacks,
            }
    else:
        slo = None
        if args.health:
            from .obs import DEFAULT_READ_P99_SLO

            slo = (DEFAULT_READ_P99_SLO,)
        unit = RunUnit(
            system, args.workload, scale, seed=args.seed, faults=plan,
            health=args.health, slo=slo, backend=args.backend,
        )
        executor = SweepExecutor(
            jobs=args.jobs, snapshots=args.snapshots,
            snapshot_dir=args.snapshot_dir,
        )
        payload = executor.map([unit])[0]
        if use_snapshots:
            snapshot_stats = dict(executor.snapshot_stats)
    elapsed = time.time() - started
    if tracer is not None:
        tracer.close()

    def _us(value: float | None) -> str:
        # percentiles are None for zero-sample populations
        return "n/a" if value is None else f"{value:.1f} us"

    read = payload.read_response
    write = payload.write_response
    print(f"{system.name} on {args.workload} @ {args.scale} "
          f"({elapsed:.1f}s wall, seed {args.seed}, policy {system.policy}, "
          f"jobs {args.jobs})")
    print(f"  reads : {read['count']}  mean {read['mean_us']:.1f} us  "
          f"p95 {_us(read['p95_us'])}  p99 {_us(read['p99_us'])}")
    print(f"  writes: {write['count']}  mean {write['mean_us']:.1f} us")
    print(f"  throughput: {payload.throughput_mb_s:.2f} MB/s  "
          f"utilisation: die {payload.utilisation.get('die', 0.0):.1%} / "
          f"channel {payload.utilisation.get('channel', 0.0):.1%}")
    if payload.faults is not None:
        fired = payload.faults.get("fired", {})
        active = {k: v for k, v in fired.items() if v}
        print(f"  faults: {len(payload.faults.get('events', []))} events "
              f"fired {active or '(none)'}")
    if payload.health is not None:
        summary = payload.health.get("summary", {})
        wear = summary.get("wear", {})
        print(f"  health: {summary.get('samples', 0)} samples  "
              f"wear p99 {wear.get('p99', 0):.0f} erases  "
              f"retired {summary.get('retired_blocks', 0)}  "
              f"retries {summary.get('read_retries', 0)}  "
              f"IDA exposure {summary.get('ida_exposure', 0.0):.1%}")
        slo = payload.health.get("slo")
        if slo is not None:
            breaching = [o["objective"] for o in slo["objectives"] if o["breaching"]]
            print(f"  slo   : {slo['breaches']} breach(es)"
                  + (f", still breaching: {', '.join(breaching)}" if breaching else ""))
    if tracer is not None:
        print(f"  trace : {args.trace} ({tracer.events_emitted} events)")
    if collector is not None:
        print(f"  series: {len(collector.snapshots)} intervals of "
              f"{args.interval_us:.0f} us")
    if snapshot_stats is not None:
        print(f"  snaps : {snapshot_stats.get('hits', 0)} hit(s), "
              f"{snapshot_stats.get('misses', 0)} miss(es), "
              f"{snapshot_stats.get('fallbacks', 0)} fallback(s)")
    if args.report:
        manifest = manifest_for_payload(
            payload, collector=collector, trace_path=args.trace,
            jobs=args.jobs, backend=args.backend, snapshots=snapshot_stats,
        )
        path = write_run_manifest(manifest, args.report)
        print(f"  report: {path} (config {manifest['config_hash']})")
    return 0


def _build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ida-repro profile",
        description="Run one simulation with the sim-time profiler and "
                    "export a Perfetto-loadable Chrome trace.",
    )
    parser.add_argument("--scale", choices=sorted(_SCALES), default="tiny")
    parser.add_argument("--workload", default="usr_1",
                        help="workload name (Table III; default: usr_1)")
    parser.add_argument("--system", default="ida-e20",
                        help="baseline, ida, or ida-eNN (default: ida-e20)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--policy", default="read-first",
                        help="scheduling policy: read-first (paper default), "
                             "fcfs, or throttled")
    parser.add_argument("--interval-us", type=float, default=None, metavar="N",
                        help="sample utilization/queue-depth timelines every "
                             "N simulated us")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the Chrome trace-event JSON to PATH "
                             "(load it at https://ui.perfetto.dev)")
    parser.add_argument("--aggregate", metavar="PATH", default=None,
                        help="write the compact aggregate profile JSON to PATH")
    parser.add_argument("--max-events", type=int, default=200_000,
                        help="cap on retained trace slices (default: 200000)")
    return parser


def _cmd_profile(argv: list[str]) -> int:
    import json

    from .experiments.runner import run_workload
    from .obs.profiler import SimProfiler, validate_chrome_trace
    from .workloads import workload

    args = _build_profile_parser().parse_args(argv)
    system = _parse_system(args.system)
    try:
        system = system.with_policy(args.policy)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        spec = workload(args.workload)
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None
    if args.interval_us is not None and args.interval_us <= 0:
        raise SystemExit("--interval-us must be positive")
    if args.max_events < 1:
        raise SystemExit("--max-events must be >= 1")
    scale = _SCALES[args.scale]()

    profiler = SimProfiler(keep_events=args.out is not None,
                           max_events=args.max_events)
    collector = (
        IntervalCollector(args.interval_us) if args.interval_us else None
    )
    started = time.time()
    result = run_workload(
        system, spec, scale, seed=args.seed, collector=collector,
        profiler=profiler,
    )
    elapsed = time.time() - started

    aggregate = result.profile
    print(f"{system.name} on {args.workload} @ {args.scale} "
          f"({elapsed:.1f}s wall, seed {args.seed}, policy {system.policy})")
    for kind in ("read", "write"):
        attribution = aggregate["requests"].get(kind)
        if attribution is None:
            continue
        print(f"  {kind:5s}: {attribution['count']} requests  "
              f"mean {attribution['mean_response_us']:.1f} us = "
              f"wait {attribution['mean_queue_wait_us']:.1f}"
              + "".join(
                  f" + {stage} {us:.1f}"
                  for stage, us in attribution["mean_service_us"].items()
              )
              + f" + host {attribution['mean_host_overhead_us']:.1f}")
    print(f"  attribution residual: {aggregate['max_residual_us']:.3g} us")

    if args.out:
        trace = profiler.to_chrome_trace()
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"  trace problem: {problem}", file=sys.stderr)
            raise SystemExit("refusing to write an invalid Chrome trace")
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
        print(f"  trace : {args.out} ({len(trace['traceEvents'])} events, "
              f"{aggregate['events_dropped']} dropped; "
              "open in https://ui.perfetto.dev)")
    if args.aggregate:
        with open(args.aggregate, "w", encoding="utf-8") as handle:
            json.dump(aggregate, handle, indent=2, sort_keys=True)
        print(f"  aggregate: {args.aggregate}")
    return 0


def _cmd_inspect(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="ida-repro inspect",
        description="Summarise a JSONL trace: slowest reads, utilisation.",
    )
    parser.add_argument("trace", help="path to a JSONL trace file")
    parser.add_argument("--top", type=int, default=10,
                        help="how many slowest reads to show (default: 10)")
    parser.add_argument("--last", type=int, default=None, metavar="N",
                        help="show only the final N request spans instead "
                             "of the summary")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format: human-readable text (default) "
                             "or the JSON summary dict")
    args = parser.parse_args(argv)
    if args.last is not None and args.last < 1:
        raise SystemExit("--last must be >= 1")
    if args.last is not None and args.format == "json":
        raise SystemExit("--last is text-only; drop --format json")

    try:
        events, warnings = load_trace_safe(args.trace)
    except TraceLoadError as exc:
        raise SystemExit(str(exc)) from None
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.format == "json":
        import json

        from .obs import summarize_trace

        print(json.dumps(summarize_trace(events, top=args.top).to_dict(), indent=2))
        return 0
    if not events:
        print(f"{args.trace} contains no events")
        return 0
    if args.last is not None:
        print(format_last_spans(events, args.last))
        return 0
    print(format_trace_summary(events, top=args.top))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _cmd_run(argv[1:])
    if argv and argv[0] == "profile":
        return _cmd_profile(argv[1:])
    if argv and argv[0] == "inspect":
        return _cmd_inspect(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.artifact == "list":
        for name in sorted(ARTIFACTS):
            print(name)
        return 0
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    scale = _SCALES[args.scale]()
    workload_names = args.workloads.split(",") if args.workloads else None
    targets = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    if args.json_out and len(targets) != 1:
        raise SystemExit("--json-out needs a single artifact, not 'all'")
    if args.prom and len(targets) != 1:
        raise SystemExit("--prom needs a single artifact, not 'all'")
    # Reject unsupported exporters before the (possibly long) run starts.
    if args.json_out and targets[0] not in _JSON_EXPORTERS:
        raise SystemExit(
            f"--json-out is not supported for {targets[0]!r}; "
            f"use one of {sorted(_JSON_EXPORTERS)}"
        )
    if args.prom and targets[0] not in _PROM_EXPORTERS:
        raise SystemExit(
            f"--prom is not supported for {targets[0]!r}; "
            f"use one of {sorted(_PROM_EXPORTERS)}"
        )
    if args.cuts is not None:
        if targets != ["recover"]:
            raise SystemExit("--cuts only applies to the 'recover' artifact")
        if args.cuts < 1:
            raise SystemExit("--cuts must be >= 1")
    for name in targets:
        print(
            _run_one(
                name,
                scale,
                workload_names,
                jobs=args.jobs,
                keep_going=args.keep_going,
                json_out=args.json_out,
                prom_out=args.prom,
                snapshots=args.snapshots,
                snapshot_dir=args.snapshot_dir,
                cuts=args.cuts,
            )
        )
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
