"""Trace containers and MSR-Cambridge-format I/O.

The MSR Cambridge traces [25] are CSV files with records

    Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

where Timestamp is in Windows filetime units (100 ns ticks) and Type is
``Read`` or ``Write``.  :func:`read_msr_csv` / :func:`write_msr_csv`
round-trip that format so real traces can be dropped in for the synthetic
clones, and :class:`Trace` computes the Table III characterisation
columns.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from .request import IoRequest

__all__ = ["Trace", "read_msr_csv", "write_msr_csv"]

#: MSR timestamps are 100 ns ticks; one tick is 0.1 us.
_TICKS_PER_US = 10.0


@dataclass
class Trace:
    """A named sequence of I/O requests plus derived statistics."""

    name: str
    requests: list[IoRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    # ------------------------------------------------------------------
    # Table III characterisation
    # ------------------------------------------------------------------
    @property
    def read_requests(self) -> list[IoRequest]:
        return [r for r in self.requests if r.is_read]

    def read_ratio(self) -> float:
        """Fraction of requests that are reads (Table III column 2)."""
        if not self.requests:
            return 0.0
        return len(self.read_requests) / len(self.requests)

    def mean_read_size_kb(self) -> float:
        """Average read request size in KB (Table III column 3)."""
        reads = self.read_requests
        if not reads:
            return 0.0
        return sum(r.size_bytes for r in reads) / len(reads) / 1024

    def read_data_ratio(self) -> float:
        """Fraction of transferred bytes that are reads (column 4)."""
        total = sum(r.size_bytes for r in self.requests)
        if not total:
            return 0.0
        return sum(r.size_bytes for r in self.read_requests) / total

    def duration_us(self) -> float:
        if not self.requests:
            return 0.0
        times = [r.time_us for r in self.requests]
        return max(times) - min(times)

    def footprint_pages(self, page_size_bytes: int) -> int:
        """Distinct logical pages the trace touches."""
        pages: set[int] = set()
        for request in self.requests:
            first, count = request.page_span(page_size_bytes)
            pages.update(range(first, first + count))
        return len(pages)


def read_msr_csv(path: str | Path, name: str | None = None) -> Trace:
    """Parse an MSR Cambridge CSV trace file.

    Timestamps are rebased so the first request arrives at time zero.
    """
    path = Path(path)
    requests: list[IoRequest] = []
    base_ticks: int | None = None
    with path.open(newline="") as handle:
        for row in csv.reader(handle):
            if not row or len(row) < 6:
                continue
            ticks = int(row[0])
            if base_ticks is None:
                base_ticks = ticks
            kind = row[3].strip().lower()
            if kind not in ("read", "write"):
                raise ValueError(f"unknown request type {row[3]!r} in {path}")
            requests.append(
                IoRequest(
                    time_us=(ticks - base_ticks) / _TICKS_PER_US,
                    is_read=kind == "read",
                    offset_bytes=int(row[4]),
                    size_bytes=int(row[5]),
                )
            )
    return Trace(name=name or path.stem, requests=requests)


def write_msr_csv(trace: Trace, path: str | Path, hostname: str = "synth") -> None:
    """Write a trace in MSR Cambridge CSV format."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        for request in trace.requests:
            writer.writerow(
                [
                    int(round(request.time_us * _TICKS_PER_US)),
                    hostname,
                    0,
                    "Read" if request.is_read else "Write",
                    request.offset_bytes,
                    request.size_bytes,
                    0,
                ]
            )
