"""The workload catalog: synthetic clones of the paper's traces.

Eleven read-intensive MSR Cambridge volumes (Table III) plus the nine
additional workloads of Fig. 4 (right), which the paper groups by read
ratio.  Each entry is a :class:`~repro.workloads.synthetic.WorkloadSpec`
calibrated to the paper's characterisation:

* ``read_ratio`` — Table III column 2, used verbatim;
* ``read_size_pages_mean`` — Table III column 3 divided by the 8 KiB page;
* ``aging_update_fraction`` — tuned so the measured fraction of MSB reads
  with invalid lower pages lands near Table III column 5 (the update
  fraction is roughly half that column, see the generator docstring);
* hot-set skew — higher for the workloads the paper reports the largest
  IDA gains on (proj_1, usr_1), whose reads concentrate on aged data.

Real MSR CSV files can replace any clone via
:func:`repro.workloads.trace.read_msr_csv`.
"""

from __future__ import annotations

from .synthetic import WorkloadSpec

__all__ = [
    "TABLE3_WORKLOADS",
    "EXTRA_WORKLOADS",
    "ALL_WORKLOADS",
    "workload",
    "table3_row",
]

#: Paper Table III reference rows: (read ratio %, read KB, read-data %,
#: MSB-with-invalid-lower %).
TABLE3_REFERENCE: dict[str, tuple[float, float, float, float]] = {
    "proj_1": (89.43, 37.45, 96.71, 22.12),
    "proj_2": (87.61, 41.64, 85.77, 32.47),
    "proj_3": (94.82, 8.99, 87.41, 20.81),
    "proj_4": (98.52, 23.72, 99.30, 24.63),
    "hm_1": (95.34, 14.93, 93.83, 20.54),
    "src1_0": (56.43, 36.47, 47.42, 33.31),
    "src1_1": (95.26, 35.87, 98.00, 34.79),
    "src2_0": (97.86, 60.32, 99.51, 21.27),
    "stg_1": (63.74, 59.68, 92.99, 38.76),
    "usr_1": (91.48, 52.72, 97.37, 45.44),
    "usr_2": (81.13, 50.89, 94.01, 21.43),
}


def _spec(
    name: str,
    read_ratio_pct: float,
    read_kb: float,
    invalid_msb_pct: float,
    hot_access_prob: float = 0.75,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        read_ratio=read_ratio_pct / 100.0,
        read_size_pages_mean=max(1.0, read_kb / 8.0),
        write_size_pages_mean=3.0,
        # Measured exposure tracks the per-period update fraction almost
        # 1:1 (baseline refresh resets a block's exposure each period, so
        # the steady state reflects one period of churn), so the Table III
        # column-5 target is used directly.
        aging_update_fraction=min(0.6, invalid_msb_pct / 100.0),
        hot_access_prob=hot_access_prob,
    )


#: The eleven Table III read-intensive workloads.
TABLE3_WORKLOADS: dict[str, WorkloadSpec] = {
    name: _spec(
        name,
        row[0],
        row[1],
        row[3],
        hot_access_prob=0.88 if name in ("proj_1", "usr_1") else 0.75,
    )
    for name, row in TABLE3_REFERENCE.items()
}

#: The nine Fig. 4 (right) workloads, grouped by read ratio as in the
#: paper ("R>95%", "95%>R>85%", "85%>R>75%").
EXTRA_WORKLOADS: dict[str, WorkloadSpec] = {
    "web_a": _spec("web_a", 97.0, 24.0, 26.0),
    "web_b": _spec("web_b", 96.0, 40.0, 31.0),
    "cache_a": _spec("cache_a", 95.5, 16.0, 22.0),
    "ts_a": _spec("ts_a", 92.0, 32.0, 28.0),
    "ts_b": _spec("ts_b", 89.0, 48.0, 35.0),
    "db_a": _spec("db_a", 87.0, 12.0, 24.0),
    "db_b": _spec("db_b", 83.0, 20.0, 30.0),
    "mail_a": _spec("mail_a", 79.0, 36.0, 27.0),
    "mail_b": _spec("mail_b", 76.0, 28.0, 33.0),
}

#: Everything, keyed by name.
ALL_WORKLOADS: dict[str, WorkloadSpec] = {**TABLE3_WORKLOADS, **EXTRA_WORKLOADS}


def workload(name: str) -> WorkloadSpec:
    """Look up a catalog workload by name.

    Raises:
        KeyError: with the available names, when unknown.
    """
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}"
        ) from None


def table3_row(name: str) -> tuple[float, float, float, float]:
    """The paper's Table III reference row for a workload."""
    return TABLE3_REFERENCE[name]
