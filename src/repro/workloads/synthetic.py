"""Synthetic workload generator calibrated to Table III characteristics.

The MSR Cambridge traces the paper replays are characterised in its
Table III by four statistics: read-request ratio, mean read size,
read-data ratio, and the fraction of MSB reads whose associated LSB/CSB
pages are invalid.  The generator here is parameterised so each named
workload can be tuned to land near its Table III row:

* ``read_ratio`` sets the request mix directly;
* ``read_size_pages_mean`` / ``write_size_pages_mean`` set geometric
  request-size distributions;
* ``aging_update_fraction`` sizes the workload's **update working set**:
  a fixed, hot-skewed subset of the footprint that all writes (warm-up
  aging, timed writes, background updates) target.  Rewrites invalidate
  the old copies, creating wordlines with invalid lower pages — the IDA
  opportunity — while the pages *outside* the update set stay valid in
  place, cohabiting wordlines with the churned ones.  Those stable pages
  are exactly what the paper's modified refresh keeps and reprograms
  ("valid page data that might be read more and more in the future, as
  they are not invalidated during the long refresh period", Sec. III-C).
  For an update fraction ``u``, roughly ``1 - (1-u)^2`` of surviving MSB
  pages see an invalid LSB/CSB, so ``u`` ~ half the Table III column-5
  target;
* ``hot_fraction`` / ``hot_access_prob`` skew reads (and the update set)
  toward a hot region, correlating reads with the aged blocks;
* arrivals come in bursts (geometric burst sizes, exponential idle gaps)
  so queueing — the source of the paper's "indirect" wait-time benefit —
  actually occurs.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np

from .request import IoRequest
from .trace import Trace

__all__ = ["WorkloadSpec", "GeneratedWorkload", "generate_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Tunable description of one synthetic workload.

    Attributes:
        name: Workload identifier (e.g. ``"proj_1"``).
        num_requests: Timed requests to generate.
        read_ratio: Fraction of timed requests that are reads.
        footprint_pages: Logical pages the workload lives on.
        read_size_pages_mean: Mean read size, in pages (geometric).
        write_size_pages_mean: Mean write size, in pages (geometric).
        aging_update_fraction: Fraction of the footprint rewritten during
            warm-up (drives the invalid-lower-page exposure).
        hot_fraction: Fraction of the footprint forming the hot set.
        hot_access_prob: Probability an access targets the hot set.
        duration_us: Timed-trace span on the simulated clock.
        burst_size_mean: Mean requests per arrival burst.
        intra_burst_gap_us: Spacing of requests inside a burst.
        seed: Generator seed (derived from the name when 0).
    """

    name: str
    num_requests: int = 6000
    read_ratio: float = 0.9
    footprint_pages: int = 24_000
    read_size_pages_mean: float = 4.0
    write_size_pages_mean: float = 3.0
    aging_update_fraction: float = 0.15
    hot_fraction: float = 0.2
    hot_access_prob: float = 0.75
    duration_us: float = 120e6
    burst_size_mean: float = 6.0
    intra_burst_gap_us: float = 150.0
    update_chunk_pages: int = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ValueError("read_ratio must be within [0, 1]")
        if self.footprint_pages < 16:
            raise ValueError("footprint_pages too small")
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0.0 <= self.aging_update_fraction <= 1.0:
            raise ValueError("aging_update_fraction must be within [0, 1]")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be within (0, 1]")
        if min(self.read_size_pages_mean, self.write_size_pages_mean) < 1.0:
            raise ValueError("mean request sizes must be >= 1 page")

    def effective_seed(self) -> int:
        """Stable seed: explicit, or a CRC of the workload name."""
        if self.seed:
            return self.seed
        return zlib.crc32(self.name.encode()) or 7

    def scaled(self, num_requests: int, footprint_pages: int | None = None) -> "WorkloadSpec":
        """A copy resized for quick tests or full experiments."""
        footprint = footprint_pages or self.footprint_pages
        return replace(self, num_requests=num_requests, footprint_pages=footprint)


@dataclass
class GeneratedWorkload:
    """A realised workload: warm-up phases plus the timed trace.

    Attributes:
        spec: The generating spec.
        fill_lpns: LPNs written during the initial sequential fill.
        aging_lpns: LPNs rewritten during warm-up aging (in order).
        trace: The timed request stream.
    """

    spec: WorkloadSpec
    fill_lpns: range
    aging_lpns: list[int]
    trace: Trace


def _geometric_sizes(
    rng: np.random.Generator, count: int, mean_pages: float
) -> np.ndarray:
    """Geometric request sizes (in pages) with the given mean, >= 1."""
    if mean_pages <= 1.0:
        return np.ones(count, dtype=np.int64)
    p = 1.0 / mean_pages
    return rng.geometric(p, size=count).astype(np.int64)


def _pick_starts(
    rng: np.random.Generator,
    count: int,
    spec: WorkloadSpec,
) -> np.ndarray:
    """Start LPNs with hot-set skew."""
    hot_pages = max(1, int(spec.footprint_pages * spec.hot_fraction))
    in_hot = rng.random(count) < spec.hot_access_prob
    hot_starts = rng.integers(0, hot_pages, size=count)
    cold_span = max(1, spec.footprint_pages - hot_pages)
    cold_starts = hot_pages + rng.integers(0, cold_span, size=count)
    return np.where(in_hot, hot_starts, cold_starts)


def _arrival_times(rng: np.random.Generator, spec: WorkloadSpec) -> np.ndarray:
    """Bursty arrival process spanning roughly ``duration_us``."""
    times = np.empty(spec.num_requests, dtype=np.float64)
    expected_bursts = max(1.0, spec.num_requests / spec.burst_size_mean)
    busy = spec.num_requests * spec.intra_burst_gap_us
    mean_idle = max(
        spec.intra_burst_gap_us, (spec.duration_us - busy) / expected_bursts
    )
    now = 0.0
    index = 0
    while index < spec.num_requests:
        burst = max(1, int(rng.geometric(1.0 / spec.burst_size_mean)))
        for _ in range(min(burst, spec.num_requests - index)):
            times[index] = now
            now += spec.intra_burst_gap_us
            index += 1
        now += rng.exponential(mean_idle)
    return times


def update_working_set(spec: WorkloadSpec) -> np.ndarray:
    """The workload's fixed update working set: hot-skewed *chunks*.

    Deterministic per spec.  Size = ``aging_update_fraction`` of the
    footprint, composed of contiguous runs of ``update_chunk_pages``.
    Real traces update spatially — whole files and extents — so
    invalidation is clustered: runs fully invalidate their interior
    wordlines (the paper's case 8) while the run *boundaries* leave
    wordlines with a mix of invalid lower pages and valid upper pages
    (cases 1-4, the IDA opportunity).  This is what lets a block carry
    ~40% invalid pages (Table IV's ~113/192 valid) while only ~30% of MSB
    reads see invalid lower pages (Fig. 4).  Pages outside the set are
    never invalidated — the stable, read-hot data that survives in
    refresh target blocks and gets IDA-reprogrammed.
    """
    quota = int(spec.footprint_pages * spec.aging_update_fraction)
    if quota <= 0:
        return np.empty(0, dtype=np.int64)
    rng = np.random.default_rng(spec.effective_seed() + 2)
    chosen: set[int] = set()
    # Hot-skewed chunk starts; oversampled so the quota is always met.
    starts = _pick_starts(rng, max(8, 4 * quota // spec.update_chunk_pages), spec)
    for start in starts:
        if len(chosen) >= quota:
            break
        begin = int(start)
        end = min(spec.footprint_pages, begin + spec.update_chunk_pages)
        chosen.update(range(begin, end))
    return np.sort(np.fromiter(chosen, dtype=np.int64))


def sample_update_lpns(
    spec: WorkloadSpec, count: int, seed_offset: int = 1
) -> list[int]:
    """Sample ``count`` update targets from the update working set.

    Used for the *background update stream*: the experiment runner replays
    only a subset of a long trace's requests with timing, but applies the
    full update rate logically through these samples so invalid-page
    exposure evolves as in the original trace.
    """
    if count <= 0:
        return []
    working_set = update_working_set(spec)
    if len(working_set) == 0:
        return []
    rng = np.random.default_rng(spec.effective_seed() + seed_offset)
    picks = rng.integers(0, len(working_set), size=count)
    return [int(working_set[i]) for i in picks]


def generate_workload(
    spec: WorkloadSpec, page_size_bytes: int = 8192
) -> GeneratedWorkload:
    """Generate the warm-up phases and timed trace for ``spec``.

    Deterministic for a given spec (the seed derives from the name).
    """
    rng = np.random.default_rng(spec.effective_seed())

    # Warm-up aging: rewrite the update working set once so the old
    # copies become invalid pages scattered through the filled blocks.
    working_set = update_working_set(spec)
    aging_lpns = [int(lpn) for lpn in rng.permutation(working_set)]

    is_read = rng.random(spec.num_requests) < spec.read_ratio
    sizes = np.where(
        is_read,
        _geometric_sizes(rng, spec.num_requests, spec.read_size_pages_mean),
        _geometric_sizes(rng, spec.num_requests, spec.write_size_pages_mean),
    )
    read_starts = _pick_starts(rng, spec.num_requests, spec)
    if len(working_set):
        write_picks = rng.integers(0, len(working_set), size=spec.num_requests)
        write_starts = working_set[write_picks]
    else:
        write_starts = read_starts
    starts = np.where(is_read, read_starts, write_starts)
    times = _arrival_times(rng, spec)

    requests: list[IoRequest] = []
    for i in range(spec.num_requests):
        start = int(min(starts[i], spec.footprint_pages - 1))
        count = int(min(sizes[i], spec.footprint_pages - start))
        requests.append(
            IoRequest(
                time_us=float(times[i]),
                is_read=bool(is_read[i]),
                offset_bytes=start * page_size_bytes,
                size_bytes=max(1, count) * page_size_bytes,
            )
        )
    return GeneratedWorkload(
        spec=spec,
        fill_lpns=range(spec.footprint_pages),
        aging_lpns=aging_lpns,
        trace=Trace(name=spec.name, requests=requests),
    )
