"""Workload substrate: requests, traces, synthetic generators, catalog."""

from .msr import (
    ALL_WORKLOADS,
    EXTRA_WORKLOADS,
    TABLE3_REFERENCE,
    TABLE3_WORKLOADS,
    table3_row,
    workload,
)
from .request import IoRequest
from .synthetic import GeneratedWorkload, WorkloadSpec, generate_workload
from .trace import Trace, read_msr_csv, write_msr_csv

__all__ = [
    "ALL_WORKLOADS",
    "EXTRA_WORKLOADS",
    "TABLE3_REFERENCE",
    "TABLE3_WORKLOADS",
    "table3_row",
    "workload",
    "IoRequest",
    "GeneratedWorkload",
    "WorkloadSpec",
    "generate_workload",
    "Trace",
    "read_msr_csv",
    "write_msr_csv",
]
