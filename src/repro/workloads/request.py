"""Trace-level I/O request model (byte-addressed, as in MSR traces)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IoRequest"]


@dataclass(frozen=True)
class IoRequest:
    """One block-trace record.

    Attributes:
        time_us: Arrival time on the trace clock, microseconds.
        is_read: Read vs write.
        offset_bytes: Starting byte offset on the logical volume.
        size_bytes: Transfer length in bytes.
    """

    time_us: float
    is_read: bool
    offset_bytes: int
    size_bytes: int

    def __post_init__(self) -> None:
        if self.time_us < 0:
            raise ValueError("time_us must be non-negative")
        if self.offset_bytes < 0:
            raise ValueError("offset_bytes must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")

    def page_span(self, page_size_bytes: int) -> tuple[int, int]:
        """(first LPN, page count) of the pages this request touches."""
        first = self.offset_bytes // page_size_bytes
        last = (self.offset_bytes + self.size_bytes - 1) // page_size_bytes
        return first, last - first + 1

    def lpns(self, page_size_bytes: int) -> tuple[int, ...]:
        """All logical page numbers this request touches."""
        first, count = self.page_span(page_size_bytes)
        return tuple(range(first, first + count))
