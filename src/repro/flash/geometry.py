"""Physical topology of the simulated SSD (Table II / Fig. 1).

The paper's baseline device: 4 channels x 4 chips/channel, 2 dies/chip,
2 planes/die, 5472 blocks/plane, 192 pages/block (64 TLC wordlines), 8 KiB
pages.  The geometry object owns all address arithmetic: linear plane /
block / page numbering, wordline and page-type decomposition, and the
capacity math used by the experiment configs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Geometry", "PhysicalPageAddress"]


@dataclass(frozen=True)
class PhysicalPageAddress:
    """Fully-decomposed address of one physical page."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int

    def wordline(self, bits_per_cell: int) -> int:
        """Wordline index of this page within its block."""
        return self.page // bits_per_cell

    def page_type(self, bits_per_cell: int) -> int:
        """Bit position (0 = LSB) this page occupies in its wordline."""
        return self.page % bits_per_cell


@dataclass(frozen=True)
class Geometry:
    """Immutable SSD topology with derived counts and address math.

    Pages within a block are programmed in order; page ``p`` lives on
    wordline ``p // bits_per_cell`` as bit ``p % bits_per_cell``, so a
    192-page TLC block has 64 wordlines each carrying an LSB, CSB and MSB
    page — the layout the paper's Table I reasons about.
    """

    channels: int = 4
    chips_per_channel: int = 4
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 5472
    pages_per_block: int = 192
    page_size_kib: int = 8
    bits_per_cell: int = 3

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size_kib",
            "bits_per_cell",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.pages_per_block % self.bits_per_cell:
            raise ValueError(
                "pages_per_block must be a multiple of bits_per_cell "
                f"({self.pages_per_block} % {self.bits_per_cell} != 0)"
            )

    # ------------------------------------------------------------------
    # Derived counts
    # ------------------------------------------------------------------
    @property
    def wordlines_per_block(self) -> int:
        return self.pages_per_block // self.bits_per_cell

    @property
    def total_chips(self) -> int:
        return self.channels * self.chips_per_channel

    @property
    def total_dies(self) -> int:
        return self.total_chips * self.dies_per_chip

    @property
    def total_planes(self) -> int:
        return self.total_dies * self.planes_per_die

    @property
    def total_blocks(self) -> int:
        return self.total_planes * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def page_size_bytes(self) -> int:
        return self.page_size_kib * 1024

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size_bytes

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / (1 << 30)

    # ------------------------------------------------------------------
    # Address math
    # ------------------------------------------------------------------
    def plane_index(self, channel: int, chip: int, die: int, plane: int) -> int:
        """Linear plane number of (channel, chip, die, plane)."""
        return (
            (
                (channel * self.chips_per_channel + chip) * self.dies_per_chip
                + die
            )
            * self.planes_per_die
            + plane
        )

    def die_index(self, channel: int, chip: int, die: int) -> int:
        """Linear die number of (channel, chip, die)."""
        return (channel * self.chips_per_channel + chip) * self.dies_per_chip + die

    def die_of_plane(self, plane_index: int) -> int:
        """Linear die number owning a linear plane number."""
        return plane_index // self.planes_per_die

    def channel_of_plane(self, plane_index: int) -> int:
        """Channel number owning a linear plane number."""
        per_channel = (
            self.chips_per_channel * self.dies_per_chip * self.planes_per_die
        )
        return plane_index // per_channel

    def decompose_plane(self, plane_index: int) -> tuple[int, int, int, int]:
        """(channel, chip, die, plane) of a linear plane number."""
        plane = plane_index % self.planes_per_die
        rest = plane_index // self.planes_per_die
        die = rest % self.dies_per_chip
        rest //= self.dies_per_chip
        chip = rest % self.chips_per_channel
        channel = rest // self.chips_per_channel
        return channel, chip, die, plane

    def block_index(self, plane_index: int, block: int) -> int:
        """Linear block number of block ``block`` in ``plane_index``."""
        return plane_index * self.blocks_per_plane + block

    def plane_of_block(self, block_index: int) -> int:
        return block_index // self.blocks_per_plane

    def page_number(self, block_index: int, page: int) -> int:
        """Linear physical page number (PPN)."""
        return block_index * self.pages_per_block + page

    def decompose_page(self, ppn: int) -> tuple[int, int]:
        """(linear block number, page-in-block) of a PPN."""
        return divmod(ppn, self.pages_per_block)

    def address_of(self, ppn: int) -> PhysicalPageAddress:
        """Full physical address of a PPN."""
        block_index, page = self.decompose_page(ppn)
        plane_index, block = divmod(block_index, self.blocks_per_plane)
        channel, chip, die, plane = self.decompose_plane(plane_index)
        return PhysicalPageAddress(channel, chip, die, plane, block, page)

    def wordline_pages(self, wordline: int) -> tuple[int, ...]:
        """Page-in-block indices sharing ``wordline``."""
        base = wordline * self.bits_per_cell
        return tuple(range(base, base + self.bits_per_cell))

    def scaled(self, blocks_per_plane: int) -> "Geometry":
        """A copy with a reduced per-plane block count (test/bench scale)."""
        return Geometry(
            channels=self.channels,
            chips_per_channel=self.chips_per_channel,
            dies_per_chip=self.dies_per_chip,
            planes_per_die=self.planes_per_die,
            blocks_per_plane=blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_size_kib=self.page_size_kib,
            bits_per_cell=self.bits_per_cell,
        )
