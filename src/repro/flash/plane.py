"""Per-plane block pools.

Each plane owns its blocks: a free list, the currently-open ("active")
block that sequential programs land in, and the set of in-use blocks.  The
allocator and the GC both work at plane granularity, mirroring the
plane-level parallelism of real devices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .block import Block

__all__ = ["PlanePool"]


@dataclass
class PlanePool:
    """Free/active/used block management for one plane.

    Attributes:
        plane_index: Linear plane number.
        blocks: All blocks of this plane, by in-plane index.
        free: In-plane indices of erased blocks, FIFO.
        active: In-plane index of the block currently accepting programs,
            or ``None`` when a fresh one must be opened.
        used: In-plane indices of fully- or partially-programmed blocks
            that are not the active block.
        retired: In-plane indices of grown-bad blocks — permanently out
            of rotation (never free, never allocated, never a GC or
            refresh candidate).  Retirement shrinks the plane's usable
            capacity; only fault-injection paths populate this.
    """

    plane_index: int
    blocks: list[Block]
    free: deque[int] = field(init=False)
    active: int | None = field(default=None, init=False)
    used: set[int] = field(init=False)
    retired: set[int] = field(init=False)

    def __post_init__(self) -> None:
        self.free = deque(range(len(self.blocks)))
        self.used = set()
        self.retired = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self.free)

    @property
    def total_blocks(self) -> int:
        return len(self.blocks)

    def block(self, in_plane_index: int) -> Block:
        return self.blocks[in_plane_index]

    def used_blocks(self) -> list[Block]:
        """All non-free blocks, including the active one."""
        result = [self.blocks[i] for i in sorted(self.used)]
        if self.active is not None:
            result.append(self.blocks[self.active])
        return result

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def active_block(self, now_us: float) -> Block:
        """The block the next program goes to, opening one if needed.

        Raises:
            RuntimeError: if the plane is out of free blocks (the FTL must
                run GC before this happens).
        """
        if self.active is not None and not self.blocks[self.active].is_full:
            return self.blocks[self.active]
        if self.active is not None:
            self.blocks[self.active].seal_summary()
            self.used.add(self.active)
            self.active = None
        if not self.free:
            raise RuntimeError(f"plane {self.plane_index} has no free blocks")
        self.active = self.free.popleft()
        return self.blocks[self.active]

    def retire_active(self) -> None:
        """Move a filled active block to the used set.

        Closing a block writes its summary page (close-time sequence
        stamp + wordline coding modes) — the SPOR mount's per-block
        anchor record.
        """
        if self.active is not None and self.blocks[self.active].is_full:
            self.blocks[self.active].seal_summary()
            self.used.add(self.active)
            self.active = None

    def release(self, in_plane_index: int) -> None:
        """Return an erased block to the free list."""
        if in_plane_index in self.retired:
            raise RuntimeError(
                f"block {in_plane_index} of plane {self.plane_index} is "
                "retired (grown bad) and cannot rejoin the free list"
            )
        block = self.blocks[in_plane_index]
        if block.next_page and block.valid_count:
            raise RuntimeError("cannot release a block holding valid data")
        self.used.discard(in_plane_index)
        if self.active == in_plane_index:
            self.active = None
        self.free.append(in_plane_index)

    def gc_candidates(self) -> list[Block]:
        """Blocks eligible as GC victims (used, not the active block)."""
        return [self.blocks[i] for i in self.used]

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------
    def retire(self, in_plane_index: int) -> None:
        """Take a grown-bad block out of rotation permanently.

        The block leaves whichever set currently holds it (free, used or
        active); it will never be allocated, GC'd or refreshed again.
        The caller is responsible for having migrated any valid data off
        the block first.
        """
        if in_plane_index in self.retired:
            return
        self.retired.add(in_plane_index)
        self.blocks[in_plane_index].retired = True
        self.used.discard(in_plane_index)
        if self.active == in_plane_index:
            self.active = None
        try:
            self.free.remove(in_plane_index)
        except ValueError:
            pass

    def is_retired(self, in_plane_index: int) -> bool:
        return in_plane_index in self.retired

    @property
    def retired_count(self) -> int:
        return len(self.retired)
