"""Error models: raw bit errors, program disturb, and read retry.

Three stochastic effects matter to the paper's evaluation:

* **Adjustment disturb** (Sec. V-B): the ISPP pulses of a voltage
  adjustment disturb neighbouring wordlines; the paper sweeps the fraction
  of reprogrammed pages that come out corrupted from 0% to 80%
  (IDA-E0 .. IDA-E80).  :class:`AdjustDisturbModel` is that knob.
* **RBER growth over the device lifetime** (Sec. V-F): raw bit error rate
  rises with program/erase wear and retention age; late in life reads
  start to need LDPC read-retries.  :class:`RberModel` provides a standard
  exponential wear curve calibrated so the paper's "early" and "late"
  lifetime phases land below and above the retry threshold.
* **Read retry** (Sec. V-F, after [38]): when a decode fails, the page is
  re-sensed with shifted voltages — every retry repeats the page's full
  memory-access time, so slow (many-sense) pages pay the most.
  :class:`ReadRetryModel` samples per-read retry counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["AdjustDisturbModel", "RberModel", "ReadRetryModel"]


@dataclass(frozen=True)
class AdjustDisturbModel:
    """The IDA-E{x} knob: fraction of adjusted pages that get corrupted.

    Attributes:
        error_rate: Probability that a page kept through a voltage
            adjustment is disturbed badly enough that its (error-free,
            ECC-corrected) copy must be written to the new block instead
            (step 8 of Fig. 7).
    """

    error_rate: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")

    def corrupted_pages(
        self, rng: np.random.Generator, pages: list[int]
    ) -> list[int]:
        """Subset of ``pages`` disturbed by an adjustment, sampled i.i.d."""
        if not pages or self.error_rate == 0.0:
            return []
        if self.error_rate == 1.0:
            return list(pages)
        draws = rng.random(len(pages))
        return [page for page, draw in zip(pages, draws) if draw < self.error_rate]


@dataclass(frozen=True)
class RberModel:
    """Raw bit error rate as a function of wear and retention.

    ``rber = base * exp(wear_exponent * pe_fraction) * (1 + retention_slope
    * retention_days)`` — the standard empirical shape (Cai et al. [23]).

    Attributes:
        base_rber: RBER of a fresh block immediately after program.
        wear_exponent: Exponential growth factor over the rated life.
        retention_slope: Linear RBER growth per day of retention.
        rated_pe_cycles: Erase-cycle limit the wear fraction is taken
            against.
    """

    base_rber: float = 4e-4
    wear_exponent: float = 2.3
    retention_slope: float = 0.25
    rated_pe_cycles: int = 3000

    def __post_init__(self) -> None:
        if self.base_rber <= 0:
            raise ValueError("base_rber must be positive")
        if self.wear_exponent < 0:
            raise ValueError("wear_exponent must be non-negative")
        if self.retention_slope < 0:
            raise ValueError("retention_slope must be non-negative")
        if self.rated_pe_cycles < 1:
            raise ValueError("rated_pe_cycles must be >= 1")

    def rber(self, pe_cycles: int, retention_days: float = 0.0) -> float:
        """RBER of a block with the given wear and retention age."""
        if pe_cycles < 0 or retention_days < 0:
            raise ValueError("wear and retention must be non-negative")
        wear_fraction = min(1.0, pe_cycles / self.rated_pe_cycles)
        wear_term = math.exp(self.wear_exponent * wear_fraction)
        retention_term = 1.0 + self.retention_slope * retention_days
        return self.base_rber * wear_term * retention_term


@dataclass(frozen=True)
class ReadRetryModel:
    """Per-read retry counts for the Fig. 11 lifetime experiment.

    Following the LDPC-in-SSD characterisation [38], the probability that
    a hard decode fails grows with RBER past a correction threshold; each
    failed attempt triggers one extra sensing pass.  We model the retry
    count as a truncated geometric with per-attempt failure probability
    ``fail_prob``.

    A page's raw errors accumulate per *sense boundary* (each read
    voltage contributes its misclassification tail — see
    :mod:`repro.flash.voltage`), so a page read with fewer senses fails
    its decode less often.  ``fail_prob`` is calibrated for a
    ``reference_senses``-sense page (the TLC MSB); an ``s``-sense page
    fails with ``1 - (1 - p1)**s`` where ``p1`` is the per-sense failure
    contribution.  This is the second half of the paper's Fig. 11
    mechanism: IDA-coded pages retry less often *and* each retry re-runs
    a cheaper memory access.

    Attributes:
        fail_prob: Probability each decode attempt fails for a
            reference-sense-count page (0 early in the device lifetime;
            the late-lifetime phase of Fig. 11 uses values around
            0.4-0.6).
        max_retries: Hard cap on extra sensing passes (LDPC soft-decode
            levels are finite; [38] uses up to 7 extra levels).
        reference_senses: The sense count ``fail_prob`` is quoted for.
    """

    fail_prob: float = 0.0
    max_retries: int = 7
    reference_senses: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_prob < 1.0:
            raise ValueError("fail_prob must be within [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.reference_senses < 1:
            raise ValueError("reference_senses must be >= 1")

    def page_fail_prob(self, senses: int) -> float:
        """Per-attempt decode-failure probability of an ``senses``-sense page."""
        if senses < 1:
            raise ValueError("senses must be >= 1")
        if self.fail_prob == 0.0:
            return 0.0
        per_sense = 1.0 - (1.0 - self.fail_prob) ** (1.0 / self.reference_senses)
        return 1.0 - (1.0 - per_sense) ** senses

    @classmethod
    def for_rber(
        cls, rber: float, threshold: float = 2e-3, sharpness: float = 1500.0
    ) -> "ReadRetryModel":
        """Retry model induced by an RBER level.

        A logistic ramp around the ECC correction ``threshold``: well
        below it decodes always succeed; well above it most reads need
        retries.
        """
        if rber < 0:
            raise ValueError("rber must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if sharpness <= 0:
            raise ValueError("sharpness must be positive")
        fail = 1.0 / (1.0 + math.exp(-sharpness * (rber - threshold)))
        return cls(fail_prob=min(0.95, fail))

    def sample_retries(self, rng: np.random.Generator, senses: int | None = None) -> int:
        """Number of extra sensing passes one page read needs.

        Always consumes exactly ``max_retries`` uniforms, so paired
        simulation runs that read the same host pages in the same order
        stay on common random numbers even when their sense counts
        differ (baseline vs IDA).
        """
        if self.fail_prob == 0.0:
            return 0
        p = self.page_fail_prob(senses if senses is not None else self.reference_senses)
        draws = rng.random(self.max_retries)
        retries = 0
        for u in draws:
            if u < p:
                retries += 1
            else:
                break
        return retries

    def expected_retries(self, senses: int | None = None) -> float:
        """Mean of :meth:`sample_retries` (for closed-form checks)."""
        p = self.page_fail_prob(senses if senses is not None else self.reference_senses)
        if p == 0.0:
            return 0.0
        # Truncated geometric: E = sum_{k=1..max} p^k.
        return sum(p**k for k in range(1, self.max_retries + 1))
