"""Incremental Step Pulse Programming (ISPP) model [11].

ISPP repeatedly injects charge until a cell's threshold voltage reaches its
target — so it can only move states *rightward*, and its latency is
proportional to the voltage range it sweeps.  Two facts from Sec. III-B
are modelled here:

* a full page program sweeps the whole range (states 0 .. 2**b - 1) and
  takes ``program_us``;
* the IDA voltage adjustment sweeps at most half that range (states are
  first pushed past the midpoint), so it *could* finish in about half a
  program time — but the paper conservatively charges one full MSB program
  time, which is our default (``TimingSpec.adjust_program_fraction = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ida import IdaTransform
from .timing import TimingSpec

__all__ = ["IsppModel"]


@dataclass(frozen=True)
class IsppModel:
    """Latency model for ISPP programming and IDA voltage adjustment.

    Attributes:
        timing: The device timing spec supplying the full-program time.
    """

    timing: TimingSpec

    def loops_for_distance(self, state_distance: int, num_states: int) -> float:
        """Fraction of a full program's ISPP loops for a state jump.

        A full program may traverse ``num_states - 1`` state widths; a
        jump of ``state_distance`` widths costs proportionally fewer
        loops.
        """
        if num_states < 2:
            raise ValueError("need at least two states")
        if not 0 <= state_distance <= num_states - 1:
            raise ValueError(
                f"state distance {state_distance} out of range for "
                f"{num_states} states"
            )
        return state_distance / (num_states - 1)

    def proportional_adjust_us(self, transform: IdaTransform) -> float:
        """Adjustment latency if charged proportionally to the sweep range.

        For the Fig. 5 TLC merge the largest jump is S1 -> S8 but the
        paper's two-phase argument (first push everything past the
        midpoint) halves the *per-loop search* range; we model the cost by
        the largest jump relative to a full-range program, which for the
        LSB-invalid TLC merge is 7/7 = 1.0 and for the midpoint-assisted
        schedule is ~0.5.  This estimator is used only by the ablation
        bench; the simulator uses :meth:`conservative_adjust_us`.
        """
        num = transform.base.num_states
        half_range = max(1, (num - 1) // 2)
        distance = min(transform.max_move_distance(), half_range)
        return self.timing.program_us * self.loops_for_distance(distance, num)

    def conservative_adjust_us(self) -> float:
        """The paper's conservative choice: one MSB program time per WL."""
        return self.timing.adjust_us()
