"""Flash timing parameters (Table II) and derived operation latencies.

All times are in microseconds.  The Table II baseline:

* page reads: 50 / 100 / 150 us for LSB / CSB / MSB (1 / 2 / 4 senses);
* page program: 2.3 ms; block erase: 3 ms;
* channel: 333 MT/s, 48 us per 8 KiB page transfer;
* ECC decode: 20 us per page;
* IDA voltage adjustment: conservatively one MSB page-program time per
  wordline (Sec. III-B, "Voltage Adjustment Feasibility").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.coding import GrayCoding
from ..core.ida import IdaTransform
from ..core.readpath import ReadLatencyModel

__all__ = ["TimingSpec"]


@dataclass(frozen=True)
class TimingSpec:
    """Operation latencies of one flash device, all in microseconds.

    Attributes:
        read_model: Sense-count to memory-access-latency mapping.
        program_us: Full page-program (ISPP) time.
        erase_us: Block-erase time.
        transfer_us: Channel time to move one page between chip and DRAM.
        ecc_decode_us: ECC-engine time to decode one page.
        adjust_program_fraction: IDA voltage-adjustment time for one
            wordline, as a fraction of ``program_us``.  The paper argues
            ~0.5 is achievable (half the ISPP voltage range) but
            *conservatively charges 1.0*; we default to the conservative
            choice and expose the knob for ablation.
        host_overhead_us: Fixed host-interface cost per request (PCIe 3.0
            x4 is far faster than the flash path, so this is small).
    """

    read_model: ReadLatencyModel = ReadLatencyModel(tr_base_us=50.0, dtr_us=50.0)
    program_us: float = 2300.0
    erase_us: float = 3000.0
    transfer_us: float = 48.0
    ecc_decode_us: float = 20.0
    adjust_program_fraction: float = 1.0
    host_overhead_us: float = 5.0

    def __post_init__(self) -> None:
        for name in ("program_us", "erase_us", "transfer_us", "ecc_decode_us"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0 < self.adjust_program_fraction <= 2.0:
            raise ValueError("adjust_program_fraction must be in (0, 2]")
        if self.host_overhead_us < 0:
            raise ValueError("host_overhead_us must be non-negative")

    # ------------------------------------------------------------------
    # Derived latencies
    # ------------------------------------------------------------------
    def read_us(self, senses: int) -> float:
        """Memory-access time of a read needing ``senses`` senses."""
        return self.read_model.latency_us(senses)

    def page_read_us(self, coding: GrayCoding, bit: int) -> float:
        """Memory-access time of a conventional page read."""
        return self.read_model.page_latency_us(coding, bit)

    def ida_read_us(self, transform: IdaTransform, bit: int) -> float:
        """Memory-access time of an IDA-reprogrammed page read."""
        return self.read_model.ida_latency_us(transform, bit)

    def adjust_us(self) -> float:
        """Voltage-adjustment time for one wordline."""
        return self.program_us * self.adjust_program_fraction

    # ------------------------------------------------------------------
    # Variants
    # ------------------------------------------------------------------
    def with_dtr(self, dtr_us: float) -> "TimingSpec":
        """Same device with a different read-latency step (Fig. 9 sweep)."""
        return replace(self, read_model=self.read_model.with_dtr(dtr_us))

    @classmethod
    def tlc_table2(cls) -> "TimingSpec":
        """The Table II TLC baseline (50/100/150 us reads)."""
        return cls()

    @classmethod
    def mlc_spec(cls) -> "TimingSpec":
        """The Sec. V-G MLC device: 65 / 115 us LSB / MSB reads [39]."""
        return cls(read_model=ReadLatencyModel(tr_base_us=65.0, dtr_us=50.0))

    @classmethod
    def qlc_spec(cls) -> "TimingSpec":
        """A projected QLC device: 1/2/4/8-sense reads at 50 us steps.

        QLC parts are slower than TLC across the board; we keep the TLC
        base/step so the *relative* QLC benefit is attributable to the
        sense-count structure alone (the paper's future-work argument).
        """
        return cls(read_model=ReadLatencyModel(tr_base_us=60.0, dtr_us=50.0))
