"""Cell-resolution flash chip for executable coding demonstrations.

:class:`CellChip` wires :class:`~repro.flash.cell.WordlineCells` into a
small block/wordline hierarchy so the full IDA data path — program with
the conventional coding, invalidate, voltage-adjust, re-read — can be
executed bit-exactly.  The integration tests and the ``data_integrity``
example use it to demonstrate that IDA never changes stored data (a
"Critical Point" of Sec. III-C); the performance simulator does not (it
uses the symbolic sense-count model, like the paper's DiskSim setup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.coding import GrayCoding
from ..core.ida import IdaTransform
from .cell import WordlineCells

__all__ = ["CellChip"]


@dataclass
class CellChip:
    """A tiny chip of cell-exact blocks.

    Attributes:
        coding: Conventional coding programmed into new wordlines.
        num_blocks: Blocks on the chip.
        wordlines_per_block: Wordlines per block.
        cells_per_wordline: Cells (bits per page) per wordline.
    """

    coding: GrayCoding
    num_blocks: int = 4
    wordlines_per_block: int = 8
    cells_per_wordline: int = 64
    _blocks: list[list[WordlineCells]] = field(init=False)

    def __post_init__(self) -> None:
        if min(self.num_blocks, self.wordlines_per_block, self.cells_per_wordline) < 1:
            raise ValueError("chip dimensions must be positive")
        self._blocks = [
            [
                WordlineCells(self.coding, self.cells_per_wordline)
                for _ in range(self.wordlines_per_block)
            ]
            for _ in range(self.num_blocks)
        ]

    def wordline(self, block: int, wordline: int) -> WordlineCells:
        return self._blocks[block][wordline]

    def program_wordline(
        self, block: int, wordline: int, pages: list[np.ndarray]
    ) -> None:
        """Program all page types of one wordline (LSB page first)."""
        self.wordline(block, wordline).program(pages)

    def read_page(self, block: int, wordline: int, bit: int) -> np.ndarray:
        """Read one page by boundary sensing."""
        return self.wordline(block, wordline).read_page(bit)

    def page_senses(self, block: int, wordline: int, bit: int) -> int:
        """Senses the given page read currently needs."""
        return self.wordline(block, wordline).senses(bit)

    def adjust_wordline(
        self, block: int, wordline: int, valid_bits: tuple[int, ...]
    ) -> IdaTransform:
        """Apply the IDA voltage adjustment to one wordline."""
        return self.wordline(block, wordline).apply_ida(valid_bits)

    def erase_block(self, block: int) -> None:
        """Erase every wordline of a block."""
        for cells in self._blocks[block]:
            cells.erase()

    def random_pages(
        self, rng: np.random.Generator
    ) -> list[np.ndarray]:
        """Random page data for one wordline (one array per page type)."""
        return [
            rng.integers(0, 2, self.cells_per_wordline, dtype=np.int8)
            for _ in range(self.coding.bits)
        ]
