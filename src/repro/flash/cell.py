"""Voltage-state-level wordline model.

This is the exact, cell-resolution layer: every cell of a wordline holds an
explicit threshold-voltage state, programs and reads go through the coding
tables, and the IDA adjustment literally moves states rightward.  The FTL
simulator never touches this layer (it consumes derived sense counts, just
as the paper's DiskSim model did) — it exists so the coding mechanics can
be *executed* and property-tested, and so the examples can demonstrate the
bit-exactness claims of Sec. III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.coding import GrayCoding
from ..core.ida import IdaTransform

__all__ = ["WordlineCells", "ERASED_STATE"]

#: Index of the erased (lowest) voltage state in every coding.
ERASED_STATE = 0


@dataclass
class WordlineCells:
    """The cells of one wordline, as explicit voltage states.

    Attributes:
        coding: The conventional coding the wordline was programmed with.
        size: Number of cells (bits per page).
        states: Current threshold-voltage state of each cell.
        transform: The IDA transform applied to this wordline, or ``None``
            while it is conventionally coded.
    """

    coding: GrayCoding
    size: int
    states: np.ndarray = field(init=False)
    transform: IdaTransform | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("a wordline needs at least one cell")
        self.states = np.full(self.size, ERASED_STATE, dtype=np.int8)

    # ------------------------------------------------------------------
    # Conventional program / read
    # ------------------------------------------------------------------
    def program(self, pages: Sequence[np.ndarray]) -> None:
        """Program all pages of the wordline at once.

        Args:
            pages: One bit array per page, LSB page first, each of length
                ``size``.  Programming requires an erased wordline — real
                NAND cannot lower a cell's voltage without a block erase.

        Raises:
            RuntimeError: if any cell is not erased, or the wordline was
                IDA-reprogrammed (it must be erased first).
        """
        if self.transform is not None:
            raise RuntimeError("cannot reprogram an IDA wordline without erase")
        if (self.states != ERASED_STATE).any():
            raise RuntimeError("cannot program a non-erased wordline")
        if len(pages) != self.coding.bits:
            raise ValueError(
                f"need {self.coding.bits} pages, got {len(pages)}"
            )
        bits = np.vstack([np.asarray(p, dtype=np.int8) for p in pages])
        if bits.shape != (self.coding.bits, self.size):
            raise ValueError("page length mismatch")
        lookup = {state: index for index, state in enumerate(self.coding.states)}
        for cell in range(self.size):
            self.states[cell] = lookup[tuple(int(b) for b in bits[:, cell])]

    def read_page(self, bit: int) -> np.ndarray:
        """Read one page by boundary sensing.

        Uses the conventional boundaries when the wordline is conventional
        and the merged boundaries after an IDA adjustment.  The sensing
        procedure is the parity-of-crossed-boundaries rule of
        :meth:`repro.core.coding.GrayCoding.read_bit_by_sensing`.
        """
        boundaries = self._boundaries(bit)
        anchor = self._anchor(bit)
        crossed = np.zeros(self.size, dtype=np.int64)
        for boundary in boundaries:
            crossed += self.states >= boundary
        even = (crossed % 2) == 0
        return np.where(even, anchor, 1 - anchor).astype(np.int8)

    def senses(self, bit: int) -> int:
        """Number of senses a read of ``bit`` currently needs."""
        return len(self._boundaries(bit))

    # ------------------------------------------------------------------
    # IDA adjustment
    # ------------------------------------------------------------------
    def apply_ida(self, valid_bits: Sequence[int]) -> IdaTransform:
        """Voltage-adjust the wordline for the given surviving bits.

        Every cell moves (rightward only — checked) to its merged state.
        Returns the applied transform; subsequent :meth:`read_page` calls
        for valid bits use the merged boundaries.
        """
        transform = IdaTransform(self.coding, tuple(valid_bits))
        move = np.asarray(transform.move_map, dtype=np.int8)
        targets = move[self.states]
        if (targets < self.states).any():
            raise RuntimeError("ISPP cannot move a cell to a lower state")
        self.states = targets
        self.transform = transform
        return transform

    def erase(self) -> None:
        """Erase the wordline: all cells back to the erased state."""
        self.states.fill(ERASED_STATE)
        self.transform = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _boundaries(self, bit: int) -> tuple[int, ...]:
        if self.transform is not None:
            return self.transform.boundaries(bit)
        return self.coding.boundaries(bit)

    def _anchor(self, bit: int) -> int:
        """Bit value below the first kept boundary (sensing anchor)."""
        if self.transform is not None:
            lowest = self.transform.merged_states[0]
            return self.coding.states[lowest][bit]
        return self.coding.states[0][bit]
