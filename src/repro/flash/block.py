"""Block-level bookkeeping used by the FTL and simulator.

A :class:`Block` tracks exactly the state the paper's FTL needs (Sec.
III-C, "Hardware/Software Overheads"): per-page validity (the existing
block status table), one flag telling conventional blocks from IDA blocks,
and one per-wordline mode recording which reprogrammed code the wordline
uses (CSB+MSB kept, or MSB only — generalised here to "kept-bit suffix
start").  Sense counts for every (wordline mode, page type) pair are
precomputed once per coding in :class:`SenseTable`.

Since the columnar refactor a ``Block`` no longer *owns* its metadata:
it is a view over one slot of a shared
:class:`~repro.flash.state.DeviceState` (see that module for the column
schema).  A ``Block`` built standalone — ``Block(index=3,
pages_per_block=192, bits_per_cell=3)``, as unit tests do — allocates a
private single-slot state, so the classic object-per-block style keeps
working unchanged.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from ..core.coding import GrayCoding
from ..core.ida import IdaTransform
from .state import (
    FLAG_IS_IDA,
    FLAG_LOCKED,
    FLAG_RETIRED,
    NO_SUMMARY,
    DeviceState,
)

__all__ = ["PageState", "SenseTable", "Block", "CONVENTIONAL_WL", "TORN_WL"]


class PageState(IntEnum):
    """Lifecycle of one physical page."""

    FREE = 0
    VALID = 1
    INVALID = 2


#: Sentinel wordline mode: programmed with the conventional coding.
CONVENTIONAL_WL = 0xFF

#: Sentinel wordline mode: an IDA reprogram was interrupted mid-adjust and
#: the cells sit between the old and new coding.  A torn wordline is
#: *unreadable* (``SenseTable.senses`` raises) — fault recovery must
#: resolve it to one coding or the other before anything reads it, which
#: is exactly what :func:`repro.faults.check_coding_invariants` pins.
TORN_WL = 0xFE

_VALID = int(PageState.VALID)
_INVALID = int(PageState.INVALID)


class SenseTable:
    """Precomputed sense counts for a coding and all its IDA modes.

    For a ``b``-bit coding there are ``b - 1`` possible reprogrammed modes,
    identified by the *start bit* of the kept suffix (TLC: start 1 keeps
    CSB+MSB, start 2 keeps MSB only).  The table resolves
    ``(wordline mode, page type) -> senses`` in O(1), which is the hot path
    of the simulator.
    """

    def __init__(self, coding: GrayCoding) -> None:
        self.coding = coding
        self.conventional: tuple[int, ...] = coding.sense_counts()
        self.transforms: dict[int, IdaTransform] = {}
        self._ida: dict[int, dict[int, int]] = {}
        for start in range(1, coding.bits):
            transform = IdaTransform(coding, tuple(range(start, coding.bits)))
            self.transforms[start] = transform
            self._ida[start] = transform.sense_counts()
        self._lut: np.ndarray | None = None

    def senses(self, wl_mode: int, bit: int) -> int:
        """Senses to read page type ``bit`` under wordline mode ``wl_mode``.

        Args:
            wl_mode: :data:`CONVENTIONAL_WL` or the kept-suffix start bit.
            bit: Page type (0 = LSB).

        Raises:
            KeyError: if the bit was evicted by the mode (reading an
                invalidated page of an IDA wordline is a logic error).
        """
        if wl_mode == CONVENTIONAL_WL:
            return self.conventional[bit]
        if wl_mode == TORN_WL:
            raise KeyError(
                "wordline is torn (interrupted IDA reprogram); "
                "recovery must resolve its coding before reads"
            )
        return self._ida[wl_mode][bit]

    def transform_for(self, start: int) -> IdaTransform:
        """The IDA transform of the mode keeping bits ``start..b-1``."""
        return self.transforms[start]

    def lut(self) -> np.ndarray:
        """The table as a dense ``(256, bits)`` array for batched lookup.

        Row = wordline mode byte, column = page type; 0 marks unreadable
        combinations (evicted bit, torn wordline, undefined mode) so
        vector consumers (:meth:`DeviceState.senses_for_ppns`) can detect
        the same logic errors the scalar :meth:`senses` raises on.
        """
        if self._lut is None:
            lut = np.zeros((256, self.coding.bits), dtype=np.int64)
            lut[CONVENTIONAL_WL, :] = self.conventional
            for start, counts in self._ida.items():
                for bit, senses in counts.items():
                    lut[start, bit] = senses
            self._lut = lut
        return self._lut


class Block:
    """View of one physical block's slot in a :class:`DeviceState`.

    The attribute surface is unchanged from the pre-columnar dataclass —
    ``next_page``, ``valid_count``, ``erase_count``, ``programmed_at_us``
    (None until first program), ``is_ida``, ``locked`` all read and write
    through to the shared columns.

    Attributes:
        state: The columnar store holding this block's metadata.
        slot: This block's row in ``state`` (device-linear).
        index: Linear block number within the device (equals ``slot`` for
            device-built blocks; standalone test blocks may report any
            index while occupying slot 0 of a private state).
        pages_per_block: Page count (Table II: 192).
        bits_per_cell: Cell density (TLC: 3).
    """

    __slots__ = (
        "state",
        "slot",
        "index",
        "pages_per_block",
        "bits_per_cell",
        "_ps",
        "_wl",
        "_p0",
        "_w0",
    )

    def __init__(
        self,
        index: int,
        pages_per_block: int,
        bits_per_cell: int,
        state: DeviceState | None = None,
        slot: int | None = None,
    ) -> None:
        if state is None:
            state = DeviceState(1, pages_per_block, bits_per_cell)
            slot = 0
        elif slot is None:
            slot = index
        if (
            pages_per_block != state.pages_per_block
            or bits_per_cell != state.bits_per_cell
        ):
            raise ValueError("block geometry disagrees with its device state")
        self.state = state
        self.slot = slot
        self.index = index
        self.pages_per_block = pages_per_block
        self.bits_per_cell = bits_per_cell
        # Cached buffer references + base offsets: the scalar hot path
        # must cost one index, not three attribute hops.
        self._ps = state.page_state
        self._wl = state.wl_mode
        self._p0 = slot * pages_per_block
        self._w0 = slot * state.wordlines_per_block

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(index={self.index}, next_page={self.next_page}, "
            f"valid={self.valid_count}, erases={self.erase_count}, "
            f"ida={self.is_ida}, locked={self.locked})"
        )

    # ------------------------------------------------------------------
    # Column-backed attributes
    # ------------------------------------------------------------------
    @property
    def next_page(self) -> int:
        return self.state.next_page[self.slot]

    @next_page.setter
    def next_page(self, value: int) -> None:
        self.state.next_page[self.slot] = value

    @property
    def valid_count(self) -> int:
        return self.state.valid_count[self.slot]

    @valid_count.setter
    def valid_count(self, value: int) -> None:
        self.state.valid_count[self.slot] = value

    @property
    def erase_count(self) -> int:
        return self.state.erase_count[self.slot]

    @erase_count.setter
    def erase_count(self, value: int) -> None:
        self.state.erase_count[self.slot] = value

    @property
    def programmed_at_us(self) -> float | None:
        value = self.state.programmed_at_us[self.slot]
        return None if value != value else value  # NaN encodes None

    @programmed_at_us.setter
    def programmed_at_us(self, value: float | None) -> None:
        self.state.programmed_at_us[self.slot] = (
            float("nan") if value is None else value
        )

    @property
    def is_ida(self) -> bool:
        return bool(self.state.flags[self.slot] & FLAG_IS_IDA)

    @is_ida.setter
    def is_ida(self, value: bool) -> None:
        if value:
            self.state.flags[self.slot] |= FLAG_IS_IDA
        else:
            self.state.flags[self.slot] &= ~FLAG_IS_IDA & 0xFF

    @property
    def locked(self) -> bool:
        return bool(self.state.flags[self.slot] & FLAG_LOCKED)

    @locked.setter
    def locked(self, value: bool) -> None:
        if value:
            self.state.flags[self.slot] |= FLAG_LOCKED
        else:
            self.state.flags[self.slot] &= ~FLAG_LOCKED & 0xFF

    @property
    def retired(self) -> bool:
        return bool(self.state.flags[self.slot] & FLAG_RETIRED)

    @retired.setter
    def retired(self, value: bool) -> None:
        if value:
            self.state.flags[self.slot] |= FLAG_RETIRED
        else:
            self.state.flags[self.slot] &= ~FLAG_RETIRED & 0xFF

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def wordlines(self) -> int:
        return self.pages_per_block // self.bits_per_cell

    @property
    def is_full(self) -> bool:
        return self.state.next_page[self.slot] >= self.pages_per_block

    @property
    def free_pages(self) -> int:
        return self.pages_per_block - self.state.next_page[self.slot]

    @property
    def invalid_count(self) -> int:
        base = self._p0
        column = self.state.page_state_np[base : base + self.pages_per_block]
        return int(np.count_nonzero(column == _INVALID))

    def state_of(self, page: int) -> PageState:
        return PageState(self._ps[self._p0 + page])

    def wordline_of(self, page: int) -> int:
        return page // self.bits_per_cell

    def bit_of(self, page: int) -> int:
        return page % self.bits_per_cell

    def wordline_validity(self, wordline: int) -> tuple[bool, ...]:
        """Per-bit validity of a wordline (the Table I input)."""
        base = self._p0 + wordline * self.bits_per_cell
        states = self._ps
        return tuple(
            states[base + offset] == _VALID for offset in range(self.bits_per_cell)
        )

    def valid_pages(self) -> list[int]:
        """Page-in-block indices of all valid pages, ascending."""
        base = self._p0
        column = self.state.page_state_np[base : base + self.pages_per_block]
        return np.flatnonzero(column == _VALID).tolist()

    def wl_mode(self, wordline: int) -> int:
        return self._wl[self._w0 + wordline]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def program_next(self, now_us: float) -> int:
        """Program the next sequential page; returns its page index.

        Raises:
            RuntimeError: if the block is full or was IDA-reprogrammed
                (IDA blocks accept no new programs until erased).
        """
        state = self.state
        slot = self.slot
        page = state.next_page[slot]
        if page >= self.pages_per_block:
            raise RuntimeError(f"block {self.index} is full")
        if state.flags[slot] & FLAG_IS_IDA:
            raise RuntimeError(f"block {self.index} is IDA-coded; erase first")
        state.next_page[slot] = page + 1
        self._ps[self._p0 + page] = _VALID
        state.valid_count[slot] += 1
        stamp = state.programmed_at_us[slot]
        if stamp != stamp:  # NaN: first program since erase
            state.programmed_at_us[slot] = now_us
        return page

    def invalidate(self, page: int) -> None:
        """Mark a valid page invalid (its logical data moved elsewhere)."""
        offset = self._p0 + page
        if self._ps[offset] != _VALID:
            raise RuntimeError(
                f"block {self.index} page {page} is not valid "
                f"({PageState(self._ps[offset]).name})"
            )
        self._ps[offset] = _INVALID
        self.state.valid_count[self.slot] -= 1

    def set_wordline_ida(self, wordline: int, start_bit: int) -> None:
        """Record a voltage adjustment keeping bits ``start_bit..b-1``."""
        if not 1 <= start_bit < self.bits_per_cell:
            raise ValueError(f"invalid kept-suffix start bit {start_bit}")
        self._wl[self._w0 + wordline] = start_bit
        self.state.flags[self.slot] |= FLAG_IS_IDA

    def mark_wordline_torn(self, wordline: int) -> None:
        """An adjustment of this wordline was interrupted mid-reprogram."""
        self._wl[self._w0 + wordline] = TORN_WL

    def resolve_wordline(self, wordline: int, mode: int) -> None:
        """Land a torn wordline in a definite coding (fault recovery).

        Args:
            mode: :data:`CONVENTIONAL_WL` or a kept-suffix start bit —
                never :data:`TORN_WL`; recovery must *resolve*, not
                re-tear.
        """
        if mode != CONVENTIONAL_WL and not 1 <= mode < self.bits_per_cell:
            raise ValueError(f"cannot resolve wordline to mode {mode:#x}")
        self._wl[self._w0 + wordline] = mode

    def erase(self) -> None:
        """Erase the block: all pages free, wear counter bumped.

        The erase pulse wipes the on-flash SPOR metadata with the data:
        OOB records, the summary page, and any stale reprogram-journal
        rows of this block all reset to their fresh-block values.
        """
        state = self.state
        slot = self.slot
        if state.valid_count[slot]:
            raise RuntimeError(
                f"erasing block {self.index} with "
                f"{state.valid_count[slot]} valid pages"
            )
        self._ps[self._p0 : self._p0 + self.pages_per_block] = state._zero_pages
        self._wl[self._w0 : self._w0 + self.wordlines] = state._conv_wordlines
        state.next_page[slot] = 0
        state.erase_count[slot] += 1
        state.programmed_at_us[slot] = float("nan")
        state.flags[slot] &= ~FLAG_IS_IDA & 0xFF
        p_end = self._p0 + self.pages_per_block
        w_end = self._w0 + self.wordlines
        memoryview(state.oob_lpn).cast("B")[
            8 * self._p0 : 8 * p_end
        ] = state._fresh_oob_lpn
        memoryview(state.oob_seq).cast("B")[
            8 * self._p0 : 8 * p_end
        ] = state._fresh_oob_seq
        state.summary_seq[slot] = NO_SUMMARY
        state.summary_wl_mode[self._w0 : w_end] = state._conv_wordlines
        state.journal_bit[self._w0 : w_end] = bytes(self.wordlines)
        state.journal_kept[self._w0 : w_end] = bytes(self.wordlines)

    def seal_summary(self) -> None:
        """Write the block summary page (called when the block fills).

        Real controllers append a summary page as the last program of a
        block: here it durably stamps a close-time sequence number (one
        past the newest OOB record in the block — derived from the
        block's own pages so the scalar and batch write paths seal
        identically) and a copy of every wordline's coding mode.  Later
        ADJUST commits update the ``summary_wl_mode`` row in place
        (modelling the summary rewrite that accompanies an IDA
        reprogram).
        """
        state = self.state
        base = self._p0
        seqs = state.oob_seq_np[base : base + self.pages_per_block]
        state.summary_seq[self.slot] = int(seqs.max()) + 1
        w_end = self._w0 + self.wordlines
        state.summary_wl_mode[self._w0 : w_end] = state.wl_mode[
            self._w0 : w_end
        ]

    def journal_adjust(
        self, wordline: int, start_bit: int, kept_pages: tuple[int, ...]
    ) -> None:
        """Persist an ADJUST intent in the on-flash journal columns.

        Written *before* the adjust pulse is issued, like a real
        controller's write-ahead journal: a power cut between this record
        and :meth:`commit_wordline_summary` leaves enough on flash for
        the mount path to roll the wordline forward to the intended
        coding.  ``kept_pages`` are page-in-block indices riding the
        wordline; they pack into a bitmask of in-wordline offsets (at
        most ``bits_per_cell`` <= 8 pages per wordline).
        """
        state = self.state
        gw = self._w0 + wordline
        state.journal_bit[gw] = start_bit
        base = wordline * self.bits_per_cell
        mask = 0
        for page in kept_pages:
            mask |= 1 << (page - base)
        state.journal_kept[gw] = mask

    def commit_wordline_summary(self, wordline: int) -> None:
        """Durably record ``wordline``'s current mode and clear its journal.

        The on-flash commit record of a completed IDA ADJUST: after this,
        a power cut no longer rolls the wordline forward at mount.
        """
        state = self.state
        gw = self._w0 + wordline
        state.summary_wl_mode[gw] = state.wl_mode[gw]
        state.journal_bit[gw] = 0
        state.journal_kept[gw] = 0

    def senses_for(self, table: SenseTable, page: int) -> int:
        """Senses a read of ``page`` needs given the wordline's mode."""
        return table.senses(
            self._wl[self._w0 + page // self.bits_per_cell],
            page % self.bits_per_cell,
        )
