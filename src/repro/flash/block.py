"""Block-level bookkeeping used by the FTL and simulator.

A :class:`Block` tracks exactly the state the paper's FTL needs (Sec.
III-C, "Hardware/Software Overheads"): per-page validity (the existing
block status table), one flag telling conventional blocks from IDA blocks,
and one per-wordline mode recording which reprogrammed code the wordline
uses (CSB+MSB kept, or MSB only — generalised here to "kept-bit suffix
start").  Sense counts for every (wordline mode, page type) pair are
precomputed once per coding in :class:`SenseTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from ..core.coding import GrayCoding
from ..core.ida import IdaTransform

__all__ = ["PageState", "SenseTable", "Block", "CONVENTIONAL_WL", "TORN_WL"]


class PageState(IntEnum):
    """Lifecycle of one physical page."""

    FREE = 0
    VALID = 1
    INVALID = 2


#: Sentinel wordline mode: programmed with the conventional coding.
CONVENTIONAL_WL = 0xFF

#: Sentinel wordline mode: an IDA reprogram was interrupted mid-adjust and
#: the cells sit between the old and new coding.  A torn wordline is
#: *unreadable* (``SenseTable.senses`` raises) — fault recovery must
#: resolve it to one coding or the other before anything reads it, which
#: is exactly what :func:`repro.faults.check_coding_invariants` pins.
TORN_WL = 0xFE


class SenseTable:
    """Precomputed sense counts for a coding and all its IDA modes.

    For a ``b``-bit coding there are ``b - 1`` possible reprogrammed modes,
    identified by the *start bit* of the kept suffix (TLC: start 1 keeps
    CSB+MSB, start 2 keeps MSB only).  The table resolves
    ``(wordline mode, page type) -> senses`` in O(1), which is the hot path
    of the simulator.
    """

    def __init__(self, coding: GrayCoding) -> None:
        self.coding = coding
        self.conventional: tuple[int, ...] = coding.sense_counts()
        self.transforms: dict[int, IdaTransform] = {}
        self._ida: dict[int, dict[int, int]] = {}
        for start in range(1, coding.bits):
            transform = IdaTransform(coding, tuple(range(start, coding.bits)))
            self.transforms[start] = transform
            self._ida[start] = transform.sense_counts()

    def senses(self, wl_mode: int, bit: int) -> int:
        """Senses to read page type ``bit`` under wordline mode ``wl_mode``.

        Args:
            wl_mode: :data:`CONVENTIONAL_WL` or the kept-suffix start bit.
            bit: Page type (0 = LSB).

        Raises:
            KeyError: if the bit was evicted by the mode (reading an
                invalidated page of an IDA wordline is a logic error).
        """
        if wl_mode == CONVENTIONAL_WL:
            return self.conventional[bit]
        if wl_mode == TORN_WL:
            raise KeyError(
                "wordline is torn (interrupted IDA reprogram); "
                "recovery must resolve its coding before reads"
            )
        return self._ida[wl_mode][bit]

    def transform_for(self, start: int) -> IdaTransform:
        """The IDA transform of the mode keeping bits ``start..b-1``."""
        return self.transforms[start]


@dataclass
class Block:
    """Mutable state of one physical block.

    Attributes:
        index: Linear block number within the device.
        pages_per_block: Page count (Table II: 192).
        bits_per_cell: Cell density (TLC: 3).
        page_states: Per-page :class:`PageState` (stored compactly).
        wl_modes: Per-wordline coding mode (:data:`CONVENTIONAL_WL` or the
            kept-suffix start bit of the applied IDA transform).
        next_page: Sequential program pointer (NAND programs in order).
        valid_count: Number of VALID pages (GC victim-selection key).
        erase_count: Wear counter (wear-aware GC tie-break).
        programmed_at_us: Simulation time of the first program after the
            last erase — the age the refresh daemon compares against.
        is_ida: True once any wordline was voltage-adjusted; such blocks
            are force-reclaimed at their next refresh (Sec. III-C).
        locked: True while a refresh is mutating the block; GC must not
            pick it as a victim mid-refresh.
    """

    index: int
    pages_per_block: int
    bits_per_cell: int
    page_states: bytearray = field(init=False)
    wl_modes: bytearray = field(init=False)
    next_page: int = 0
    valid_count: int = 0
    erase_count: int = 0
    programmed_at_us: float | None = None
    is_ida: bool = False
    locked: bool = False

    def __post_init__(self) -> None:
        if self.pages_per_block % self.bits_per_cell:
            raise ValueError("pages_per_block must divide evenly into wordlines")
        self.page_states = bytearray(self.pages_per_block)
        self.wl_modes = bytearray([CONVENTIONAL_WL]) * self.wordlines

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def wordlines(self) -> int:
        return self.pages_per_block // self.bits_per_cell

    @property
    def is_full(self) -> bool:
        return self.next_page >= self.pages_per_block

    @property
    def free_pages(self) -> int:
        return self.pages_per_block - self.next_page

    @property
    def invalid_count(self) -> int:
        return sum(1 for s in self.page_states if s == PageState.INVALID)

    def state_of(self, page: int) -> PageState:
        return PageState(self.page_states[page])

    def wordline_of(self, page: int) -> int:
        return page // self.bits_per_cell

    def bit_of(self, page: int) -> int:
        return page % self.bits_per_cell

    def wordline_validity(self, wordline: int) -> tuple[bool, ...]:
        """Per-bit validity of a wordline (the Table I input)."""
        base = wordline * self.bits_per_cell
        return tuple(
            self.page_states[base + offset] == PageState.VALID
            for offset in range(self.bits_per_cell)
        )

    def valid_pages(self) -> list[int]:
        """Page-in-block indices of all valid pages, ascending."""
        return [
            page
            for page, state in enumerate(self.page_states)
            if state == PageState.VALID
        ]

    def wl_mode(self, wordline: int) -> int:
        return self.wl_modes[wordline]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def program_next(self, now_us: float) -> int:
        """Program the next sequential page; returns its page index.

        Raises:
            RuntimeError: if the block is full or was IDA-reprogrammed
                (IDA blocks accept no new programs until erased).
        """
        if self.is_full:
            raise RuntimeError(f"block {self.index} is full")
        if self.is_ida:
            raise RuntimeError(f"block {self.index} is IDA-coded; erase first")
        page = self.next_page
        self.next_page += 1
        self.page_states[page] = PageState.VALID
        self.valid_count += 1
        if self.programmed_at_us is None:
            self.programmed_at_us = now_us
        return page

    def invalidate(self, page: int) -> None:
        """Mark a valid page invalid (its logical data moved elsewhere)."""
        if self.page_states[page] != PageState.VALID:
            raise RuntimeError(
                f"block {self.index} page {page} is not valid "
                f"({PageState(self.page_states[page]).name})"
            )
        self.page_states[page] = PageState.INVALID
        self.valid_count -= 1

    def set_wordline_ida(self, wordline: int, start_bit: int) -> None:
        """Record a voltage adjustment keeping bits ``start_bit..b-1``."""
        if not 1 <= start_bit < self.bits_per_cell:
            raise ValueError(f"invalid kept-suffix start bit {start_bit}")
        self.wl_modes[wordline] = start_bit
        self.is_ida = True

    def mark_wordline_torn(self, wordline: int) -> None:
        """An adjustment of this wordline was interrupted mid-reprogram."""
        self.wl_modes[wordline] = TORN_WL

    def resolve_wordline(self, wordline: int, mode: int) -> None:
        """Land a torn wordline in a definite coding (fault recovery).

        Args:
            mode: :data:`CONVENTIONAL_WL` or a kept-suffix start bit —
                never :data:`TORN_WL`; recovery must *resolve*, not
                re-tear.
        """
        if mode != CONVENTIONAL_WL and not 1 <= mode < self.bits_per_cell:
            raise ValueError(f"cannot resolve wordline to mode {mode:#x}")
        self.wl_modes[wordline] = mode

    def erase(self) -> None:
        """Erase the block: all pages free, wear counter bumped."""
        if self.valid_count:
            raise RuntimeError(
                f"erasing block {self.index} with {self.valid_count} valid pages"
            )
        for page in range(self.pages_per_block):
            self.page_states[page] = PageState.FREE
        for wordline in range(self.wordlines):
            self.wl_modes[wordline] = CONVENTIONAL_WL
        self.next_page = 0
        self.erase_count += 1
        self.programmed_at_us = None
        self.is_ida = False

    def senses_for(self, table: SenseTable, page: int) -> int:
        """Senses a read of ``page`` needs given the wordline's mode."""
        return table.senses(self.wl_modes[self.wordline_of(page)], self.bit_of(page))
