"""Columnar (structure-of-arrays) device state.

All mutable metadata of the simulated device lives here, one flat column
per field instead of one object per block.  :class:`~repro.flash.block.Block`
and :class:`~repro.flash.plane.PlanePool` are thin *views* over this
state; nothing else owns page/block/wordline metadata.

Why columns
-----------

* **Scale** — the paper's full 512 GB topology is 350,208 blocks /
  67 M pages.  Per-object dicts cannot hold that (memory) or update it
  (speed); one ``uint8`` column over all pages is 67 MB and a block-level
  column is 2.8 MB.
* **Vector math** — the batch execution backend
  (:mod:`repro.sim.backends`) computes sense counts, wordline validity
  classification and device aggregates as array operations over these
  columns; wordline-granular policies (STRAW-style stress-aware reclaim,
  per-page coding schemes) get their counters for free.
* **Scalar speed** — the event-at-a-time reference backend still touches
  one page at a time.  Columns are therefore stored as
  ``bytearray`` / ``array`` buffers (C-speed scalar indexing, ~3-5x
  faster than numpy scalar access) with **zero-copy live numpy views**
  on top: mutating through either side is visible to the other
  instantly, so the scalar and vector paths can never disagree.

Column schema
-------------

=====================  =========  ============  =============================
column                 per        dtype         meaning
=====================  =========  ============  =============================
``page_state``         page       uint8         :class:`PageState` lifecycle
``wl_mode``            wordline   uint8         coding id: CONVENTIONAL_WL,
                                                TORN_WL or kept-suffix start
``wl_read_count``      wordline   int64         host-read senses landed here
                                                (stress input for STRAW-style
                                                reclaim)
``next_page``          block      int64         sequential program pointer
``valid_count``        block      int64         VALID pages (GC victim key)
``erase_count``        block      int64         P/E wear (RBER input)
``programmed_at_us``   block      float64       age of first program since
                                                erase (RBER retention input;
                                                NaN = never programmed)
``flags``              block      uint8         IS_IDA | LOCKED | RETIRED
``oob_lpn``            page       int64         on-flash OOB record: owning
                                                LPN (-1 = never programmed)
``oob_seq``            page       int64         on-flash OOB record: global
                                                write sequence number
``summary_seq``        block      int64         block summary page: one past
                                                the newest OOB sequence at
                                                block close (-1 = not
                                                sealed)
``summary_wl_mode``    wordline   uint8         block summary page: durable
                                                copy of the wordline coding
                                                mode, updated at ADJUST
                                                commit
``journal_bit``        wordline   uint8         on-flash ADJUST journal:
                                                intended kept-suffix start
                                                bit (0 = no intent pending)
``journal_kept``       wordline   uint8         on-flash ADJUST journal:
                                                bitmask of kept in-wordline
                                                page offsets
=====================  =========  ============  =============================

The last six columns are the sudden-power-off-recovery (SPOR) metadata a
real controller keeps on-flash: per-page OOB spare-area records written
with every program, a per-block summary page sealed when a block fills,
and a two-column reprogram journal persisted before each IDA ADJUST.
``repro.ftl.recovery`` mounts a device from these columns alone (see
``docs/faults.md``).  The monotonically increasing ``write_seq`` scalar
feeds ``oob_seq``; every program — host write or relocation — stamps a
fresh sequence number, so the newest stamp of an LPN always marks its
live physical copy.

View-ownership rules (enforced by convention, pinned by the parity
tests): only :class:`~repro.flash.block.Block` views and the vectorized
batch helpers in this module mutate columns; everything above the flash
layer reads through the view API or the numpy views, never by caching
column slices across mutations.
"""

from __future__ import annotations

from array import array

import numpy as np

__all__ = [
    "DeviceState",
    "DeviceStateSnapshot",
    "FLAG_IS_IDA",
    "FLAG_LOCKED",
    "FLAG_RETIRED",
    "NO_LPN",
    "NO_SUMMARY",
]

#: ``flags`` column bits.
FLAG_IS_IDA = 0x01
FLAG_LOCKED = 0x02
FLAG_RETIRED = 0x04

# Local copies of the wordline-mode sentinels (block.py re-exports them;
# duplicated here to avoid a circular import).
_CONVENTIONAL_WL = 0xFF

_PAGE_FREE = 0
_PAGE_VALID = 1
_PAGE_INVALID = 2

#: ``oob_lpn`` value of a never-programmed page.
NO_LPN = -1

#: ``summary_seq`` value of a block whose summary page was never sealed.
NO_SUMMARY = -1

#: Column name -> bytes-per-element, fixing the snapshot wire layout.
#: ``write_seq`` is a scalar riding the snapshot as an 8-byte
#: pseudo-column so old snapshots (missing it) are rejected cleanly.
_COLUMN_WIDTHS = {
    "page_state": 1,
    "wl_mode": 1,
    "wl_read_count": 8,
    "next_page": 8,
    "valid_count": 8,
    "erase_count": 8,
    "programmed_at_us": 8,
    "flags": 1,
    "oob_lpn": 8,
    "oob_seq": 8,
    "summary_seq": 8,
    "summary_wl_mode": 1,
    "journal_bit": 1,
    "journal_kept": 1,
    "write_seq": 8,
}


class DeviceStateSnapshot:
    """Frozen byte-level copy of every :class:`DeviceState` column.

    Geometry plus one immutable ``bytes`` blob per column — nothing else.
    Snapshots are picklable by construction (the warm-state cache and the
    shared-memory sweep transport both lean on that) and carry no live
    views, so holding one costs exactly :meth:`nbytes` and can never
    alias a running device.
    """

    __slots__ = ("num_blocks", "pages_per_block", "bits_per_cell", "columns")

    def __init__(
        self,
        num_blocks: int,
        pages_per_block: int,
        bits_per_cell: int,
        columns: dict[str, bytes],
    ) -> None:
        self.num_blocks = num_blocks
        self.pages_per_block = pages_per_block
        self.bits_per_cell = bits_per_cell
        self.columns = columns

    def nbytes(self) -> int:
        """Total payload size (the snapshot-cache accounting input)."""
        return sum(len(blob) for blob in self.columns.values())

    # __slots__ classes need explicit state plumbing for pickle.
    def __getstate__(self):
        return (
            self.num_blocks,
            self.pages_per_block,
            self.bits_per_cell,
            self.columns,
        )

    def __setstate__(self, state) -> None:
        (
            self.num_blocks,
            self.pages_per_block,
            self.bits_per_cell,
            self.columns,
        ) = state


class DeviceState:
    """All mutable metadata of one device, column per field.

    Args:
        num_blocks: Total (device-linear) block count.
        pages_per_block: Pages per block (Table II: 192).
        bits_per_cell: Cell density (TLC: 3).
    """

    __slots__ = (
        "num_blocks",
        "pages_per_block",
        "bits_per_cell",
        "wordlines_per_block",
        "num_pages",
        "num_wordlines",
        # scalar-fast buffers
        "page_state",
        "wl_mode",
        "wl_read_count",
        "next_page",
        "valid_count",
        "erase_count",
        "programmed_at_us",
        "flags",
        "oob_lpn",
        "oob_seq",
        "summary_seq",
        "summary_wl_mode",
        "journal_bit",
        "journal_kept",
        # global write sequence counter feeding ``oob_seq``
        "write_seq",
        # zero-copy numpy views over the buffers above
        "page_state_np",
        "wl_mode_np",
        "wl_read_count_np",
        "next_page_np",
        "valid_count_np",
        "erase_count_np",
        "programmed_at_us_np",
        "flags_np",
        "oob_lpn_np",
        "oob_seq_np",
        "summary_seq_np",
        "summary_wl_mode_np",
        "journal_bit_np",
        "journal_kept_np",
        # cached erase fill patterns
        "_zero_pages",
        "_conv_wordlines",
        "_fresh_oob_lpn",
        "_fresh_oob_seq",
    )

    def __init__(
        self, num_blocks: int, pages_per_block: int, bits_per_cell: int
    ) -> None:
        if num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if pages_per_block % bits_per_cell:
            raise ValueError("pages_per_block must divide evenly into wordlines")
        self.num_blocks = num_blocks
        self.pages_per_block = pages_per_block
        self.bits_per_cell = bits_per_cell
        self.wordlines_per_block = pages_per_block // bits_per_cell
        self.num_pages = num_blocks * pages_per_block
        self.num_wordlines = num_blocks * self.wordlines_per_block

        self.page_state = bytearray(self.num_pages)
        self.wl_mode = bytearray([_CONVENTIONAL_WL]) * self.num_wordlines
        self.wl_read_count = array("q", bytes(8 * self.num_wordlines))
        self.next_page = array("q", bytes(8 * num_blocks))
        self.valid_count = array("q", bytes(8 * num_blocks))
        self.erase_count = array("q", bytes(8 * num_blocks))
        self.programmed_at_us = array("d", bytes(8 * num_blocks))
        self.flags = bytearray(num_blocks)
        self.oob_lpn = array("q", bytes(8 * self.num_pages))
        self.oob_seq = array("q", bytes(8 * self.num_pages))
        self.summary_seq = array("q", bytes(8 * num_blocks))
        self.summary_wl_mode = (
            bytearray([_CONVENTIONAL_WL]) * self.num_wordlines
        )
        self.journal_bit = bytearray(self.num_wordlines)
        self.journal_kept = bytearray(self.num_wordlines)
        self.write_seq = 0

        nan = float("nan")
        for i in range(num_blocks):
            self.programmed_at_us[i] = nan
            self.summary_seq[i] = NO_SUMMARY

        # Live views: same memory, so scalar and vector mutations stay
        # coherent by construction (the buffers are never resized).
        self.page_state_np = np.frombuffer(self.page_state, dtype=np.uint8)
        self.wl_mode_np = np.frombuffer(self.wl_mode, dtype=np.uint8)
        self.wl_read_count_np = np.frombuffer(self.wl_read_count, dtype=np.int64)
        self.next_page_np = np.frombuffer(self.next_page, dtype=np.int64)
        self.valid_count_np = np.frombuffer(self.valid_count, dtype=np.int64)
        self.erase_count_np = np.frombuffer(self.erase_count, dtype=np.int64)
        self.programmed_at_us_np = np.frombuffer(
            self.programmed_at_us, dtype=np.float64
        )
        self.flags_np = np.frombuffer(self.flags, dtype=np.uint8)
        self.oob_lpn_np = np.frombuffer(self.oob_lpn, dtype=np.int64)
        self.oob_seq_np = np.frombuffer(self.oob_seq, dtype=np.int64)
        self.summary_seq_np = np.frombuffer(self.summary_seq, dtype=np.int64)
        self.summary_wl_mode_np = np.frombuffer(
            self.summary_wl_mode, dtype=np.uint8
        )
        self.journal_bit_np = np.frombuffer(self.journal_bit, dtype=np.uint8)
        self.journal_kept_np = np.frombuffer(self.journal_kept, dtype=np.uint8)
        # The per-page OOB columns are too large for a scalar fill loop at
        # full-device scale; the numpy views make the -1 fill a memset.
        self.oob_lpn_np[:] = NO_LPN

        self._zero_pages = bytes(pages_per_block)
        self._conv_wordlines = bytes([_CONVENTIONAL_WL]) * self.wordlines_per_block
        self._fresh_oob_lpn = (NO_LPN).to_bytes(
            8, "little", signed=True
        ) * pages_per_block
        self._fresh_oob_seq = bytes(8 * pages_per_block)

    # ------------------------------------------------------------------
    # Snapshot / restore (the warm-state cache's device half)
    # ------------------------------------------------------------------
    def _column_length(self, name: str) -> int:
        """Expected byte length of one snapshot column for this geometry."""
        per = {
            "page_state": self.num_pages,
            "wl_mode": self.num_wordlines,
            "wl_read_count": self.num_wordlines,
            "next_page": self.num_blocks,
            "valid_count": self.num_blocks,
            "erase_count": self.num_blocks,
            "programmed_at_us": self.num_blocks,
            "flags": self.num_blocks,
            "oob_lpn": self.num_pages,
            "oob_seq": self.num_pages,
            "summary_seq": self.num_blocks,
            "summary_wl_mode": self.num_wordlines,
            "journal_bit": self.num_wordlines,
            "journal_kept": self.num_wordlines,
            "write_seq": 1,
        }[name]
        return per * _COLUMN_WIDTHS[name]

    def snapshot(self) -> DeviceStateSnapshot:
        """Copy every column into an immutable :class:`DeviceStateSnapshot`.

        One flat memcpy per column — no per-block object traversal — so a
        snapshot costs ~:meth:`memory_bytes` of copying regardless of how
        much metadata churn produced the state.
        """
        columns = {
            "page_state": bytes(self.page_state),
            "wl_mode": bytes(self.wl_mode),
            "wl_read_count": self.wl_read_count.tobytes(),
            "next_page": self.next_page.tobytes(),
            "valid_count": self.valid_count.tobytes(),
            "erase_count": self.erase_count.tobytes(),
            "programmed_at_us": self.programmed_at_us.tobytes(),
            "flags": bytes(self.flags),
            "oob_lpn": self.oob_lpn.tobytes(),
            "oob_seq": self.oob_seq.tobytes(),
            "summary_seq": self.summary_seq.tobytes(),
            "summary_wl_mode": bytes(self.summary_wl_mode),
            "journal_bit": bytes(self.journal_bit),
            "journal_kept": bytes(self.journal_kept),
            "write_seq": self.write_seq.to_bytes(8, "little", signed=True),
        }
        return DeviceStateSnapshot(
            self.num_blocks, self.pages_per_block, self.bits_per_cell, columns
        )

    def restore(self, snapshot: DeviceStateSnapshot) -> None:
        """Overwrite every column in place from ``snapshot``.

        The existing buffers are reused (their length never changes), so
        :class:`~repro.flash.block.Block` views cached against them stay
        coherent; the ``*_np`` numpy views are then rebound so vector
        consumers holding ``state.page_state_np`` etc. via the attribute
        also see the restored bytes.  Everything is validated *before*
        the first byte is written — a malformed snapshot leaves the state
        untouched (the cold-preload fallback depends on that).

        Raises:
            ValueError: on geometry mismatch, a missing column, or a
                column whose byte length disagrees with this geometry.
        """
        mine = (self.num_blocks, self.pages_per_block, self.bits_per_cell)
        theirs = (
            snapshot.num_blocks,
            snapshot.pages_per_block,
            snapshot.bits_per_cell,
        )
        if mine != theirs:
            raise ValueError(
                f"snapshot geometry {theirs} does not match device {mine}"
            )
        for name in _COLUMN_WIDTHS:
            blob = snapshot.columns.get(name)
            if blob is None:
                raise ValueError(f"snapshot is missing column {name!r}")
            expected = self._column_length(name)
            if len(blob) != expected:
                raise ValueError(
                    f"snapshot column {name!r} holds {len(blob)} bytes, "
                    f"expected {expected} (truncated or stale layout)"
                )
        columns = snapshot.columns
        self.page_state[:] = columns["page_state"]
        self.wl_mode[:] = columns["wl_mode"]
        memoryview(self.wl_read_count).cast("B")[:] = columns["wl_read_count"]
        memoryview(self.next_page).cast("B")[:] = columns["next_page"]
        memoryview(self.valid_count).cast("B")[:] = columns["valid_count"]
        memoryview(self.erase_count).cast("B")[:] = columns["erase_count"]
        memoryview(self.programmed_at_us).cast("B")[:] = columns[
            "programmed_at_us"
        ]
        self.flags[:] = columns["flags"]
        memoryview(self.oob_lpn).cast("B")[:] = columns["oob_lpn"]
        memoryview(self.oob_seq).cast("B")[:] = columns["oob_seq"]
        memoryview(self.summary_seq).cast("B")[:] = columns["summary_seq"]
        self.summary_wl_mode[:] = columns["summary_wl_mode"]
        self.journal_bit[:] = columns["journal_bit"]
        self.journal_kept[:] = columns["journal_kept"]
        self.write_seq = int.from_bytes(
            columns["write_seq"], "little", signed=True
        )
        # Rebind the zero-copy views.  They still target the same buffers,
        # so this is belt-and-braces for the view-ownership contract: any
        # consumer reading through ``state.<col>_np`` is guaranteed a view
        # of the restored memory.
        self.page_state_np = np.frombuffer(self.page_state, dtype=np.uint8)
        self.wl_mode_np = np.frombuffer(self.wl_mode, dtype=np.uint8)
        self.wl_read_count_np = np.frombuffer(self.wl_read_count, dtype=np.int64)
        self.next_page_np = np.frombuffer(self.next_page, dtype=np.int64)
        self.valid_count_np = np.frombuffer(self.valid_count, dtype=np.int64)
        self.erase_count_np = np.frombuffer(self.erase_count, dtype=np.int64)
        self.programmed_at_us_np = np.frombuffer(
            self.programmed_at_us, dtype=np.float64
        )
        self.flags_np = np.frombuffer(self.flags, dtype=np.uint8)
        self.oob_lpn_np = np.frombuffer(self.oob_lpn, dtype=np.int64)
        self.oob_seq_np = np.frombuffer(self.oob_seq, dtype=np.int64)
        self.summary_seq_np = np.frombuffer(self.summary_seq, dtype=np.int64)
        self.summary_wl_mode_np = np.frombuffer(
            self.summary_wl_mode, dtype=np.uint8
        )
        self.journal_bit_np = np.frombuffer(self.journal_bit, dtype=np.uint8)
        self.journal_kept_np = np.frombuffer(self.journal_kept, dtype=np.uint8)

    # ------------------------------------------------------------------
    # On-flash OOB records (the SPOR metadata write path)
    # ------------------------------------------------------------------
    def stamp_oob(self, ppn: int, lpn: int) -> int:
        """Record ``lpn`` and the next write sequence number at ``ppn``.

        Models the OOB spare-area bytes a real controller writes with
        every page program.  Returns the sequence number used.
        """
        seq = self.write_seq
        self.oob_lpn[ppn] = lpn
        self.oob_seq[ppn] = seq
        self.write_seq = seq + 1
        return seq

    def relocate_oob(self, old_ppn: int, new_ppn: int) -> int:
        """Stamp a relocation's destination (GC / refresh / fault move).

        The LPN travels with the data but the destination gets a *fresh*
        sequence number, exactly as a real controller stamps GC writes:
        the stale source copy keeps its old (smaller) stamp, so the
        mount's last-write-wins scan always prefers the destination.
        Returns the sequence number used.
        """
        return self.stamp_oob(new_ppn, self.oob_lpn[old_ppn])

    # ------------------------------------------------------------------
    # Derived geometry helpers
    # ------------------------------------------------------------------
    def page_base(self, slot: int) -> int:
        """First global page index of block ``slot``."""
        return slot * self.pages_per_block

    def wordline_base(self, slot: int) -> int:
        """First global wordline index of block ``slot``."""
        return slot * self.wordlines_per_block

    # ------------------------------------------------------------------
    # Vectorized queries (the batch backend's raw material)
    # ------------------------------------------------------------------
    def senses_for_ppns(
        self, ppns: np.ndarray, sense_lut: np.ndarray
    ) -> np.ndarray:
        """Sense counts for an array of physical page numbers.

        Args:
            ppns: int array of global page numbers (``block * ppb + page``).
            sense_lut: The ``(256, bits_per_cell)`` lookup from
                :meth:`repro.flash.block.SenseTable.lut` — rows indexed
                by wordline mode, 0 marking unreadable (evicted / torn)
                combinations.

        Raises:
            KeyError: if any addressed page is unreadable under its
                wordline's current mode (same contract as the scalar
                :meth:`~repro.flash.block.SenseTable.senses`).
        """
        ppns = np.asarray(ppns, dtype=np.int64)
        bits = ppns % self.bits_per_cell
        pages = ppns % self.pages_per_block
        wl = ppns // self.bits_per_cell  # global wordline index
        # ``pages // bits`` within block + block * wpb == ppn // bits.
        del pages
        modes = self.wl_mode_np[wl]
        senses = sense_lut[modes, bits]
        if not senses.all():
            bad = int(ppns[np.flatnonzero(senses == 0)[0]])
            raise KeyError(
                f"page {bad} is unreadable under its wordline mode "
                "(evicted bit or torn wordline)"
            )
        return senses.astype(np.int64, copy=False)

    def wordline_validity_rows(self, ppns: np.ndarray) -> np.ndarray:
        """Per-bit validity of each addressed page's wordline.

        Returns a ``(len(ppns), bits_per_cell)`` bool matrix — row ``i``
        is the Table I input of ``ppns[i]``'s wordline.
        """
        ppns = np.asarray(ppns, dtype=np.int64)
        first_page = (ppns // self.bits_per_cell) * self.bits_per_cell
        offsets = np.arange(self.bits_per_cell, dtype=np.int64)
        gathered = self.page_state_np[first_page[:, None] + offsets[None, :]]
        return gathered == _PAGE_VALID

    def note_host_reads(self, ppns: np.ndarray) -> None:
        """Bump the stress counter of each addressed wordline."""
        wl = np.asarray(ppns, dtype=np.int64) // self.bits_per_cell
        np.add.at(self.wl_read_count_np, wl, 1)

    # ------------------------------------------------------------------
    # Vectorized aggregates (telemetry / census fast paths)
    # ------------------------------------------------------------------
    def in_use_blocks(self) -> int:
        """Blocks holding any programmed pages."""
        return int(np.count_nonzero(self.next_page_np))

    def ida_blocks(self) -> int:
        """Blocks currently carrying IDA-reprogrammed wordlines."""
        return int(np.count_nonzero(self.flags_np & FLAG_IS_IDA))

    def retired_blocks(self) -> int:
        """Blocks grown bad and permanently out of rotation."""
        return int(np.count_nonzero(self.flags_np & FLAG_RETIRED))

    def total_valid_pages(self) -> int:
        return int(self.valid_count_np.sum())

    def total_erases(self) -> int:
        return int(self.erase_count_np.sum())

    def memory_bytes(self) -> int:
        """Resident size of all columns (the bounded-memory guarantee).

        Includes the 8 bytes of the ``write_seq`` scalar so the identity
        ``snapshot().nbytes() == memory_bytes()`` holds.
        """
        return (
            8  # write_seq
            + len(self.page_state)
            + len(self.wl_mode)
            + 8 * len(self.wl_read_count)
            + 8 * len(self.next_page)
            + 8 * len(self.valid_count)
            + 8 * len(self.erase_count)
            + 8 * len(self.programmed_at_us)
            + len(self.flags)
            + 8 * len(self.oob_lpn)
            + 8 * len(self.oob_seq)
            + 8 * len(self.summary_seq)
            + len(self.summary_wl_mode)
            + len(self.journal_bit)
            + len(self.journal_kept)
        )
