"""Flash device substrate: geometry, timing, cells, blocks, error models."""

from .block import CONVENTIONAL_WL, TORN_WL, Block, PageState, SenseTable
from .cell import ERASED_STATE, WordlineCells
from .chip import CellChip
from .errors import AdjustDisturbModel, RberModel, ReadRetryModel
from .geometry import Geometry, PhysicalPageAddress
from .ispp import IsppModel
from .plane import PlanePool
from .timing import TimingSpec
from .voltage import StateDistribution, VoltageModel

__all__ = [
    "CONVENTIONAL_WL",
    "TORN_WL",
    "Block",
    "PageState",
    "SenseTable",
    "ERASED_STATE",
    "WordlineCells",
    "CellChip",
    "AdjustDisturbModel",
    "RberModel",
    "ReadRetryModel",
    "Geometry",
    "PhysicalPageAddress",
    "IsppModel",
    "PlanePool",
    "TimingSpec",
    "StateDistribution",
    "VoltageModel",
]
