"""Continuous threshold-voltage distribution model.

The coding layer treats voltage states as symbols; this module gives them
physical extent.  Each state is a Gaussian threshold-voltage distribution
(ISPP programming noise); retention loss shifts and widens programmed
states downward over time (charge leakage), and program disturb injects
charge into neighbours.  Reading with voltage ``V`` misclassifies the
cells whose threshold crossed to the wrong side — integrating the tails
yields the raw bit error rate, which is where the numbers consumed by
:class:`repro.flash.errors.RberModel` and the LDPC retry model come from
(Cai et al.'s characterisation methodology [23], [34]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["StateDistribution", "VoltageModel"]


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


@dataclass(frozen=True)
class StateDistribution:
    """One voltage state's threshold distribution, N(mean, sigma^2)."""

    mean_v: float
    sigma_v: float

    def __post_init__(self) -> None:
        if self.sigma_v <= 0:
            raise ValueError("sigma_v must be positive")

    def prob_above(self, read_voltage: float) -> float:
        """Probability a cell in this state reads as above ``read_voltage``."""
        return 1.0 - _phi((read_voltage - self.mean_v) / self.sigma_v)

    def prob_below(self, read_voltage: float) -> float:
        return _phi((read_voltage - self.mean_v) / self.sigma_v)

    def shifted(self, delta_v: float, widen: float = 0.0) -> "StateDistribution":
        """The distribution after a mean shift and optional widening."""
        return StateDistribution(self.mean_v + delta_v, self.sigma_v + widen)


@dataclass(frozen=True)
class VoltageModel:
    """Threshold-voltage window of a multi-level cell.

    States are evenly spaced across ``[erased_mean_v, top_mean_v]``; the
    erased state is wider (erase spreads thresholds), programmed states
    share a tighter ISPP sigma.

    The erased state sits deep below the programmed window (erase pushes
    thresholds strongly negative); programmed states are evenly spaced
    across ``[first_programmed_v, top_mean_v]``.

    Attributes:
        num_states: 2**bits voltage states.
        erased_mean_v: Mean of the (wide) erased distribution.
        first_programmed_v / top_mean_v: Programmed-window endpoints.
        program_sigma_v: ISPP placement noise of programmed states.
        erased_sigma_v: Spread of the erased state.
        retention_shift_v_per_day: Downward drift of programmed means.
        retention_widen_v_per_day: Sigma growth with retention.
    """

    num_states: int = 8
    erased_mean_v: float = -3.5
    first_programmed_v: float = 0.5
    top_mean_v: float = 4.0
    program_sigma_v: float = 0.06
    erased_sigma_v: float = 0.35
    retention_shift_v_per_day: float = 0.0015
    retention_widen_v_per_day: float = 0.0004

    def __post_init__(self) -> None:
        if self.num_states < 2:
            raise ValueError("need at least two states")
        if not self.erased_mean_v < self.first_programmed_v <= self.top_mean_v:
            raise ValueError("voltage window is empty or inverted")

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def state_mean_v(self, state: int) -> float:
        if not 0 <= state < self.num_states:
            raise IndexError(f"state {state} out of range")
        if state == 0:
            return self.erased_mean_v
        if self.num_states == 2:
            return self.top_mean_v
        step = (self.top_mean_v - self.first_programmed_v) / (self.num_states - 2)
        return self.first_programmed_v + (state - 1) * step

    def distribution(
        self, state: int, retention_days: float = 0.0
    ) -> StateDistribution:
        """Distribution of ``state`` after ``retention_days`` of ageing.

        The erased state neither drifts nor widens (no stored charge to
        leak); programmed states drift down proportionally to how much
        charge they hold (higher states leak faster).
        """
        if retention_days < 0:
            raise ValueError("retention_days must be non-negative")
        if state == 0:
            return StateDistribution(self.state_mean_v(0), self.erased_sigma_v)
        charge_factor = state / (self.num_states - 1)
        shift = -self.retention_shift_v_per_day * retention_days * charge_factor
        widen = self.retention_widen_v_per_day * retention_days
        return StateDistribution(
            self.state_mean_v(state), self.program_sigma_v
        ).shifted(shift, widen)

    def read_voltage(self, boundary: int) -> float:
        """Read voltage ``V_boundary`` placed midway between neighbours.

        ``boundary`` follows the paper's 1-based V1..V7 convention:
        ``V_i`` separates state ``i-1`` from state ``i``.
        """
        if not 1 <= boundary < self.num_states:
            raise IndexError(f"boundary {boundary} out of range")
        return 0.5 * (self.state_mean_v(boundary - 1) + self.state_mean_v(boundary))

    # ------------------------------------------------------------------
    # Error rates
    # ------------------------------------------------------------------
    def misread_probability(
        self, state: int, boundary: int, retention_days: float = 0.0
    ) -> float:
        """Probability the sense at ``V_boundary`` misclassifies ``state``."""
        dist = self.distribution(state, retention_days)
        voltage = self.read_voltage(boundary)
        if state < boundary:
            return dist.prob_above(voltage)  # should have been below
        return dist.prob_below(voltage)

    def raw_bit_error_rate(self, retention_days: float = 0.0) -> float:
        """Average per-sense misread probability over all states/boundaries.

        Each state is bounded by at most two read voltages; averaging the
        tail masses over a uniform state distribution gives the RBER a
        single sense contributes — the physical counterpart of
        :class:`repro.flash.errors.RberModel`'s fitted curve.
        """
        total = 0.0
        count = 0
        for state in range(self.num_states):
            for boundary in (state, state + 1):
                if 1 <= boundary < self.num_states:
                    total += self.misread_probability(
                        state, boundary, retention_days
                    )
                    count += 1
        return total / count if count else 0.0

    def merged(self, kept_states: tuple[int, ...]) -> "VoltageModel":
        """A model restricted to the IDA-merged state set.

        The suffix merges the IDA transform produces keep *adjacent* top
        states (Fig. 5's S5..S8), so the inter-state margins are exactly
        the original ones: the reprogrammed cell is no less readable than
        before — the basis of the paper's claim that IDA does not trade
        reliability (the risk it mitigates is the *disturb during
        adjustment*, handled by the refresh's ECC path instead).
        """
        if len(kept_states) < 2:
            raise ValueError("need at least two kept states")
        ordered = tuple(sorted(kept_states))
        low = self.state_mean_v(ordered[0])
        high = self.state_mean_v(ordered[-1])
        return VoltageModel(
            num_states=len(ordered),
            erased_mean_v=low,
            first_programmed_v=self.state_mean_v(ordered[1]),
            top_mean_v=high,
            program_sigma_v=self.program_sigma_v,
            erased_sigma_v=self.program_sigma_v,
            retention_shift_v_per_day=self.retention_shift_v_per_day,
            retention_widen_v_per_day=self.retention_widen_v_per_day,
        )
