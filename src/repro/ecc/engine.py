"""ECC engine front-end used by the simulator and the refresh pipeline.

Combines the decode *timing* (Table II: an ultra-throughput hardware LDPC
decodes an 8 KiB page in at most 20 us) with the decode *outcome* models:
the SEC-DED codec for bit-exact paths and the statistical LDPC retry model
for lifetime experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .hamming import DecodeResult, DecodeStatus, HammingCodec
from .ldpc import LdpcModel

__all__ = ["EccEngine"]


@dataclass
class EccEngine:
    """One channel's ECC engine.

    Attributes:
        decode_us: Time to decode one page (Table II: 20 us).
        ldpc: Statistical retry model used by the lifetime experiments.
        codec_data_bits: Data-word width of the bit-exact codec used on
            cell-exact paths (tests / integrity demos).
    """

    decode_us: float = 20.0
    ldpc: LdpcModel = field(default_factory=LdpcModel)
    codec_data_bits: int = 64
    _codec: HammingCodec = field(init=False)
    #: Lifetime decode accounting on the bit-exact path (cheap integer
    #: adds; always on).
    decodes: int = field(init=False, default=0)
    corrected: int = field(init=False, default=0)
    uncorrectable: int = field(init=False, default=0)
    _telemetry: dict | None = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.decode_us <= 0:
            raise ValueError("decode_us must be positive")
        self._codec = HammingCodec(self.codec_data_bits)

    def bind_telemetry(self, registry) -> None:
        """Publish decode outcomes into a metrics registry."""
        self._telemetry = {
            "decodes": registry.counter(
                "ecc_decodes_total", "codeword decode attempts"
            ).unlabeled,
            "corrected": registry.counter(
                "ecc_corrected_total", "decodes that corrected a bit error"
            ).unlabeled,
            "uncorrectable": registry.counter(
                "ecc_uncorrectable_total", "decodes that detected a double error"
            ).unlabeled,
        }

    @property
    def codec(self) -> HammingCodec:
        """The bit-exact SEC-DED codec."""
        return self._codec

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode one data word for storage."""
        return self._codec.encode(data)

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode one stored word, correcting single-bit errors."""
        result = self._codec.decode(codeword)
        self.decodes += 1
        if result.status is DecodeStatus.CORRECTED:
            self.corrected += 1
        elif result.status is DecodeStatus.UNCORRECTABLE:
            self.uncorrectable += 1
        if self._telemetry is not None:
            self._telemetry["decodes"].inc()
            if result.status is DecodeStatus.CORRECTED:
                self._telemetry["corrected"].inc()
            elif result.status is DecodeStatus.UNCORRECTABLE:
                self._telemetry["uncorrectable"].inc()
        return result

    def sensing_levels(self, rng: np.random.Generator, rber: float) -> int:
        """Extra read-retry sensing levels a page read needs at ``rber``."""
        return self.ldpc.sample_sensing_levels(rng, rber)
