"""Binary BCH codec: the multi-bit-correcting ECC real SSDs use.

Flash ECC engines correct tens of bits per page; SEC-DED (the other codec
in this package) captures the *contract* at unit-test strength, while
this BCH implementation provides genuine ``t``-error correction:

* generator polynomial from the LCM of minimal polynomials of
  ``alpha^1 .. alpha^2t`` over GF(2^m);
* systematic encoding by polynomial division;
* decoding via syndromes -> Berlekamp-Massey -> Chien search.

A ``BCH(n=2^m-1, k, t)`` code; e.g. ``BchCode(m=6, t=4)`` is a (63, 39)
code correcting any 4 bit errors per word.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gf import GF2m

__all__ = ["BchCode", "BchDecodeResult"]


@dataclass(frozen=True)
class BchDecodeResult:
    """Outcome of a BCH decode.

    Attributes:
        data: Recovered data bits (unreliable when ``ok`` is False).
        corrected: Number of bit errors corrected.
        ok: False when the decoder detected an uncorrectable pattern.
    """

    data: np.ndarray
    corrected: int
    ok: bool


def _gf2_poly_divmod(dividend: int, divisor: int) -> tuple[int, int]:
    """Bit-packed polynomial division over GF(2)."""
    deg_divisor = divisor.bit_length() - 1
    quotient = 0
    while dividend.bit_length() - 1 >= deg_divisor and dividend:
        shift = dividend.bit_length() - 1 - deg_divisor
        quotient |= 1 << shift
        dividend ^= divisor << shift
    return quotient, dividend


class BchCode:
    """A binary BCH(2^m - 1, k, t) code."""

    def __init__(self, m: int, t: int, primitive_poly: int | None = None) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.field = GF2m(m, primitive_poly)
        self.m = m
        self.t = t
        self.n = (1 << m) - 1
        self.generator = self._build_generator()
        self.parity_bits = self.generator.bit_length() - 1
        self.k = self.n - self.parity_bits
        if self.k <= 0:
            raise ValueError(
                f"t={t} too strong for m={m}: no data bits remain"
            )

    def _build_generator(self) -> int:
        """LCM of the minimal polynomials of alpha^1 .. alpha^{2t}."""
        field = self.field
        covered: set[int] = set()
        generator = 1  # bit-packed over GF(2)
        for i in range(1, 2 * self.t + 1):
            if i % (field.order - 1) in covered:
                continue
            # Conjugacy class of alpha^i: exponents i * 2^j mod (2^m - 1).
            exponents = []
            e = i % (field.order - 1)
            while e not in exponents:
                exponents.append(e)
                covered.add(e)
                e = (e * 2) % (field.order - 1)
            # Minimal polynomial = prod (x - alpha^e) over the class.
            min_poly = [1]
            for e in exponents:
                min_poly = field.poly_mul(min_poly, [field.pow_alpha(e), 1])
            if any(c not in (0, 1) for c in min_poly):
                raise AssertionError("minimal polynomial not binary")
            packed = 0
            for degree, coeff in enumerate(min_poly):
                if coeff:
                    packed |= 1 << degree
            generator = self._gf2_mul(generator, packed)
        return generator

    @staticmethod
    def _gf2_mul(a: int, b: int) -> int:
        out = 0
        shift = 0
        while b:
            if b & 1:
                out ^= a << shift
            b >>= 1
            shift += 1
        return out

    # ------------------------------------------------------------------
    # Encode
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematically encode ``k`` data bits into an ``n``-bit word.

        Layout: ``codeword[:k]`` is the data, ``codeword[k:]`` the parity.
        """
        bits = np.asarray(data, dtype=np.int8)
        if bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} data bits, got {bits.shape}")
        if ((bits != 0) & (bits != 1)).any():
            raise ValueError("data must be binary")
        # Message polynomial m(x) * x^(n-k); bit i of `packed` = coeff x^i.
        packed = 0
        for i, bit in enumerate(bits):
            if bit:
                packed |= 1 << (self.parity_bits + i)
        _, remainder = _gf2_poly_divmod(packed, self.generator)
        codeword = np.zeros(self.n, dtype=np.int8)
        codeword[: self.k] = bits
        for i in range(self.parity_bits):
            codeword[self.k + i] = (remainder >> i) & 1
        return codeword

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _bit_position_to_power(self, position: int) -> int:
        """Exponent of x the codeword bit at ``position`` represents."""
        if position < self.k:
            return self.parity_bits + position
        return position - self.k

    def _syndromes(self, received: np.ndarray) -> list[int]:
        field = self.field
        syndromes = []
        for i in range(1, 2 * self.t + 1):
            value = 0
            for position in range(self.n):
                if received[position]:
                    power = self._bit_position_to_power(position)
                    value ^= field.pow_alpha(power * i)
            syndromes.append(value)
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial sigma(x), low order first."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        discrepancy_prev = 1
        length = 0
        gap = 1
        for step in range(2 * self.t):
            discrepancy = syndromes[step]
            for j in range(1, length + 1):
                if j < len(sigma) and sigma[j]:
                    discrepancy ^= field.mul(sigma[j], syndromes[step - j])
            if discrepancy == 0:
                gap += 1
                continue
            scale = field.div(discrepancy, discrepancy_prev)
            correction = [0] * gap + [field.mul(scale, c) for c in prev_sigma]
            new_sigma = list(sigma) + [0] * max(0, len(correction) - len(sigma))
            for idx, coeff in enumerate(correction):
                new_sigma[idx] ^= coeff
            if 2 * length <= step:
                prev_sigma = sigma
                discrepancy_prev = discrepancy
                length = step + 1 - length
                gap = 1
            else:
                gap += 1
            sigma = new_sigma
        while len(sigma) > 1 and sigma[-1] == 0:
            sigma.pop()
        return sigma

    def _chien_search(self, sigma: list[int]) -> list[int] | None:
        """Codeword bit positions in error, or None if the search fails."""
        field = self.field
        degree = len(sigma) - 1
        positions = []
        for power in range(self.n):
            # A root at x = alpha^{-power} marks an error at that power.
            x = field.pow_alpha(-power)
            if field.poly_eval(sigma, x) == 0:
                positions.append(power)
        if len(positions) != degree:
            return None
        # Map x-power back to codeword bit index.
        bit_positions = []
        for power in positions:
            if power >= self.parity_bits:
                bit_positions.append(power - self.parity_bits)
            else:
                bit_positions.append(self.k + power)
        return bit_positions

    def decode(self, received: np.ndarray) -> BchDecodeResult:
        """Correct up to ``t`` bit errors in a received word."""
        word = np.array(received, dtype=np.int8, copy=True)
        if word.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {word.shape}")
        syndromes = self._syndromes(word)
        if not any(syndromes):
            return BchDecodeResult(word[: self.k].copy(), 0, True)
        sigma = self._berlekamp_massey(syndromes)
        if len(sigma) - 1 > self.t:
            return BchDecodeResult(word[: self.k].copy(), 0, False)
        errors = self._chien_search(sigma)
        if errors is None:
            return BchDecodeResult(word[: self.k].copy(), 0, False)
        for position in errors:
            word[position] ^= 1
        # Re-check: residual syndromes mean miscorrection was detected.
        if any(self._syndromes(word)):
            return BchDecodeResult(word[: self.k].copy(), 0, False)
        return BchDecodeResult(word[: self.k].copy(), len(errors), True)
