"""Extended Hamming (SEC-DED) codec over bit arrays.

The paper's refresh pipeline reads pages, decodes them through the ECC
engine, and writes corrected data onward (Fig. 7, steps 2 and 6).  This
module supplies a *real* executable codec — single-error-correcting,
double-error-detecting extended Hamming — so the data-integrity claims of
the refresh implementation can be exercised against genuinely corrupted
bits, not just flags.  (Production SSDs use BCH/LDPC; SEC-DED preserves
the same contract at a strength the test suite can reason about exactly.)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["DecodeStatus", "DecodeResult", "HammingCodec"]


class DecodeStatus(Enum):
    """Outcome of a decode attempt."""

    CLEAN = "clean"
    """No errors detected."""

    CORRECTED = "corrected"
    """A single bit error was found and corrected."""

    UNCORRECTABLE = "uncorrectable"
    """A double error was detected; the data cannot be trusted."""


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus the decode outcome.

    Attributes:
        data: The recovered data bits (unreliable when UNCORRECTABLE).
        status: What the decoder observed.
        corrected_position: Codeword index of the corrected bit, when
            status is CORRECTED.
    """

    data: np.ndarray
    status: DecodeStatus
    corrected_position: int | None = None

    @property
    def ok(self) -> bool:
        return self.status is not DecodeStatus.UNCORRECTABLE


class HammingCodec:
    """Extended Hamming codec for fixed-length data words.

    Layout: codeword positions are numbered from 1; positions that are
    powers of two hold parity bits; position 0 (stored as the final array
    element) holds the overall parity that upgrades SEC to SEC-DED.
    """

    def __init__(self, data_bits: int) -> None:
        if data_bits < 1:
            raise ValueError("data_bits must be >= 1")
        self.data_bits = data_bits
        self.parity_bits = self._parity_bits_for(data_bits)
        self.codeword_bits = data_bits + self.parity_bits + 1
        total = data_bits + self.parity_bits
        self._data_positions = [
            pos
            for pos in range(1, total + 1)
            if pos & (pos - 1)  # not a power of two
        ]
        self._parity_positions = [1 << r for r in range(self.parity_bits)]

    @staticmethod
    def _parity_bits_for(data_bits: int) -> int:
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``data_bits`` data bits into a SEC-DED codeword."""
        bits = np.asarray(data, dtype=np.int8)
        if bits.shape != (self.data_bits,):
            raise ValueError(
                f"expected {self.data_bits} data bits, got shape {bits.shape}"
            )
        if ((bits != 0) & (bits != 1)).any():
            raise ValueError("data must be binary")
        total = self.data_bits + self.parity_bits
        word = np.zeros(total + 1, dtype=np.int8)  # 1-indexed; [0] unused here
        for value, pos in zip(bits, self._data_positions):
            word[pos] = value
        for parity_pos in self._parity_positions:
            covered = [
                pos for pos in range(1, total + 1) if pos & parity_pos and pos != parity_pos
            ]
            word[parity_pos] = int(word[covered].sum() % 2)
        overall = int(word[1:].sum() % 2)
        # Stored layout: positions 1..total, then the overall-parity bit.
        return np.concatenate([word[1:], np.array([overall], dtype=np.int8)])

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Decode a codeword, correcting up to one flipped bit."""
        stored = np.asarray(codeword, dtype=np.int8)
        if stored.shape != (self.codeword_bits,):
            raise ValueError(
                f"expected {self.codeword_bits} codeword bits, got {stored.shape}"
            )
        total = self.data_bits + self.parity_bits
        word = np.zeros(total + 1, dtype=np.int8)
        word[1:] = stored[:total]
        overall_stored = int(stored[total])

        syndrome = 0
        for parity_pos in self._parity_positions:
            covered = [pos for pos in range(1, total + 1) if pos & parity_pos]
            if int(word[covered].sum() % 2):
                syndrome |= parity_pos
        overall_computed = int(word[1:].sum() % 2)
        overall_mismatch = overall_computed != overall_stored

        corrected_position: int | None = None
        if syndrome == 0 and not overall_mismatch:
            status = DecodeStatus.CLEAN
        elif syndrome != 0 and overall_mismatch:
            # Single error inside positions 1..total: correct it.
            if syndrome <= total:
                word[syndrome] ^= 1
                corrected_position = syndrome
                status = DecodeStatus.CORRECTED
            else:
                status = DecodeStatus.UNCORRECTABLE
        elif syndrome == 0 and overall_mismatch:
            # The overall-parity bit itself flipped; data is intact.
            corrected_position = total + 1
            status = DecodeStatus.CORRECTED
        else:
            # syndrome != 0 but overall parity matches: double error.
            status = DecodeStatus.UNCORRECTABLE

        data = np.array(
            [word[pos] for pos in self._data_positions], dtype=np.int8
        )
        return DecodeResult(data=data, status=status, corrected_position=corrected_position)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def inject_errors(
        self, codeword: np.ndarray, positions: list[int]
    ) -> np.ndarray:
        """Return a copy of ``codeword`` with the given bit indices flipped."""
        corrupted = np.array(codeword, dtype=np.int8, copy=True)
        for pos in positions:
            corrupted[pos] ^= 1
        return corrupted
