"""Galois-field arithmetic GF(2^m) for the BCH codec.

Log/antilog-table arithmetic over GF(2^m) with a primitive polynomial.
Small, exact and dependency-free — sized for the per-page ECC words the
flash substrate uses (m up to 10 covers 8 KiB pages with interleaving).
"""

from __future__ import annotations

__all__ = ["GF2m", "DEFAULT_PRIMITIVE_POLYS"]

#: Standard primitive polynomials (as bit-packed integers, degree m).
DEFAULT_PRIMITIVE_POLYS: dict[int, int] = {
    3: 0b1011,        # x^3 + x + 1
    4: 0b10011,       # x^4 + x + 1
    5: 0b100101,      # x^5 + x^2 + 1
    6: 0b1000011,     # x^6 + x + 1
    7: 0b10001001,    # x^7 + x^3 + 1
    8: 0b100011101,   # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,  # x^9 + x^4 + 1
    10: 0b10000001001,  # x^10 + x^3 + 1
}


class GF2m:
    """The field GF(2^m) with exp/log tables.

    Elements are integers in ``[0, 2^m)``; 0 is the additive identity
    (no logarithm), ``alpha = 2`` generates the multiplicative group.
    """

    def __init__(self, m: int, primitive_poly: int | None = None) -> None:
        if m < 2 or m > 16:
            raise ValueError("m must be in [2, 16]")
        poly = primitive_poly or DEFAULT_PRIMITIVE_POLYS.get(m)
        if poly is None:
            raise ValueError(f"no default primitive polynomial for m={m}")
        if poly.bit_length() != m + 1:
            raise ValueError(
                f"primitive polynomial degree {poly.bit_length() - 1} != m={m}"
            )
        self.m = m
        self.order = 1 << m
        self.poly = poly
        size = self.order - 1
        self.exp = [0] * (2 * size)
        self.log = [0] * self.order
        value = 1
        for power in range(size):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & self.order:
                value ^= poly
            if value == 1 and power != size - 1:
                # alpha's multiplicative order is smaller than 2^m - 1.
                raise ValueError(
                    f"polynomial {poly:#b} is not primitive for m={m}"
                )
        if value != 1:
            raise ValueError(f"polynomial {poly:#b} is not primitive for m={m}")
        for power in range(size, 2 * size):
            self.exp[power] = self.exp[power - size]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("division by the field zero")
        if a == 0:
            return 0
        return self.exp[(self.log[a] - self.log[b]) % (self.order - 1)]

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[(self.order - 1 - self.log[a]) % (self.order - 1)]

    def pow_alpha(self, exponent: int) -> int:
        """alpha ** exponent (any integer exponent)."""
        return self.exp[exponent % (self.order - 1)]

    # ------------------------------------------------------------------
    # Polynomials over the field (lists of coefficients, low order first)
    # ------------------------------------------------------------------
    def poly_eval(self, coeffs: list[int], x: int) -> int:
        """Evaluate a polynomial at ``x`` (Horner)."""
        result = 0
        for coeff in reversed(coeffs):
            result = self.mul(result, x) ^ coeff
        return result

    def poly_mul(self, a: list[int], b: list[int]) -> list[int]:
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb:
                    out[i + j] ^= self.mul(ca, cb)
        return out
