"""Statistical LDPC decode model (read retry, after LDPC-in-SSD [38]).

Modern SSDs decode with LDPC: a fast hard decode first, then — on failure —
progressively finer soft decodes, each requiring the page to be *re-sensed*
with extra read voltages.  The decode-failure probability falls steeply
with each extra sensing level; Zhao et al. [38] characterise this as a
near-exponential decay in the number of levels.  The model here exposes:

* ``hard_failure_probability(rber)`` — logistic ramp around the hard-decode
  correction strength;
* ``level_failure_probability(rber, level)`` — residual failure probability
  after ``level`` extra sensings (exponential decay per level);
* ``sample_sensing_levels(rng, rber)`` — how many extra sensing passes one
  page read performs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LdpcModel"]


@dataclass(frozen=True)
class LdpcModel:
    """Read-retry statistics of an LDPC-protected flash page.

    Attributes:
        hard_threshold_rber: RBER at which the hard decode fails half the
            time.
        hard_sharpness: Steepness of the hard-decode logistic ramp.
        level_decay: Multiplicative drop in failure probability per extra
            sensing level (each level roughly halves-to-quarters the
            failure rate in [38]'s data).
        max_levels: Maximum extra sensing levels the controller tries.
    """

    hard_threshold_rber: float = 2e-3
    hard_sharpness: float = 1500.0
    level_decay: float = 0.35
    max_levels: int = 7

    def __post_init__(self) -> None:
        if self.hard_threshold_rber <= 0:
            raise ValueError("hard_threshold_rber must be positive")
        if not 0 < self.level_decay < 1:
            raise ValueError("level_decay must be in (0, 1)")
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")

    def hard_failure_probability(self, rber: float) -> float:
        """Probability the initial hard decode fails at this RBER."""
        if rber < 0:
            raise ValueError("rber must be non-negative")
        x = self.hard_sharpness * (rber - self.hard_threshold_rber)
        return 1.0 / (1.0 + math.exp(-x))

    def level_failure_probability(self, rber: float, level: int) -> float:
        """Residual failure probability after ``level`` extra sensings."""
        if level < 0:
            raise ValueError("level must be non-negative")
        return self.hard_failure_probability(rber) * (self.level_decay**level)

    def sample_sensing_levels(
        self, rng: np.random.Generator, rber: float
    ) -> int:
        """Extra sensing passes one read performs (0 = hard decode hit)."""
        level = 0
        while (
            level < self.max_levels
            and rng.random() < self.level_failure_probability(rber, level)
        ):
            level += 1
        return level

    def expected_sensing_levels(self, rber: float) -> float:
        """Mean of :meth:`sample_sensing_levels`, for closed-form checks."""
        expected = 0.0
        survive = 1.0
        for level in range(self.max_levels):
            survive *= self.level_failure_probability(rber, level)
            expected += survive
            if survive < 1e-12:
                break
        return expected
