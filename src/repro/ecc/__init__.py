"""ECC substrate: SEC-DED codec, LDPC retry statistics, engine front-end."""

from .bch import BchCode, BchDecodeResult
from .engine import EccEngine
from .gf import GF2m
from .hamming import DecodeResult, DecodeStatus, HammingCodec
from .ldpc import LdpcModel

__all__ = [
    "BchCode",
    "BchDecodeResult",
    "GF2m",
    "EccEngine",
    "DecodeResult",
    "DecodeStatus",
    "HammingCodec",
    "LdpcModel",
]
