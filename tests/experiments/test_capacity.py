"""Tests for the Sec. III-C capacity analysis harness."""

from __future__ import annotations

import pytest

from repro.experiments.capacity_analysis import (
    CapacityResult,
    CapacityRow,
    format_capacity,
    run_capacity_analysis,
)


class TestCapacityRows:
    def test_in_use_fraction(self):
        row = CapacityRow("baseline", 50, 0, 200, 3, 3)
        assert row.in_use_fraction == pytest.approx(0.25)

    def test_increase_fractions(self):
        result = CapacityResult(
            workload="w",
            rows=[
                CapacityRow("baseline", 100, 0, 1000, 10, 20),
                CapacityRow("ida-e20", 120, 60, 1000, 8, 22),
            ],
        )
        assert result.in_use_increase_fraction() == pytest.approx(0.02)
        assert result.erase_increase_fraction() == pytest.approx(0.1)

    def test_zero_baseline_erases(self):
        result = CapacityResult(
            workload="w",
            rows=[
                CapacityRow("baseline", 100, 0, 1000, 0, 0),
                CapacityRow("ida-e20", 110, 50, 1000, 0, 0),
            ],
        )
        assert result.erase_increase_fraction() == 0.0

    def test_row_lookup_raises_on_unknown(self):
        result = CapacityResult(workload="w", rows=[])
        with pytest.raises(KeyError):
            result.row("baseline")


class TestEndToEnd:
    def test_quick_run(self, quick_scale):
        results = run_capacity_analysis(quick_scale, ["proj_3"])
        (result,) = results
        base = result.row("baseline")
        variant = result.row("ida-e20")
        assert base.ida_blocks == 0
        assert variant.ida_blocks > 0
        # Bounded census change either way, never explosive.
        assert abs(result.in_use_increase_fraction()) < 0.3
        text = format_capacity(results)
        assert "proj_3" in text and "baseline" in text
