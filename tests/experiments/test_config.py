"""Tests for experiment configuration (repro.experiments.config)."""

from __future__ import annotations

import pytest

from repro.experiments.config import DeviceConfig, RunScale, device
from repro.flash.geometry import Geometry


class TestDeviceFamilies:
    def test_tlc_matches_table2(self):
        dev = device("tlc")
        assert dev.coding.sense_counts() == (1, 2, 4)
        assert dev.timing.read_us(4) == 150.0
        assert dev.geometry.pages_per_block == 192
        assert dev.geometry.bits_per_cell == 3

    def test_mlc(self):
        dev = device("mlc")
        assert dev.coding.sense_counts() == (1, 2)
        assert dev.timing.read_us(1) == 65.0
        assert dev.geometry.pages_per_block == 128

    def test_qlc(self):
        dev = device("qlc")
        assert dev.coding.sense_counts() == (1, 2, 4, 8)
        assert dev.geometry.pages_per_block == 256

    def test_tlc232(self):
        dev = device("tlc232")
        assert dev.coding.sense_counts() == (2, 3, 2)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown device"):
            device("slc")

    def test_with_dtr(self):
        dev = device("tlc").with_dtr(70.0)
        assert dev.timing.read_us(4) == 190.0

    def test_coding_geometry_mismatch_rejected(self):
        tlc = device("tlc")
        with pytest.raises(ValueError, match="bits"):
            DeviceConfig("bad", device("mlc").geometry, tlc.timing, tlc.coding)


class TestRunScale:
    def test_quick_shrinks_topology(self):
        scale = RunScale.quick()
        geometry = scale.apply_topology(Geometry())
        assert geometry.total_planes < Geometry().total_planes
        assert geometry.blocks_per_plane == scale.blocks_per_plane

    def test_bench_keeps_table2_topology(self):
        scale = RunScale.bench()
        geometry = scale.apply_topology(Geometry())
        assert geometry.total_planes == 64

    def test_footprint_fills_blocks_per_plane(self):
        # The refresh daemon only touches full blocks; every preset must
        # put at least two whole blocks of data on each plane.
        for preset in (RunScale.quick(), RunScale.bench(), RunScale.full()):
            geometry = preset.apply_topology(Geometry())
            per_plane = preset.footprint_pages / geometry.total_planes
            assert per_plane >= 2 * geometry.pages_per_block, preset

    def test_rejects_bad_cycles(self):
        with pytest.raises(ValueError):
            RunScale(refresh_cycles=0)
