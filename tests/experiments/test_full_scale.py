"""The paper's full 512 GB topology is buildable and runnable.

``RunScale.full()`` is the Table II device with no topology shrinkage:
64 planes x 5472 blocks = 350,208 blocks, 67 M physical pages.  The
per-object simulator could never hold that; the columnar
:class:`~repro.flash.state.DeviceState` must — in a few hundred MB of
flat buffers — and a short fig8 slice must run on it end to end via the
batch backend.  These tests pin both the scale numbers and the memory
bound so a regression back toward per-page Python objects fails fast.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.experiments.config import RunScale
from repro.experiments.runner import build_simulator, run_workload
from repro.experiments.systems import ida
from repro.flash.geometry import Geometry
from repro.flash.state import DeviceState
from repro.ftl.recovery import mount_device
from repro.workloads import workload

FULL_BLOCKS = 350_208


class TestFullTopologyState:
    def test_full_scale_is_the_table2_device(self):
        scale = RunScale.full()
        geometry = scale.apply_topology(Geometry())
        assert geometry.total_planes == 64
        assert geometry.blocks_per_plane == 5472
        assert geometry.total_blocks == FULL_BLOCKS
        assert 500 <= geometry.capacity_gib <= 520

    def test_columnar_state_fits_bounded_memory(self):
        geometry = RunScale.full().apply_topology(Geometry())
        state = DeviceState(
            geometry.total_blocks, geometry.pages_per_block, geometry.bits_per_cell
        )
        assert state.num_blocks == FULL_BLOCKS
        # 67 M page-state bytes + 22 M wordline modes + 8-byte wordline
        # read counters (~180 MB) + the 16-byte per-page OOB records
        # that make the device mountable after power loss (~1.0 GiB —
        # real drives spend far more spare area on the same metadata)
        # + per-block summary/journal columns: ~1.36 GiB for the whole
        # 512 GB device, still flat buffers with no per-page objects.
        assert state.memory_bytes() < 1536 * 1024 * 1024

    def test_full_device_mounts_in_bounded_time(self):
        # SPOR mount must stay a vectorized scan: rebuilding the map,
        # pools and validity for all 350,208 blocks from on-flash
        # metadata alone has to finish in seconds, not minutes.  An
        # empty device still walks every summary/journal/pool column,
        # so it exercises the full-scale code path without a preload.
        scale = RunScale.full()
        sim = build_simulator(
            ida(0.2), scale, duration_us=1e6, seed=11, backend="batch"
        )
        start = time.monotonic()
        recovered, report = mount_device(
            sim.ftl.table.state,
            sim.geometry,
            sim.ftl.coding,
            sim.ftl.refresh_policy,
            gc_policy=sim.ftl.gc_policy,
            rng=np.random.default_rng(12),
        )
        elapsed = time.monotonic() - start
        assert report.free_blocks == FULL_BLOCKS
        assert recovered.table.state.num_blocks == FULL_BLOCKS
        # Generous CI bound; a per-page Python loop would take minutes.
        assert elapsed < 60.0

    def test_simulator_builds_at_full_topology(self):
        scale = RunScale.full()
        sim = build_simulator(
            ida(0.2), scale, duration_us=1e6, seed=11, backend="batch"
        )
        assert sim.ftl.table.state.num_blocks == FULL_BLOCKS
        assert len(sim.dies) == 32
        assert sim.backend.name == "batch"


class TestFullTopologySlice:
    def test_short_fig8_slice_runs_on_full_device(self):
        # Full 350,208-block topology, shortened request stream and
        # footprint so the smoke test stays in CI time: the point is
        # that preload, refresh, GC and the host path all work against
        # the full-size columnar state, not the workload length.
        scale = replace(
            RunScale.full(), num_requests=150, footprint_pages=120_000
        )
        result = run_workload(
            ida(0.2), workload("usr_1"), scale, seed=11, backend="batch"
        )
        metrics = result.metrics
        assert metrics.read_response.count > 0
        assert metrics.write_response.count > 0
        assert metrics.elapsed_us > 0
        assert result.in_use_blocks > 64  # footprint actually landed
