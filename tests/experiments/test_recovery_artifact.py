"""Tests for the crash-consistency sweep (recovery artifact)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import RunScale
from repro.experiments.parallel import RunUnit
from repro.experiments.recovery_artifact import (
    NEVER_ORDINAL,
    PHASES,
    RecoveryResult,
    _phase_labels,
    choose_cut_ordinals,
    format_recovery,
    probe_census,
    recovery_to_json,
    run_recovery,
    run_recovery_unit,
)
from repro.experiments.systems import ida
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

SCALE = RunScale.tiny()
SYSTEM = ida(0.2)


def _cut_plan(ordinal: int, name: str = "cut") -> FaultPlan:
    return FaultPlan(
        events=(FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=ordinal),),
        name=name,
    )


def _recover_unit(ordinal: int, backend: str = "reference") -> RunUnit:
    return RunUnit(
        SYSTEM,
        "proj_1",
        SCALE,
        seed=11,
        mode="recover",
        faults=_cut_plan(ordinal),
        backend=backend,
    )


class TestPhaseLabels:
    def test_plain_stream_is_read_write_gc(self):
        census = ["write", "read", "erase", "write", "read"]
        assert _phase_labels(census) == [
            "write",
            "read",
            "gc",
            "write",
            "read",
        ]

    def test_adjust_opens_a_refresh_window(self):
        census = ["write", "adjust", "write", "read", "write"]
        labels = _phase_labels(census)
        assert labels[0] == "write"
        assert labels[1] == "adjust"
        # Ops right after an ADJUST are the refresh pass's own moves.
        assert labels[2] == "refresh"
        assert labels[3] == "refresh"
        assert labels[4] == "refresh"

    def test_window_closes_and_all_labels_are_known_phases(self):
        census = ["adjust"] + ["write"] * 20
        labels = _phase_labels(census)
        assert labels[9:] == ["write"] * 12  # wake window is 8 ops
        assert set(labels) <= set(PHASES)


class TestChooseCutOrdinals:
    CENSUS = (
        ["write"] * 30 + ["adjust"] + ["write"] * 10 + ["erase"] * 3
        + ["read"] * 20
    )

    def test_deterministic_in_seed(self):
        a = choose_cut_ordinals(self.CENSUS, 12, seed=5)
        b = choose_cut_ordinals(self.CENSUS, 12, seed=5)
        c = choose_cut_ordinals(self.CENSUS, 12, seed=6)
        assert a == b
        assert a != c

    def test_covers_every_phase_the_census_shows(self):
        chosen = choose_cut_ordinals(self.CENSUS, 12, seed=5)
        assert len(chosen) == 12
        assert {phase for _, phase in chosen} == set(
            _phase_labels(self.CENSUS)
        )

    def test_small_pool_shortfall_flows_to_big_pools(self):
        # Only one adjust ordinal exists; the rest of its share must
        # land in the larger phases instead of being silently dropped.
        chosen = choose_cut_ordinals(self.CENSUS, 20, seed=5)
        assert len(chosen) == 20
        assert sum(1 for _, p in chosen if p == "adjust") == 1

    def test_never_exceeds_the_census(self):
        chosen = choose_cut_ordinals(["write"] * 5, 50, seed=5)
        assert [o for o, _ in chosen] == [1, 2, 3, 4, 5]

    def test_ordinals_are_valid_and_unique(self):
        chosen = choose_cut_ordinals(self.CENSUS, 25, seed=5)
        ordinals = [o for o, _ in chosen]
        assert len(set(ordinals)) == len(ordinals)
        assert all(1 <= o <= len(self.CENSUS) for o in ordinals)


class TestRunUnitValidation:
    def test_recover_mode_needs_a_power_cut(self):
        with pytest.raises(ValueError, match="power_cut"):
            RunUnit(SYSTEM, "proj_1", SCALE, seed=11, mode="recover")

    def test_other_fault_kinds_are_not_enough(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=3),
            )
        )
        with pytest.raises(ValueError, match="power_cut"):
            RunUnit(
                SYSTEM, "proj_1", SCALE, seed=11, mode="recover", faults=plan
            )


class TestRunRecoveryUnit:
    def test_mid_run_cut_recovers_clean(self):
        payload = run_recovery_unit(_recover_unit(60))
        assert payload["cut_fired"] is True
        # The counter includes the struck op; the op itself never issues.
        assert payload["ops_at_cut"] == 60
        assert payload["violations"] == []
        assert payload["ok"] is True
        assert payload["mapped_lpns"] > 0
        assert payload["resumed_requests"] > 0

    def test_unfired_cut_is_vacuously_clean(self):
        payload = run_recovery_unit(_recover_unit(NEVER_ORDINAL))
        assert payload["cut_fired"] is False
        assert payload["ok"] is True
        assert payload["violations"] == []


class TestRunRecoverySweep:
    @pytest.fixture(scope="class")
    def result(self) -> RecoveryResult:
        return run_recovery(
            scale=SCALE,
            workload_names=["proj_1"],
            cuts=8,
            backends=("reference", "batch"),
            seed=11,
        )

    def test_every_cut_is_clean(self, result):
        assert result.total == 8
        assert result.clean == 8
        assert result.all_ok
        assert result.violations() == []

    def test_both_backends_were_cut(self, result):
        assert {c.backend for c in result.cells} == {"reference", "batch"}

    def test_formatting_and_json_round_trip(self, result):
        text = format_recovery(result)
        assert "proj_1" in text and "reference" in text
        data = json.loads(json.dumps(recovery_to_json(result)))
        assert data["kind"] == "recovery_artifact"
        assert data["total_cuts"] == 8
        assert data["clean_cuts"] == 8
        assert data["all_ok"] is True
        assert len(data["cells"]) == 8


class TestProbeCensus:
    def test_probe_sees_every_dispatch_without_cutting(self):
        census = probe_census(SYSTEM, "proj_1", SCALE, seed=11)
        assert len(census) > SCALE.num_requests  # host ops + GC + refresh
        assert "adjust" in census  # IDA refresh actually ran
        assert set(census) <= {"read", "write", "erase", "adjust"}
