"""Smoke tests for the faults experiment artifact."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import RunScale
from repro.experiments.faults_artifact import (
    FaultsResult,
    faults_to_json,
    format_faults,
    plan_for_cell,
    run_faults,
)
from repro.experiments.fig11_read_retry import DEFAULT_PHASES

SCALE = RunScale.tiny()


@pytest.fixture(scope="module")
def result() -> FaultsResult:
    return run_faults(
        scale=SCALE,
        workload_names=["hm_1"],
        densities=(0, 2),
        seed=11,
    )


class TestPlanForCell:
    def test_density_zero_is_faults_off(self):
        assert plan_for_cell("hm_1", 0, 0, SCALE, 11) is None

    def test_cells_get_distinct_reproducible_plans(self):
        a = plan_for_cell("hm_1", 0, 2, SCALE, 11)
        b = plan_for_cell("hm_1", 0, 2, SCALE, 11)
        c = plan_for_cell("hm_1", 1, 2, SCALE, 11)
        d = plan_for_cell("hm_1", 0, 4, SCALE, 11)
        assert a == b
        assert a != c and a != d
        assert a.count.__self__ is a  # frozen plan, usable as shared key

    def test_density_scales_event_counts(self):
        plan = plan_for_cell("hm_1", 0, 2, SCALE, 11)
        assert len(plan) == 2 + 2 + 4 + 1  # grown, program, 2x reads, adjust
        assert plan.read_reclaim_threshold == 12


class TestRunFaults:
    def test_grid_is_complete(self, result):
        assert len(result.cells) == len(DEFAULT_PHASES) * 2
        for phase in DEFAULT_PHASES:
            for density in (0, 2):
                cell = result.cell("hm_1", phase.name, density)
                assert cell.baseline_rt_us > 0
                assert cell.ida_rt_us > 0

    def test_density_zero_runs_without_injector(self, result):
        for phase in DEFAULT_PHASES:
            cell = result.cell("hm_1", phase.name, 0)
            assert cell.baseline_fired == {}
            assert cell.ida_fired == {}
            assert cell.baseline_events == []

    def test_faulted_cells_record_fired_events(self, result):
        fired_any = False
        for phase in DEFAULT_PHASES:
            cell = result.cell("hm_1", phase.name, 2)
            assert set(cell.baseline_fired)  # injector ran: counts present
            fired_any = fired_any or sum(cell.baseline_fired.values()) > 0
        assert fired_any

    def test_average_covers_grid(self, result):
        for phase in DEFAULT_PHASES:
            for density in (0, 2):
                value = result.average(phase.name, density)
                assert value == result.cell("hm_1", phase.name, density).improvement_pct

    def test_missing_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("hm_1", "early", 99)


class TestRendering:
    def test_format_has_density_columns(self, result):
        text = format_faults(result)
        assert "density=0" in text and "density=2" in text
        assert "hm_1" in text
        assert "average" in text

    def test_json_round_trips_and_carries_events(self, result):
        data = faults_to_json(result)
        assert data["kind"] == "faults_artifact"
        assert data["densities"] == [0, 2]
        assert len(data["cells"]) == len(result.cells)
        encoded = json.dumps(data, sort_keys=True)
        assert json.loads(encoded) == json.loads(json.dumps(data, sort_keys=True))
        faulted = [c for c in data["cells"] if c["density"] == 2]
        assert any(c["baseline_events"] for c in faulted)
