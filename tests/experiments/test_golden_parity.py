"""Golden-parity pin: the staged pipeline must match the float exactly.

The metrics in ``tests/golden/fig8_tiny.json`` were captured from the
pre-pipeline simulator (per-op closure webs) at ``RunScale.tiny()``,
seed 11, under the read-first default policy.  The staged op-pipeline
refactor is required to be *byte-identical* — same event order, same
response times, same counter values — so every field is compared with
exact equality, no tolerances.

If a deliberate behaviour change ever invalidates these numbers,
regenerate the file with ``python -m tests.experiments.test_golden_parity``
and say so loudly in the commit message.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import RunScale
from repro.experiments.runner import RunResult, run_workload
from repro.experiments.systems import baseline, ida
from repro.workloads import TABLE3_WORKLOADS

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fig8_tiny.json"
TRACES = ("hm_1", "proj_1", "usr_1")
SYSTEMS = {"baseline": baseline(), "ida-e20": ida(0.2)}
SEED = 11


def _snapshot(result: RunResult) -> dict:
    metrics = result.metrics
    return {
        "read": metrics.read_response.summary(),
        "write": metrics.write_response.summary(),
        "elapsed_us": metrics.elapsed_us,
        "block_erases": metrics.block_erases,
        "refresh_page_moves": metrics.refresh_page_moves,
        "read_retries": metrics.read_retries,
    }


def _run(trace: str, system_name: str, backend: str = "reference") -> dict:
    result = run_workload(
        SYSTEMS[system_name],
        TABLE3_WORKLOADS[trace],
        scale=RunScale.tiny(),
        seed=SEED,
        backend=backend,
    )
    return _snapshot(result)


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.mark.parametrize("backend", ("reference", "batch"))
@pytest.mark.parametrize("trace", TRACES)
@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
def test_matches_golden_exactly(
    golden: dict, trace: str, system_name: str, backend: str
) -> None:
    # Both execution backends must land on the golden numbers exactly —
    # the backend is a wall-clock knob, never a semantics knob.
    expected = golden[trace][system_name]
    actual = json.loads(json.dumps(_run(trace, system_name, backend)))
    assert actual == expected


def _regenerate() -> None:
    payload = {
        trace: {name: _run(trace, name) for name in sorted(SYSTEMS)}
        for trace in TRACES
    }
    canonical = json.loads(json.dumps(payload))
    with GOLDEN_PATH.open("w") as fh:
        json.dump(canonical, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
