"""Warm-state snapshots are a pure wall-clock knob: exact-equality pins.

A run restored from a snapshot must be *byte-identical* to a cold run —
same metrics, same counters, same fault-event streams, same trace — for
every (backend x policy x fault-plan) cell, inline and pooled.  The
fig8 cells are additionally pinned against the sequential golden file,
so snapshot-enabled sweeps are transitively pinned to the pre-pipeline
float.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments.config import RunScale
from repro.experiments.parallel import (
    RunUnit,
    SweepExecutor,
    execute_units,
    warm_key_for_unit,
)
from repro.experiments.reporting import manifest_for_payload
from repro.experiments.runner import (
    build_simulator,
    capture_warm_state,
    generate_workload,
    prepare_warm_state,
    run_workload,
    warm_device,
)
from repro.experiments.systems import baseline, ida
from repro.faults import FaultPlan
from repro.obs.tracer import JsonlSink, Tracer
from repro.sim.snapshot import WarmHandle
from repro.workloads import TABLE3_WORKLOADS

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fig8_tiny.json"
SEED = 11
SCALE = RunScale.tiny()


def _canon(payload) -> str:
    """Canonical JSON of everything a payload carries downstream."""
    return json.dumps(
        {
            "metrics": payload.metrics_summary(),
            "counters": payload.counters,
            "refresh": payload.refresh,
            "blocks": [payload.in_use_blocks, payload.ida_blocks],
            "utilisation": payload.utilisation,
            "queue_wait": payload.queue_wait,
            "read_hist": [
                list(payload.read_hist.bounds),
                payload.read_hist.counts,
            ],
            "write_hist": [
                list(payload.write_hist.bounds),
                payload.write_hist.counts,
            ],
            "throughput": [
                payload.throughput_mb_s,
                payload.read_throughput_mb_s,
            ],
            "bytes": [payload.bytes_read, payload.bytes_written],
            "elapsed_us": payload.elapsed_us,
            "faults": payload.faults,
            "health": payload.health,
        },
        sort_keys=True,
    )


def _fault_plan() -> FaultPlan:
    return FaultPlan.generate(
        seed=23,
        duration_us=50_000.0,
        total_blocks=SCALE.blocks_per_plane * SCALE.channels * 4,
        program_fails=2,
        grown_bad=2,
        uncorrectable_reads=3,
        adjust_interrupts=1,
        max_program_ordinal=SCALE.num_requests // 2,
        max_read_ordinal=SCALE.num_requests,
        read_reclaim_threshold=12,
        name="snap-parity",
    )


class TestRestoredRunEquivalence:
    """restore_warm_state(fresh sim) == the cold warm-up, exactly."""

    @pytest.mark.parametrize("backend", ("reference", "batch"))
    @pytest.mark.parametrize("policy", ("read-first", "fcfs"))
    def test_backend_x_policy_cells(self, backend: str, policy: str) -> None:
        system = ida(0.2).with_policy(policy)
        spec = TABLE3_WORKLOADS["usr_1"]
        cold = run_workload(
            system, spec, SCALE, seed=SEED, backend=backend
        ).to_payload()
        warm = WarmHandle(
            state=prepare_warm_state(
                system, spec, SCALE, seed=SEED, backend=backend
            )
        )
        restored = run_workload(
            system, spec, SCALE, seed=SEED, backend=backend, warm=warm
        ).to_payload()
        assert warm.outcome == "hit"
        assert _canon(restored) == _canon(cold)

    def test_fault_plan_cell(self) -> None:
        # The warm key ignores fault plans (warm-up precedes every fault
        # window), so a faulted run restores from an unfaulted capture —
        # and must still reproduce the cold faulted run event-for-event.
        system = ida(0.2)
        spec = TABLE3_WORKLOADS["hm_1"]
        plan = _fault_plan()
        cold = run_workload(
            system, spec, SCALE, seed=SEED, faults=plan
        ).to_payload()
        warm = WarmHandle(
            state=prepare_warm_state(system, spec, SCALE, seed=SEED)
        )
        restored = run_workload(
            system, spec, SCALE, seed=SEED, faults=plan, warm=warm
        ).to_payload()
        assert _canon(restored) == _canon(cold)
        assert restored.faults == cold.faults

    def test_snapshot_crosses_backends(self) -> None:
        # Warm keys include the backend, but the captured state itself is
        # backend-agnostic: a reference-captured state restored under the
        # batch backend still matches the cold batch run.
        system = baseline()
        spec = TABLE3_WORKLOADS["usr_1"]
        cold = run_workload(
            system, spec, SCALE, seed=SEED, backend="batch"
        ).to_payload()
        warm = WarmHandle(
            state=prepare_warm_state(
                system, spec, SCALE, seed=SEED, backend="reference"
            )
        )
        restored = run_workload(
            system, spec, SCALE, seed=SEED, backend="batch", warm=warm
        ).to_payload()
        assert _canon(restored) == _canon(cold)

    def test_traced_run_ignores_the_cache_and_matches(self, tmp_path):
        # Warm-up GC can emit trace events, so traced runs must warm up
        # cold even when handed a warm state — and their trace streams
        # must match a run that never saw the snapshot layer.
        system = ida(0.2)
        spec = TABLE3_WORKLOADS["usr_1"]
        paths = [tmp_path / "cold.jsonl", tmp_path / "warm.jsonl"]
        state = prepare_warm_state(system, spec, SCALE, seed=SEED)
        for path, warm in zip(paths, (None, WarmHandle(state=state))):
            tracer = Tracer(JsonlSink(str(path)))
            run_workload(
                system, spec, SCALE, seed=SEED, tracer=tracer, warm=warm
            )
            tracer.close()
        assert paths[0].read_text() == paths[1].read_text()
        assert paths[0].stat().st_size > 0


class TestWarmDeviceHelper:
    def test_cold_path_matches_the_manual_ritual(self) -> None:
        # ``warm_device`` replaced three copy-pasted preload/age blocks;
        # this pins that the consolidated fill behaviour is unchanged.
        system = ida(0.2)
        spec = TABLE3_WORKLOADS["usr_1"].scaled(
            SCALE.num_requests, SCALE.footprint_pages
        )
        generated = generate_workload(spec)
        helper = build_simulator(system, SCALE, spec.duration_us, seed=SEED)
        warm_device(helper, generated)
        manual = build_simulator(system, SCALE, spec.duration_us, seed=SEED)
        period_us = manual.ftl.refresh_policy.period_us
        manual.preload(
            generated.fill_lpns,
            start_us=-1.4 * period_us,
            end_us=-0.4 * period_us,
        )
        manual.age(generated.aging_lpns, pseudo_now_us=-0.35 * period_us)
        a = capture_warm_state(helper)
        b = capture_warm_state(manual)
        assert a.device.columns == b.device.columns
        assert dataclasses.replace(a, device=None) == dataclasses.replace(
            b, device=None
        )


class TestExecutorParity:
    """snapshots=True is invisible in the results, inline and pooled."""

    @pytest.fixture(scope="class")
    def units(self) -> list[RunUnit]:
        # A fig9-style fan: every unit shares one (workload, seed, scale)
        # warm-up, so the whole list restores from a single snapshot.
        return [
            RunUnit(baseline(), "usr_1", SCALE, seed=SEED),
            RunUnit(ida(0.0), "usr_1", SCALE, seed=SEED),
            RunUnit(ida(0.2), "usr_1", SCALE, seed=SEED),
            RunUnit(ida(0.2).with_dtr(0.3), "usr_1", SCALE, seed=SEED),
            RunUnit(
                ida(0.2), "usr_1", SCALE, seed=SEED, faults=_fault_plan()
            ),
            RunUnit(ida(0.2), "usr_1", SCALE, seed=SEED, mode="capacity"),
        ]

    @pytest.fixture(scope="class")
    def cold(self, units):
        return execute_units(units, jobs=1)

    def test_units_share_one_warm_key(self, units) -> None:
        assert len({warm_key_for_unit(u) for u in units}) == 1

    def test_inline_snapshots_match_cold(self, units, cold) -> None:
        executor = SweepExecutor(jobs=1, snapshots=True)
        results = executor.map(units)
        for a, b in zip(cold, results):
            if isinstance(a, dict) or not hasattr(a, "metrics_summary"):
                assert a == b  # capacity census
            else:
                assert _canon(a) == _canon(b)
        assert executor.snapshot_stats["hits"] == len(units) - 1
        assert executor.snapshot_stats["misses"] == 1
        assert executor.snapshot_stats["fallbacks"] == 0

    def test_pooled_snapshots_match_cold(self, units, cold) -> None:
        executor = SweepExecutor(jobs=4, snapshots=True)
        results = executor.map(units)
        for a, b in zip(cold, results):
            if isinstance(a, dict) or not hasattr(a, "metrics_summary"):
                assert a == b
            else:
                assert _canon(a) == _canon(b)
        # Every unit attached the one parent-published segment; the
        # parent's single cold preload is the lone miss.
        assert executor.snapshot_stats["hits"] == len(units)
        assert executor.snapshot_stats["misses"] == 1

    def test_spill_dir_reuses_across_executors(self, units, tmp_path) -> None:
        first = SweepExecutor(jobs=1, snapshot_dir=str(tmp_path))
        first.map(units[:2])
        assert first.snapshot_stats["misses"] == 1
        second = SweepExecutor(jobs=1, snapshot_dir=str(tmp_path))
        second.map(units[:2])
        assert second.snapshot_stats["misses"] == 0
        assert second.snapshot_stats["hits"] == 2


class TestFig8GoldenWithSnapshots:
    """Snapshot-enabled sweeps stay pinned to the sequential golden."""

    TRACES = ("hm_1", "proj_1", "usr_1")
    SYSTEMS = {"baseline": baseline(), "ida-e20": ida(0.2)}

    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        with GOLDEN_PATH.open() as fh:
            return json.load(fh)

    def _check(self, payloads, golden) -> None:
        cells = [
            (trace, name)
            for trace in self.TRACES
            for name in sorted(self.SYSTEMS)
        ]
        for (trace, name), payload in zip(cells, payloads):
            expected = golden[trace][name]
            actual = json.loads(
                json.dumps(
                    {
                        "read": payload.read_response,
                        "write": payload.write_response,
                        "elapsed_us": payload.elapsed_us,
                        "block_erases": payload.counters["block_erases"],
                        "refresh_page_moves": payload.counters[
                            "refresh_page_moves"
                        ],
                        "read_retries": payload.counters["read_retries"],
                    }
                )
            )
            for field in actual:
                assert actual[field] == expected[field], (trace, name, field)

    def _units(self) -> list[RunUnit]:
        return [
            RunUnit(self.SYSTEMS[name], trace, SCALE, seed=SEED)
            for trace in self.TRACES
            for name in sorted(self.SYSTEMS)
        ]

    def test_inline(self, golden) -> None:
        self._check(
            execute_units(self._units(), jobs=1, snapshots=True), golden
        )

    def test_pooled_jobs_4(self, golden) -> None:
        self._check(
            execute_units(self._units(), jobs=4, snapshots=True), golden
        )


class TestManifestRecording:
    def test_snapshot_stats_land_under_execution(self) -> None:
        stats: dict = {}
        payloads = execute_units(
            [RunUnit(ida(0.2), "usr_1", SCALE, seed=SEED)],
            jobs=1,
            snapshots=True,
            snapshot_stats=stats,
        )
        manifest = manifest_for_payload(
            payloads[0], jobs=1, snapshots=stats
        )
        recorded = manifest["execution"]["snapshots"]
        assert recorded == {"hits": 0, "misses": 1, "fallbacks": 0}

    def test_snapshot_stats_stay_out_of_the_config_hash(self) -> None:
        payload = execute_units(
            [RunUnit(ida(0.2), "usr_1", SCALE, seed=SEED)], jobs=1
        )[0]
        without = manifest_for_payload(payload, jobs=1)
        with_stats = manifest_for_payload(
            payload, jobs=1, snapshots={"hits": 5, "misses": 1, "fallbacks": 0}
        )
        assert with_stats["config_hash"] == without["config_hash"]
