"""Tests for the experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    improvement_pct,
    normalized_read_response,
    run_workload,
    run_workload_closed_loop,
)
from repro.experiments.systems import baseline, ida
from repro.workloads import workload


@pytest.fixture(scope="module")
def usr1_pair(request):
    from repro.experiments.config import RunScale

    scale = RunScale.quick()
    base = run_workload(baseline(), workload("usr_1"), scale)
    variant = run_workload(ida(0.2), workload("usr_1"), scale)
    return base, variant


class TestRunWorkload:
    def test_baseline_produces_responses(self, usr1_pair):
        base, _ = usr1_pair
        assert base.metrics.read_response.count > 500
        assert base.mean_read_response_us > 100.0  # at least the raw path
        assert base.metrics.refresh_invocations > 0

    def test_ida_beats_baseline_on_usr1(self, usr1_pair):
        base, variant = usr1_pair
        assert normalized_read_response(variant, base) < 1.0
        assert improvement_pct(variant, base) > 0.0

    def test_ida_run_applies_ida(self, usr1_pair):
        _, variant = usr1_pair
        assert variant.metrics.refresh_adjusted_wordlines > 0
        assert variant.metrics.read_mix.ida_fast_reads > 0

    def test_baseline_never_applies_ida(self, usr1_pair):
        base, _ = usr1_pair
        assert base.metrics.refresh_adjusted_wordlines == 0
        assert base.metrics.read_mix.ida_fast_reads == 0
        assert base.ida_blocks == 0

    def test_refresh_reports_collected(self, usr1_pair):
        _, variant = usr1_pair
        assert variant.refresh_reports
        for report in variant.refresh_reports:
            assert report.n_valid >= report.n_moved
            assert report.n_error <= report.n_target

    def test_runs_are_deterministic(self, quick_scale):
        a = run_workload(baseline(), workload("proj_3"), quick_scale)
        b = run_workload(baseline(), workload("proj_3"), quick_scale)
        assert a.mean_read_response_us == b.mean_read_response_us
        assert a.metrics.read_mix.by_type == b.metrics.read_mix.by_type

    def test_normalized_requires_baseline_reads(self, usr1_pair):
        base, variant = usr1_pair
        base.metrics.read_response._samples.clear()
        base.metrics.read_response._total = 0.0
        with pytest.raises(ValueError):
            normalized_read_response(variant, base)


class TestClosedLoop:
    def test_closed_loop_throughput_positive(self, quick_scale):
        result = run_workload_closed_loop(
            baseline(), workload("proj_3"), quick_scale, queue_depth=8
        )
        assert result.throughput_mb_s > 0
        assert result.metrics.read_response.count > 0
