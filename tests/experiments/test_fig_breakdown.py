"""Tests for the stage-attribution artifact (experiments.fig_breakdown)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import RunScale
from repro.experiments.fig_breakdown import (
    COMPONENTS,
    BreakdownCell,
    BreakdownResult,
    breakdown_to_json,
    format_fig_breakdown,
    run_fig_breakdown,
)
from repro.experiments.parallel import RunUnit, execute_unit
from repro.experiments.reporting import manifest_for_payload
from repro.experiments.systems import ida


@pytest.fixture(scope="module")
def result():
    return run_fig_breakdown(
        scale=RunScale.tiny(), workload_names=["hm_1", "usr_1"]
    )


class TestRunFigBreakdown:
    def test_cells_cover_both_systems(self, result):
        assert result.system_names == ("baseline", "ida-e20")
        assert set(result.cells) == {"hm_1", "usr_1"}
        for per_system in result.cells.values():
            assert set(per_system) == {"baseline", "ida-e20"}

    def test_attribution_is_conservative(self, result):
        for per_system in result.cells.values():
            for cell in per_system.values():
                tolerance = max(
                    result.tolerance_us, 1e-9 * abs(cell.mean_response_us)
                )
                assert cell.residual_us <= tolerance
                assert cell.attributed_us == pytest.approx(
                    cell.mean_response_us, abs=2 * tolerance
                )

    def test_components_complete_and_positive_reads(self, result):
        for per_system in result.cells.values():
            for cell in per_system.values():
                assert set(cell.components_us) == set(COMPONENTS)
                assert cell.reads > 0

    def test_sense_and_wait_shrink_under_ida(self, result):
        # The paper's mechanism: IDA shortens senses directly and queue
        # wait indirectly; transfer / ECC / host overhead stay put.
        for workload in result.cells:
            saving = result.improvement_us(workload)
            assert saving["sense"] > 0.0
            assert saving["transfer"] == pytest.approx(0.0, abs=1e-6)
            assert saving["host_overhead"] == pytest.approx(0.0, abs=1e-6)

    def test_formatting_mentions_key_parts(self, result):
        report = format_fig_breakdown(result)
        assert "hm_1" in report
        assert "saved" in report
        assert "queue_wait_us" in report
        assert "mean improvement" in report

    def test_json_artifact_shape(self, result):
        artifact = breakdown_to_json(result)
        json.dumps(artifact)  # must be serialisable as-is
        assert artifact["kind"] == "fig_breakdown"
        assert artifact["components"] == list(COMPONENTS)
        cell = artifact["workloads"]["usr_1"]["baseline"]
        assert set(cell["components_us"]) == set(COMPONENTS)
        assert "saved_us" in artifact["workloads"]["usr_1"]

    def test_unprofiled_payload_rejected(self):
        from repro.experiments.fig_breakdown import _attribution_cell

        unit = RunUnit(ida(0.2), "usr_1", RunScale.tiny())
        payload = execute_unit(unit)
        assert payload.profile is None
        with pytest.raises(ValueError, match="no profile"):
            _attribution_cell(payload, "usr_1", 1e-6)


class TestImprovement:
    def make_result(self, base: float, variant: float) -> BreakdownResult:
        result = BreakdownResult(system_names=("baseline", "ida-e20"))
        result.cells["w"] = {
            "baseline": BreakdownCell(
                "w", "baseline", 10, base,
                {c: base / len(COMPONENTS) for c in COMPONENTS},
            ),
            "ida-e20": BreakdownCell(
                "w", "ida-e20", 10, variant,
                {c: variant / len(COMPONENTS) for c in COMPONENTS},
            ),
        }
        return result

    def test_mean_improvement_pct(self):
        assert self.make_result(100.0, 72.0).mean_improvement_pct() == (
            pytest.approx(28.0)
        )

    def test_zero_baseline_skipped(self):
        assert self.make_result(0.0, 72.0).mean_improvement_pct() == 0.0

    def test_improvement_us_per_component(self):
        saving = self.make_result(100.0, 50.0).improvement_us("w")
        for component in COMPONENTS:
            assert saving[component] == pytest.approx(10.0)


class TestProfileTransport:
    """RunUnit(profile=True) must survive the process-pool hop."""

    def test_inline_unit_carries_profile(self):
        unit = RunUnit(ida(0.2), "usr_1", RunScale.tiny(), profile=True)
        payload = execute_unit(unit)
        assert payload.profile is not None
        assert payload.profile["requests"]["read"]["count"] > 0

    def test_pool_payload_matches_inline(self):
        from repro.experiments.parallel import SweepExecutor

        unit = RunUnit(ida(0.2), "usr_1", RunScale.tiny(), profile=True)
        inline = execute_unit(unit)
        pooled = SweepExecutor(jobs=2).map([unit, unit])[0]
        assert pooled.profile is not None
        assert pooled.profile["requests"] == inline.profile["requests"]
        assert pooled.profile["stages"] == inline.profile["stages"]

    def test_manifest_embeds_transported_profile(self):
        from repro.experiments.parallel import SweepExecutor

        unit = RunUnit(ida(0.2), "usr_1", RunScale.tiny(), profile=True)
        payload = SweepExecutor(jobs=2).map([unit])[0]
        manifest = manifest_for_payload(payload, jobs=2)
        assert manifest["profile"]["requests"]["read"]["count"] > 0

    def test_run_fig_breakdown_through_pool(self):
        pooled = run_fig_breakdown(
            scale=RunScale.tiny(), workload_names=["usr_1"], jobs=2
        )
        inline = run_fig_breakdown(
            scale=RunScale.tiny(), workload_names=["usr_1"]
        )
        for system in pooled.system_names:
            assert (
                pooled.cells["usr_1"][system].components_us
                == inline.cells["usr_1"][system].components_us
            )
