"""Tests for the hardened sweep executor (timeouts, crashes, keep-going).

Worker misbehaviour is injected by monkeypatching
``repro.experiments.parallel.execute_unit`` *before* the pool forks:
with the default fork start method the children inherit the patched
module, so a unit whose workload is named ``crash`` can take its worker
down with ``os._exit`` — exactly the failure mode the executor must
contain, attribute and retry.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import pytest

import repro.experiments.parallel as parallel
from repro.experiments.config import RunScale
from repro.experiments.parallel import (
    RunUnit,
    SweepError,
    SweepExecutor,
    failed_workloads,
    prune_failed,
)
from repro.experiments.systems import baseline

SCALE = RunScale.tiny()

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=True) not in (None, "fork"),
    reason="crash injection relies on fork inheriting the patched module",
)


def _unit(workload: str) -> RunUnit:
    # The fake worker never resolves the workload, so any name works.
    return RunUnit(baseline(), workload, SCALE)


def _fake_execute_unit(unit, tracer=None, collector=None, warm=None):
    name = unit.workload
    if name == "crash":
        os._exit(1)
    if name == "hang":
        time.sleep(60.0)
    if name.startswith("fail"):
        raise ValueError(f"deterministic failure in {name}")
    if name.startswith("flaky:"):
        marker = name.split(":", 1)[1]
        if not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as fh:
                fh.write("crashed once\n")
            os._exit(1)
    return f"ok:{name}"


@pytest.fixture
def fake_worker(monkeypatch):
    monkeypatch.setattr(parallel, "execute_unit", _fake_execute_unit)


class TestWorkerCrash:
    def test_crash_is_contained_and_attributed(self, fake_worker):
        executor = SweepExecutor(jobs=2, keep_going=True)
        results = executor.map([_unit("a"), _unit("crash"), _unit("b")])
        assert results[0] == "ok:a"
        assert isinstance(results[1], SweepError)
        assert "crash" in str(results[1])
        assert results[2] == "ok:b"

    def test_crash_raises_without_keep_going(self, fake_worker):
        executor = SweepExecutor(jobs=2)
        with pytest.raises(SweepError, match="crash"):
            executor.map([_unit("a"), _unit("crash")])

    def test_pool_is_cleaned_up_after_crash(self, fake_worker):
        executor = SweepExecutor(jobs=2, keep_going=True)
        executor.map([_unit("crash"), _unit("a")])
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []

    def test_crashed_unit_is_retried_on_fresh_pool(self, fake_worker, tmp_path):
        marker = tmp_path / "crashed-once"
        executor = SweepExecutor(jobs=2, max_retries=2, backoff_s=0.0)
        results = executor.map([_unit(f"flaky:{marker}"), _unit("b")])
        assert results[0] == f"ok:flaky:{marker}"
        assert results[1] == "ok:b"
        assert marker.exists()

    def test_retries_exhaust_into_sweep_error(self, fake_worker):
        executor = SweepExecutor(
            jobs=2, max_retries=1, backoff_s=0.0, keep_going=True
        )
        results = executor.map([_unit("crash"), _unit("a")])
        assert isinstance(results[0], SweepError)
        assert "gave up after 2 attempt(s)" in results[0].details
        assert results[1] == "ok:a"


class TestTimeout:
    def test_hung_worker_times_out(self, fake_worker):
        executor = SweepExecutor(
            jobs=2, timeout_s=1.0, keep_going=True, backoff_s=0.0
        )
        start = time.monotonic()
        results = executor.map([_unit("hang"), _unit("a")])
        assert time.monotonic() - start < 30.0
        assert isinstance(results[0], SweepError)
        assert "timed out" in str(results[0])
        assert results[1] == "ok:a"

    def test_fast_units_unaffected_by_timeout(self, fake_worker):
        executor = SweepExecutor(jobs=2, timeout_s=30.0)
        assert executor.map([_unit("a"), _unit("b")]) == ["ok:a", "ok:b"]


class TestDeterministicFailures:
    def test_deterministic_exception_is_never_retried(self, fake_worker):
        # A unit that *raises* (rather than crashing the process) fails
        # the same way every time; retrying would waste the budget.
        executor = SweepExecutor(
            jobs=2, max_retries=5, backoff_s=0.0, keep_going=True
        )
        start = time.monotonic()
        results = executor.map([_unit("fail-1"), _unit("a")])
        assert time.monotonic() - start < 30.0
        assert isinstance(results[0], SweepError)
        assert "deterministic failure" in str(results[0].details)
        assert results[1] == "ok:a"

    def test_inline_keep_going_collects_errors(self, fake_worker):
        executor = SweepExecutor(jobs=1, keep_going=True)
        results = executor.map([_unit("a"), _unit("fail-2"), _unit("b")])
        assert results[0] == "ok:a"
        assert isinstance(results[1], SweepError)
        assert isinstance(results[1].__cause__, ValueError)
        assert results[2] == "ok:b"

    def test_inline_raises_without_keep_going(self, fake_worker):
        executor = SweepExecutor(jobs=1)
        with pytest.raises(SweepError, match="fail-3"):
            executor.map([_unit("fail-3")])


class TestConstructorValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)
        with pytest.raises(ValueError):
            SweepExecutor(timeout_s=0.0)
        with pytest.raises(ValueError):
            SweepExecutor(max_retries=-1)
        with pytest.raises(ValueError):
            SweepExecutor(backoff_s=-0.1)


class TestPruneHelpers:
    def _outcomes(self):
        units = [_unit("w1"), _unit("w2"), _unit("w1"), _unit("w2")]
        outcomes = [
            "r0",
            SweepError(units[1], "boom"),
            "r2",
            "r3",
        ]
        return units, outcomes

    def test_failed_workloads(self):
        units, outcomes = self._outcomes()
        assert failed_workloads(outcomes) == {"w2"}
        assert failed_workloads(["a", "b"]) == set()

    def test_prune_drops_whole_workload_groups(self):
        units, outcomes = self._outcomes()
        names = ["w1", "w2", "w1", "w2"]
        messages: list[str] = []
        kept_names, kept_units, kept_outcomes, errors = prune_failed(
            names, units, outcomes, messages.append
        )
        # Both w2 slots go — the failed one *and* its healthy sibling —
        # so fixed-stride group slicing downstream stays aligned.
        assert kept_names == ["w1", "w1"]
        assert [u.workload for u in kept_units] == ["w1", "w1"]
        assert kept_outcomes == ["r0", "r2"]
        assert len(errors) == 1 and isinstance(errors[0], SweepError)
        assert any("w2" in message for message in messages)

    def test_prune_noop_when_all_succeed(self):
        units = [_unit("w1"), _unit("w2")]
        names = ["w1", "w2"]
        outcomes = ["r0", "r1"]
        kept = prune_failed(names, units, outcomes)
        assert kept == (names, units, outcomes, [])
