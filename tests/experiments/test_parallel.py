"""Unit tests for the parallel sweep executor and its payload transport."""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.experiments.config import RunScale
from repro.experiments.parallel import (
    RunUnit,
    SweepError,
    SweepExecutor,
    execute_unit,
    execute_units,
)
from repro.experiments.runner import (
    CapacityCensus,
    RunResultPayload,
    run_workload,
    run_workload_closed_loop,
)
from repro.experiments.systems import baseline, ida
from repro.workloads import TABLE3_WORKLOADS

SCALE = RunScale.tiny()


def _unit(workload: str = "hm_1", **kwargs) -> RunUnit:
    return RunUnit(baseline(), workload, SCALE, **kwargs)


class TestRunUnit:
    def test_rejects_unknown_mode(self) -> None:
        with pytest.raises(ValueError, match="mode"):
            _unit(mode="sideways")

    def test_resolves_catalog_workload_by_name(self) -> None:
        unit = _unit("usr_1")
        assert unit.workload_name == "usr_1"
        assert unit.resolve_workload() == TABLE3_WORKLOADS["usr_1"]

    def test_accepts_inline_spec(self) -> None:
        spec = TABLE3_WORKLOADS["usr_1"]
        unit = RunUnit(ida(0.2), spec, SCALE)
        assert unit.workload_name == spec.name
        assert unit.resolve_workload() is spec

    def test_describe_names_system_and_workload(self) -> None:
        assert _unit("proj_1").describe() == "baseline/proj_1"

    def test_is_picklable(self) -> None:
        unit = _unit(seed=7, mode="closed", queue_depth=8)
        assert pickle.loads(pickle.dumps(unit)) == unit

    def test_slo_requires_health(self) -> None:
        from repro.obs.slo import DEFAULT_READ_P99_SLO

        with pytest.raises(ValueError, match="health"):
            _unit(slo=(DEFAULT_READ_P99_SLO,))

    def test_health_unit_is_picklable_and_builds_monitor(self) -> None:
        from repro.obs.slo import DEFAULT_READ_P99_SLO

        unit = _unit(health=True, slo=(DEFAULT_READ_P99_SLO,))
        assert pickle.loads(pickle.dumps(unit)) == unit
        monitor = unit.build_health()
        assert monitor.registry is not None
        assert monitor.slo.objectives == (DEFAULT_READ_P99_SLO,)
        assert _unit().build_health() is None


class TestPayloadRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_workload(
            ida(0.2), TABLE3_WORKLOADS["hm_1"], SCALE, seed=11
        )

    def test_payload_matches_source_result(self, result) -> None:
        payload = result.to_payload()
        metrics = result.metrics
        assert payload.system == result.system
        assert payload.seed == result.seed
        assert payload.read_response == metrics.read_response.summary()
        assert payload.write_response == metrics.write_response.summary()
        assert payload.elapsed_us == metrics.elapsed_us
        assert payload.throughput_mb_s == metrics.throughput_mb_s()
        assert payload.read_mix == metrics.read_mix
        assert payload.counters["block_erases"] == metrics.block_erases
        assert payload.refresh["blocks_refreshed"] == len(result.refresh_reports)
        assert payload.in_use_blocks == result.in_use_blocks
        assert payload.utilisation == result.utilisation

    def test_pickle_round_trip_is_exact(self, result) -> None:
        payload = result.to_payload()
        clone = pickle.loads(pickle.dumps(payload))
        assert isinstance(clone, RunResultPayload)
        assert clone == payload

    def test_payload_pickles_smaller_than_result(self, result) -> None:
        assert len(pickle.dumps(result.to_payload())) < len(pickle.dumps(result))


class TestInlineExecution:
    def test_matches_direct_run(self) -> None:
        unit = RunUnit(ida(0.2), "hm_1", SCALE, seed=11)
        direct = run_workload(
            ida(0.2), TABLE3_WORKLOADS["hm_1"], SCALE, seed=11
        ).to_payload()
        assert execute_unit(unit) == direct
        assert SweepExecutor(jobs=1).map([unit]) == [direct]

    def test_closed_loop_mode(self) -> None:
        unit = RunUnit(baseline(), "hm_1", SCALE, mode="closed", queue_depth=4)
        direct = run_workload_closed_loop(
            baseline(), TABLE3_WORKLOADS["hm_1"], SCALE, seed=11, queue_depth=4
        ).to_payload()
        assert execute_unit(unit) == direct

    def test_capacity_mode_returns_census(self) -> None:
        census = execute_unit(_unit(mode="capacity"))
        assert isinstance(census, CapacityCensus)
        assert 0 < census.in_use_blocks <= census.total_blocks

    def test_results_follow_submission_order(self) -> None:
        units = [_unit("usr_1"), RunUnit(ida(0.2), "hm_1", SCALE)]
        payloads = execute_units(units)
        assert [p.system.name for p in payloads] == ["baseline", "ida-e20"]
        assert [p.workload.name for p in payloads] == ["usr_1", "hm_1"]

    def test_progress_called_per_unit(self) -> None:
        lines: list[str] = []
        units = [_unit("hm_1"), _unit("usr_1")]
        SweepExecutor(jobs=1, progress=lines.append).map(units)
        assert len(lines) == len(units)
        assert "baseline/hm_1" in lines[0]

    def test_unknown_workload_raises_sweep_error(self) -> None:
        unit = _unit("no_such_trace")
        with pytest.raises(SweepError) as info:
            execute_units([unit])
        assert info.value.unit == unit
        assert "no_such_trace" in str(info.value)
        assert isinstance(info.value.__cause__, KeyError)

    def test_rejects_non_unit_items(self) -> None:
        with pytest.raises(TypeError):
            SweepExecutor(jobs=1).map(["hm_1"])  # type: ignore[list-item]


class TestPoolExecution:
    def test_worker_failure_propagates_with_unit_context(self) -> None:
        units = [_unit("hm_1"), _unit("no_such_trace")]
        with pytest.raises(SweepError) as info:
            execute_units(units, jobs=2)
        assert info.value.unit == units[1]
        assert "no_such_trace" in str(info.value)

    def test_pool_shuts_down_cleanly(self) -> None:
        with pytest.raises(SweepError):
            execute_units([_unit("no_such_trace")], jobs=2)
        execute_units([_unit("hm_1")], jobs=2)
        assert multiprocessing.active_children() == []

    def test_tracer_factory_rejected(self) -> None:
        with pytest.raises(ValueError, match="inline-only"):
            SweepExecutor(jobs=2).map(
                [_unit()], tracer_factory=lambda unit: None
            )

    def test_collector_factory_rejected(self) -> None:
        with pytest.raises(ValueError, match="inline-only"):
            SweepExecutor(jobs=2).map(
                [_unit()], collector_factory=lambda unit: None
            )

    def test_rejects_bad_job_count(self) -> None:
        with pytest.raises(ValueError):
            SweepExecutor(jobs=0)
