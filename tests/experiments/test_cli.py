"""Tests for the CLI front-end (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import ARTIFACTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_every_artifact_has_runner_and_formatter(self):
        for name, (runner, formatter) in ARTIFACTS.items():
            assert callable(runner), name
            assert callable(formatter), name

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--scale", "galactic"])

    def test_runs_one_artifact_quick(self, capsys):
        # Run one cheap artifact end to end through the CLI.
        code = main(["table4", "--scale", "quick", "--workloads", "proj_3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "proj_3" in out


class TestFaultsCli:
    def _plan_path(self, tmp_path):
        from repro.faults import FaultEvent, FaultKind, FaultPlan, save_plan

        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=2),),
            read_reclaim_threshold=12,
            name="cli-test",
        )
        return save_plan(plan, tmp_path / "plan.json")

    def test_run_with_faults_plan(self, capsys, tmp_path, monkeypatch):
        path = self._plan_path(tmp_path)
        report = tmp_path / "run.json"
        code = main(
            [
                "run",
                "--scale",
                "tiny",
                "--faults",
                str(path),
                "--report",
                str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        import json

        manifest = json.loads(report.read_text())
        assert manifest["faults"]["plan"]["name"] == "cli-test"
        assert manifest["config"]["faults"]["name"] == "cli-test"

    def test_run_rejects_broken_plan(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["run", "--scale", "tiny", "--faults", str(path)])

    def test_faults_artifact_with_json_out(self, capsys, tmp_path):
        out_path = tmp_path / "faults.json"
        code = main(
            [
                "faults",
                "--scale",
                "tiny",
                "--workloads",
                "hm_1",
                "--json-out",
                str(out_path),
            ]
        )
        assert code == 0
        assert "density=0" in capsys.readouterr().out
        import json

        data = json.loads(out_path.read_text())
        assert data["kind"] == "faults_artifact"
        assert data["cells"]

    def test_json_out_rejected_for_unsupported_artifact(self):
        with pytest.raises(SystemExit):
            main(["table4", "--scale", "tiny", "--json-out", "x.json"])

    def test_keep_going_drops_failed_workload(self, capsys):
        code = main(
            [
                "fig8",
                "--scale",
                "tiny",
                "--workloads",
                "hm_1,no_such_trace",
                "--keep-going",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "dropping workload 'no_such_trace'" in out
        assert "hm_1" in out

    def test_without_keep_going_failure_propagates(self):
        from repro.experiments.parallel import SweepError

        with pytest.raises(SweepError):
            main(["fig8", "--scale", "tiny", "--workloads", "hm_1,no_such_trace"])


class TestRunSubcommand:
    def test_plain_run(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "ida-e20 on usr_1 @ tiny" in out
        assert "reads" in out
        assert "utilisation" in out

    def test_run_with_all_observability_outputs(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        report = tmp_path / "run.json"
        code = main([
            "run", "--scale", "tiny", "--system", "baseline",
            "--trace", str(trace),
            "--interval-us", "10000",
            "--report", str(report),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace :" in out
        assert "series:" in out
        assert "report:" in out
        assert trace.exists()
        assert report.exists()
        import json

        manifest = json.loads(report.read_text())
        assert manifest["kind"] == "run_manifest"
        assert manifest["config"]["system"]["name"] == "baseline"
        assert "time_series" in manifest

    def test_run_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            main(["run", "--scale", "tiny", "--system", "warp-drive"])

    def test_run_with_policy(self, capsys, tmp_path):
        report = tmp_path / "run.json"
        code = main([
            "run", "--scale", "tiny", "--workload", "hm_1",
            "--policy", "fcfs", "--report", str(report),
        ])
        assert code == 0
        assert "policy fcfs" in capsys.readouterr().out
        import json

        manifest = json.loads(report.read_text())
        assert manifest["config"]["system"]["policy"] == "fcfs"

    def test_run_rejects_unknown_policy_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scale", "tiny", "--policy", "psychic"])
        message = str(excinfo.value)
        assert "psychic" in message
        for name in ("read-first", "fcfs", "throttled"):
            assert name in message


class TestInspectSubcommand:
    def test_inspect_traced_run(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "--scale", "tiny", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest reads" in out
        assert "read_span" in out
        assert "utilisation" in out

    def test_inspect_last_window(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        assert main(["run", "--scale", "tiny", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace), "--last", "4"]) == 0
        out = capsys.readouterr().out
        assert "last 4 of" in out
        assert "slowest reads" not in out

    def test_inspect_empty_trace(self, capsys, tmp_path):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["inspect", str(trace)]) == 0
        assert "contains no events" in capsys.readouterr().out

    def test_inspect_truncated_final_line_warns(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text('{"kind": "gc", "t_us": 1.0}\n{"kind": "gc"')
        assert main(["inspect", str(trace)]) == 0
        captured = capsys.readouterr()
        assert "dropped truncated final event" in captured.err

    def test_inspect_missing_file(self):
        with pytest.raises(SystemExit, match="not found"):
            main(["inspect", "/nonexistent/t.jsonl"])

    def test_inspect_rejects_bad_last(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        with pytest.raises(SystemExit):
            main(["inspect", str(trace), "--last", "0"])


class TestProfileSubcommand:
    def test_profile_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "trace.json"
        aggregate = tmp_path / "agg.json"
        code = main([
            "profile", "--system", "ida-e20", "--workload", "usr_1",
            "--scale", "tiny", "--out", str(trace),
            "--aggregate", str(aggregate),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "attribution residual" in out
        assert "perfetto" in out.lower()
        exported = json.loads(trace.read_text())
        assert validate_chrome_trace(exported) == []
        profile = json.loads(aggregate.read_text())
        assert profile["requests"]["read"]["count"] > 0
        assert profile["max_residual_us"] <= 1e-6

    def test_profile_summary_only(self, capsys):
        assert main(["profile", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "read " in out
        assert "wait" in out

    def test_profile_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            main(["profile", "--workload", "proj_0"])

    def test_profile_rejects_bad_interval(self):
        with pytest.raises(SystemExit):
            main(["profile", "--interval-us", "-5"])


class TestHealthArtifactCli:
    def test_health_artifact_with_json_and_prom(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "health.json"
        prom_path = tmp_path / "health.prom"
        code = main(
            [
                "health",
                "--scale",
                "tiny",
                "--workloads",
                "hm_1",
                "--json-out",
                str(json_path),
                "--prom",
                str(prom_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SLO breaches" in out
        assert "retry-rate [" in out
        data = json.loads(json_path.read_text())
        assert data["kind"] == "health_artifact"
        assert len(data["cells"]) == 4
        prom = prom_path.read_text()
        assert "# TYPE device_wear_p99_erases gauge" in prom
        assert 'condition="faulted"' in prom

    def test_prom_rejected_for_unsupported_artifact(self):
        with pytest.raises(SystemExit, match="--prom is not supported"):
            main(["faults", "--scale", "tiny", "--prom", "x.prom"])

    def test_prom_rejected_for_all(self):
        with pytest.raises(SystemExit, match="single artifact"):
            main(["all", "--scale", "tiny", "--prom", "x.prom"])


class TestRunHealthFlag:
    def test_run_with_health_prints_summary_and_manifest(self, capsys, tmp_path):
        import json

        report = tmp_path / "run.json"
        code = main(
            [
                "run", "--scale", "tiny", "--health", "--report", str(report),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health:" in out
        assert "slo   :" in out
        manifest = json.loads(report.read_text())
        assert manifest["schema_version"] == manifest["schema"]
        health = manifest["health"]
        assert health["summary"]["samples"] > 0
        assert health["slo"]["objectives"]
        assert health["registry"]["metrics"]

    def test_run_health_pool_matches_inline(self, capsys, tmp_path):
        import json

        inline, pooled = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["run", "--scale", "tiny", "--health",
                     "--report", str(inline)]) == 0
        assert main(["run", "--scale", "tiny", "--health", "--jobs", "2",
                     "--report", str(pooled)]) == 0
        capsys.readouterr()
        a = json.loads(inline.read_text())
        b = json.loads(pooled.read_text())
        assert a["health"] == b["health"]

    def test_run_without_health_omits_key(self, capsys, tmp_path):
        import json

        report = tmp_path / "run.json"
        assert main(["run", "--scale", "tiny", "--report", str(report)]) == 0
        capsys.readouterr()
        manifest = json.loads(report.read_text())
        assert "health" not in manifest
        assert manifest["schema_version"] == manifest["schema"]


class TestInspectJsonFormat:
    def test_inspect_format_json(self, capsys, tmp_path):
        import json

        trace = tmp_path / "t.jsonl"
        assert main(["run", "--scale", "tiny", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace), "--format", "json", "--top", "2"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["read_count"] > 0
        assert len(summary["slowest_reads"]) == 2
        assert "slo_breaches" in summary
        assert summary["event_counts"]["read_span"] == summary["read_count"]

    def test_inspect_json_rejects_last(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        with pytest.raises(SystemExit, match="text-only"):
            main(["inspect", str(trace), "--last", "2", "--format", "json"])
