"""Tests for the CLI front-end (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import ARTIFACTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_every_artifact_has_runner_and_formatter(self):
        for name, (runner, formatter) in ARTIFACTS.items():
            assert callable(runner), name
            assert callable(formatter), name

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            main(["fig8", "--scale", "galactic"])

    def test_runs_one_artifact_quick(self, capsys):
        # Run one cheap artifact end to end through the CLI.
        code = main(["table4", "--scale", "quick", "--workloads", "proj_3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "proj_3" in out
