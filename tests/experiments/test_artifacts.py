"""Smoke tests for every artifact harness at tiny scale.

Each paper artifact's runner must execute end to end and its formatter
must produce a table; shape assertions are kept loose here (the
integration suite asserts the paper-level trends at a larger scale).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    format_ablation,
    format_fig4,
    format_fig8,
    format_fig9,
    format_fig10,
    format_fig11,
    format_qlc,
    format_table3,
    format_table4,
    format_table5,
    run_adjust_cost_ablation,
    run_fig4,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_qlc_extension,
    run_table3,
    run_table4,
    run_table5,
)

WORKLOADS = ["usr_1"]


class TestFig4:
    def test_runs_and_formats(self, quick_scale):
        result = run_fig4(quick_scale, WORKLOADS, include_extra=False)
        assert len(result.main) == 1
        row = result.main[0]
        assert row.lsb_share + row.csb_share + row.msb_share == pytest.approx(1.0)
        assert 0.0 < row.msb_with_invalid_lower < 1.0
        assert "usr_1" in format_fig4(result)


class TestFig8:
    def test_runs_and_formats(self, quick_scale):
        result = run_fig8(quick_scale, WORKLOADS, error_rates=(0.0, 0.5))
        assert set(result.normalized["usr_1"]) == {"ida-e0", "ida-e50"}
        text = format_fig8(result)
        assert "ida-e0" in text and "average" in text

    def test_average_improvement(self, quick_scale):
        result = run_fig8(quick_scale, WORKLOADS, error_rates=(0.2,))
        assert result.average_improvement_pct("ida-e20") == pytest.approx(
            (1 - result.average("ida-e20")) * 100
        )

    def test_average_of_missing_system_is_a_clear_error(self, quick_scale):
        result = run_fig8(quick_scale, WORKLOADS, error_rates=(0.2,))
        with pytest.raises(KeyError, match="ida-e80.*usr_1"):
            result.average("ida-e80")


class TestFig9:
    def test_runs_and_formats(self, quick_scale):
        result = run_fig9(quick_scale, WORKLOADS, dtr_values=(30.0, 70.0))
        assert set(result.normalized["usr_1"]) == {30.0, 70.0}
        assert "dtR=30us" in format_fig9(result)


class TestFig10:
    def test_runs_and_formats(self, quick_scale):
        result = run_fig10(quick_scale, WORKLOADS, queue_depth=8)
        assert result.baseline_mb_s["usr_1"] > 0
        assert result.normalized["usr_1"] > 0
        assert "usr_1" in format_fig10(result)


class TestFig11:
    def test_runs_and_formats(self, quick_scale):
        result = run_fig11(quick_scale, WORKLOADS)
        assert set(result.normalized["usr_1"]) == {"early", "late"}
        assert "early" in format_fig11(result)


class TestTable3:
    def test_runs_and_formats(self, quick_scale):
        result = run_table3(quick_scale, WORKLOADS)
        row = result.rows[0]
        assert row.read_ratio_pct == pytest.approx(row.paper[0], abs=3.0)
        assert "usr_1" in format_table3(result)


class TestTable4:
    def test_runs_and_formats(self, quick_scale):
        result = run_table4(quick_scale, WORKLOADS)
        row = result.rows[0]
        assert row.refreshes > 0
        assert 0 < row.avg_valid_pages <= 192
        # Structural relations: extra reads ~ kept pages; extra writes =
        # E20 of the kept pages.
        assert 0 < row.avg_extra_reads < row.avg_valid_pages
        assert row.avg_extra_writes == pytest.approx(
            row.avg_extra_reads * 0.2, rel=0.35
        )
        assert "usr_1" in format_table4(result)


class TestTable5:
    def test_runs_and_formats(self, quick_scale):
        result = run_table5(quick_scale, WORKLOADS, device="mlc")
        assert "usr_1" in result.improvement_pct
        assert "MLC" in format_table5(result)


class TestQlcExtension:
    def test_runs_and_formats(self, quick_scale):
        result = run_qlc_extension(quick_scale, WORKLOADS, devices=("qlc",))
        assert result.average("qlc") != 0.0
        assert "qlc" in format_qlc(result)


class TestAblation:
    def test_adjust_cost_runs(self, quick_scale):
        result = run_adjust_cost_ablation(quick_scale, WORKLOADS, fractions=(1.0,))
        assert "adjust=1x" in result.improvement_pct
        assert "Ablation" in format_ablation(result)
