"""Device-family end-to-end checks: exact read latencies per page type."""

from __future__ import annotations

import pytest

from repro.experiments.config import RunScale
from repro.experiments.runner import build_simulator
from repro.experiments.systems import baseline
from repro.sim.scheduler import HostRequest


def _single_read_latency(dev_name: str, lpn: int, scale: RunScale) -> float:
    sim = build_simulator(baseline(dev_name), scale, duration_us=1e9)
    planes = sim.geometry.total_planes
    sim.preload(range(planes * sim.geometry.bits_per_cell + 1), -100.0, 0.0)
    metrics = sim.run_requests(
        [HostRequest(0, 0.0, True, (lpn,), sim.geometry.page_size_bytes)]
    )
    return metrics.read_response.mean_us


@pytest.fixture
def scale():
    return RunScale.quick()


class TestMlcLatencies:
    """Sec. V-G MLC device: 65 / 115 us memory access."""

    def test_lsb(self, scale):
        # With P planes, lpns [0, P) land on LSB pages.
        latency = _single_read_latency("mlc", 0, scale)
        assert latency == pytest.approx(65 + 48 + 20 + 5)

    def test_msb(self, scale):
        planes = 8  # quick() topology: 2ch x 2chip x 1die x 2plane
        latency = _single_read_latency("mlc", planes, scale)
        assert latency == pytest.approx(115 + 48 + 20 + 5)


class TestQlcLatencies:
    """Projected QLC device: 1/2/4/8 senses at 60 + 50·level us."""

    @pytest.mark.parametrize(
        "level,expected_sense", [(0, 60.0), (1, 110.0), (2, 160.0), (3, 210.0)]
    )
    def test_all_page_types(self, scale, level, expected_sense):
        planes = 8
        latency = _single_read_latency("qlc", planes * level, scale)
        assert latency == pytest.approx(expected_sense + 48 + 20 + 5)


class TestTlc232Latencies:
    """Vendor-alternate coding: 2/3/2 senses -> 100/150/100 us."""

    @pytest.mark.parametrize("bit,expected_sense", [(0, 100.0), (1, 150.0), (2, 100.0)])
    def test_page_types(self, scale, bit, expected_sense):
        planes = 8
        latency = _single_read_latency("tlc232", planes * bit, scale)
        assert latency == pytest.approx(expected_sense + 48 + 20 + 5)
