"""Tests for system specs (repro.experiments.systems)."""

from __future__ import annotations

from repro.experiments.systems import baseline, error_rate_sweep, ida
from repro.ftl.refresh import RefreshMode


class TestBuilders:
    def test_baseline(self):
        spec = baseline()
        assert spec.name == "baseline"
        assert spec.refresh_mode is RefreshMode.BASELINE
        assert spec.device == "tlc"

    def test_ida_names_follow_error_rate(self):
        assert ida(0.2).name == "ida-e20"
        assert ida(0.0).name == "ida-e0"
        assert ida(0.8).name == "ida-e80"

    def test_error_rate_sweep_matches_fig8(self):
        names = [s.name for s in error_rate_sweep()]
        assert names == ["ida-e0", "ida-e10", "ida-e20", "ida-e40", "ida-e50", "ida-e80"]

    def test_with_modifiers(self):
        spec = ida(0.2).with_dtr(70.0).with_retry(0.4).with_device("mlc")
        assert spec.dtr_us == 70.0
        assert spec.retry_fail_prob == 0.4
        assert spec.device == "mlc"
        assert spec.error_rate == 0.2

    def test_retry_model(self):
        assert baseline().retry_model().fail_prob == 0.0
        assert ida(0.2).with_retry(0.45).retry_model().fail_prob == 0.45
