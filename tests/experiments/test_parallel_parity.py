"""Parallel-vs-sequential parity, pinned against the sequential golden.

The executor's determinism contract is *exact equality*: a pool run must
reproduce the sequential numbers bit-for-bit, not approximately.  Two
pins enforce it:

* pool payloads compared field-by-field against the same
  ``tests/golden/fig8_tiny.json`` snapshots the sequential simulator is
  pinned to — so a parallel run is transitively pinned to the
  pre-pipeline float;
* a full ``run_fig8`` sweep at ``jobs=1`` vs ``jobs=2`` must render
  byte-identical output and carry exactly equal normalised curves.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.config import RunScale
from repro.experiments.fig8_response_time import format_fig8, run_fig8
from repro.experiments.parallel import RunUnit, execute_units
from repro.experiments.systems import baseline, ida
from repro.faults import FaultPlan

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fig8_tiny.json"
TRACES = ("hm_1", "proj_1", "usr_1")
SYSTEMS = {"baseline": baseline(), "ida-e20": ida(0.2)}
SEED = 11


@pytest.fixture(scope="module")
def golden() -> dict:
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def pool_payloads() -> dict:
    """All (trace, system) cells executed once on a 2-worker pool."""
    cells = [
        (trace, name) for trace in TRACES for name in sorted(SYSTEMS)
    ]
    units = [
        RunUnit(SYSTEMS[name], trace, RunScale.tiny(), seed=SEED)
        for trace, name in cells
    ]
    payloads = execute_units(units, jobs=2)
    return dict(zip(cells, payloads))


@pytest.mark.parametrize("trace", TRACES)
@pytest.mark.parametrize("system_name", sorted(SYSTEMS))
def test_pool_payload_matches_golden_exactly(
    golden: dict, pool_payloads: dict, trace: str, system_name: str
) -> None:
    expected = golden[trace][system_name]
    payload = pool_payloads[(trace, system_name)]
    actual = json.loads(
        json.dumps(
            {
                "read": payload.read_response,
                "write": payload.write_response,
                "elapsed_us": payload.elapsed_us,
                "block_erases": payload.counters["block_erases"],
                "refresh_page_moves": payload.counters["refresh_page_moves"],
                "read_retries": payload.counters["read_retries"],
            }
        )
    )
    assert actual == {
        "read": expected["read"],
        "write": expected["write"],
        "elapsed_us": expected["elapsed_us"],
        "block_erases": expected["block_erases"],
        "refresh_page_moves": expected["refresh_page_moves"],
        "read_retries": expected["read_retries"],
    }


def test_fig8_sweep_parity_across_job_counts() -> None:
    kwargs = dict(
        scale=RunScale.tiny(),
        workload_names=["hm_1", "usr_1"],
        error_rates=(0.2,),
        seed=SEED,
    )
    sequential = run_fig8(jobs=1, **kwargs)
    parallel = run_fig8(jobs=2, **kwargs)
    assert parallel.normalized == sequential.normalized
    assert format_fig8(parallel) == format_fig8(sequential)


def test_fault_injection_parity_across_job_counts() -> None:
    """ISSUE 5 acceptance: same seed + same FaultPlan, inline vs --jobs 4,
    yields byte-identical metrics *and* fault-event streams."""
    scale = RunScale.tiny()
    plan = FaultPlan.generate(
        seed=23,
        duration_us=50_000.0,
        total_blocks=scale.blocks_per_plane * scale.channels * 4,
        program_fails=2,
        grown_bad=2,
        uncorrectable_reads=3,
        adjust_interrupts=1,
        max_program_ordinal=scale.num_requests // 2,
        max_read_ordinal=scale.num_requests,
        read_reclaim_threshold=12,
        name="parity",
    )
    units = [
        RunUnit(SYSTEMS[name], trace, scale, seed=SEED, faults=plan)
        for trace in ("hm_1", "usr_1")
        for name in sorted(SYSTEMS)
    ]
    inline = execute_units(units, jobs=1)
    pooled = execute_units(units, jobs=4)
    for seq, par in zip(inline, pooled):
        assert json.dumps(seq.metrics_summary(), sort_keys=True) == json.dumps(
            par.metrics_summary(), sort_keys=True
        )
        assert seq.faults is not None and par.faults is not None
        assert json.dumps(seq.faults, sort_keys=True) == json.dumps(
            par.faults, sort_keys=True
        )
        # The plan actually bit: at least one unit fired something.
    assert any(
        sum(payload.faults["fired"].values()) > 0 for payload in inline
    )
