"""Tests for report formatting and run manifests (repro.experiments.reporting)."""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path


from repro.experiments.reporting import (
    ascii_table,
    build_run_manifest,
    config_hash,
    format_pct,
    jsonable,
    metrics_summary,
    write_run_manifest,
)
from repro.obs import SCHEMA_VERSION
from repro.sim.metrics import SimMetrics


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        # All rows share the same width.
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_title(self):
        assert ascii_table(["h"], [["v"]], title="T").splitlines()[0] == "T"

    def test_empty_rows(self):
        table = ascii_table(["only", "headers"], [])
        assert "only" in table


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.285) == "28.5%"
        assert format_pct(0.285, digits=0) == "28%"
        assert format_pct(1.0) == "100.0%"


class Colour(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Nested:
    colour: Colour
    path: Path


class TestJsonable:
    def test_dataclass_enum_path_tuple(self):
        out = jsonable({"n": Nested(Colour.RED, Path("/tmp/x")), "t": (1, 2)})
        assert out == {"n": {"colour": "red", "path": "/tmp/x"}, "t": [1, 2]}
        json.dumps(out)  # must be serialisable as-is

    def test_scalars_pass_through(self):
        assert jsonable(3.5) == 3.5
        assert jsonable("x") == "x"
        assert jsonable(None) is None


class TestConfigHash:
    def test_stable_across_key_order(self):
        a = {"system": "baseline", "seed": 11}
        b = {"seed": 11, "system": "baseline"}
        assert config_hash(a) == config_hash(b)
        assert len(config_hash(a)) == 16

    def test_diverges_on_any_field(self):
        base = {"system": "baseline", "seed": 11}
        assert config_hash(base) != config_hash({**base, "seed": 12})
        assert config_hash(base) != config_hash({**base, "system": "ida-e20"})


def _metrics() -> SimMetrics:
    metrics = SimMetrics()
    metrics.read_response.add(100.0)
    metrics.read_response.add(200.0)
    metrics.write_response.add(2353.0)
    metrics.read_mix.record(1, (False, True, True), True)
    metrics.bytes_read = 16384
    metrics.bytes_written = 8192
    metrics.end_us = 1000.0
    metrics.gc_invocations = 2
    return metrics


class TestMetricsSummary:
    def test_shape_and_values(self):
        summary = metrics_summary(_metrics())
        assert summary["read_response"]["count"] == 2
        assert summary["read_response"]["mean_us"] == 150.0
        assert summary["read_mix"]["by_type"] == {"1": 1}
        assert summary["read_mix"]["ida_fast_reads"] == 1
        assert summary["counters"]["gc_invocations"] == 2
        json.dumps(summary)


class TestRunManifest:
    def test_minimal_manifest(self):
        manifest = build_run_manifest({"system": "baseline"}, _metrics())
        assert manifest["kind"] == "run_manifest"
        assert manifest["schema"] == SCHEMA_VERSION
        assert manifest["config_hash"] == config_hash({"system": "baseline"})
        assert "utilisation" not in manifest
        assert "time_series" not in manifest

    def test_schema_version_alias_always_present(self):
        # "schema_version" is the externally-documented spelling; it
        # mirrors "schema" so downstream consumers can key on either.
        manifest = build_run_manifest({"system": "baseline"}, _metrics())
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["schema_version"] == manifest["schema"]

    def test_health_section_absent_unless_monitored(self):
        manifest = build_run_manifest({"system": "baseline"}, _metrics())
        assert "health" not in manifest
        monitored = build_run_manifest(
            {"system": "baseline"},
            _metrics(),
            health={"schema": 1, "summary": {"samples": 3}, "series": []},
        )
        assert monitored["health"]["summary"]["samples"] == 3

    def test_optional_sections(self):
        manifest = build_run_manifest(
            {"system": "x"},
            _metrics(),
            utilisation={"die": 0.5, "channel": 0.2},
            queue_wait={"die": {}},
            trace_path=Path("/tmp/t.jsonl"),
            extra={"note": "hello"},
        )
        assert manifest["utilisation"]["die"] == 0.5
        assert manifest["trace_path"] == "/tmp/t.jsonl"
        assert manifest["note"] == "hello"

    def test_time_series_from_collector(self):
        from repro.obs import IntervalCollector
        from repro.sim.engine import SimEngine

        collector = IntervalCollector(100.0)
        engine = SimEngine()
        collector.bind(engine, [], [])
        engine.at(20.0, lambda: collector.record_read(42.0, 4096))
        engine.at(150.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        manifest = build_run_manifest({}, _metrics(), collector=collector)
        series = manifest["time_series"]
        assert series["summary"]["read_latency"]["count"] == 1
        assert len(series["intervals"]) == len(collector.snapshots)

    def test_write_round_trip(self, tmp_path):
        manifest = build_run_manifest({"system": "baseline"}, _metrics())
        path = write_run_manifest(manifest, tmp_path / "sub" / "run.json")
        assert path.exists()
        assert json.loads(path.read_text()) == manifest

    def test_manifest_for_run_end_to_end(self):
        from repro.experiments import RunScale, baseline, manifest_for_run
        from repro.experiments.runner import run_workload
        from repro.workloads import workload

        result = run_workload(
            baseline(), workload("usr_1"), RunScale.tiny(), seed=11
        )
        manifest = manifest_for_run(result)
        assert manifest["config"]["seed"] == 11
        assert manifest["config"]["workload"]["name"] == "usr_1"
        assert manifest["metrics"]["read_response"]["count"] > 0
        assert "utilisation" in manifest
        assert "queue_wait" in manifest
        assert manifest["blocks"]["in_use"] > 0
        json.dumps(manifest)
