"""Tests for report formatting (repro.experiments.reporting)."""

from __future__ import annotations

from repro.experiments.reporting import ascii_table, format_pct


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        # All rows share the same width.
        assert len({len(line.rstrip()) for line in lines[2:]}) <= 2

    def test_title(self):
        assert ascii_table(["h"], [["v"]], title="T").splitlines()[0] == "T"

    def test_empty_rows(self):
        table = ascii_table(["only", "headers"], [])
        assert "only" in table


class TestFormatPct:
    def test_basic(self):
        assert format_pct(0.285) == "28.5%"
        assert format_pct(0.285, digits=0) == "28%"
        assert format_pct(1.0) == "100.0%"
