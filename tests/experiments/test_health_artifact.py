"""Tests for the health artifact (repro.experiments.health_artifact)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import RunScale
from repro.experiments.faults_artifact import plan_for_cell
from repro.experiments.fig11_read_retry import DEFAULT_PHASES
from repro.experiments.health_artifact import (
    format_health,
    health_objectives,
    health_to_json,
    health_to_prometheus,
    run_health,
)
from repro.experiments.reporting import SCHEMA_VERSION, manifest_for_run
from repro.experiments.runner import run_workload
from repro.experiments.systems import ida
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine
from repro.obs.tracer import JsonlSink, Tracer, read_jsonl_trace
from repro.workloads import workload


def health_scale() -> RunScale:
    return RunScale.tiny()


@pytest.fixture(scope="module")
def artifact(request):
    return run_health(scale=health_scale(), workload_names=["hm_1"])


class TestObjectives:
    def test_windowed_to_duration(self):
        retry, p99 = health_objectives(4_000_000.0)
        assert retry.metric == "read_retry_rate"
        assert retry.window_us == 1_000_000.0
        assert p99.metric == "read_p99_us"
        assert p99.window_us == 1_000_000.0


class TestArtifactStructure:
    def test_full_grid_of_cells(self, artifact):
        assert artifact.workloads == ["hm_1"]
        assert len(artifact.cells) == 4
        combos = {(c.system, c.condition) for c in artifact.cells}
        assert combos == {
            ("baseline", "healthy"),
            ("baseline", "faulted"),
            ("ida-e20", "healthy"),
            ("ida-e20", "faulted"),
        }

    def test_cell_lookup(self, artifact):
        cell = artifact.cell("hm_1", "ida-e20", "faulted")
        assert cell.condition == "faulted"
        with pytest.raises(KeyError):
            artifact.cell("hm_1", "ida-e20", "nope")

    def test_every_cell_carries_full_health_payload(self, artifact):
        for cell in artifact.cells:
            assert cell.series, cell
            assert cell.health["registry"]["metrics"]
            assert cell.slo["objectives"]
            assert cell.mean_read_us > 0

    def test_faulted_cells_breach_healthy_cells_do_not(self, artifact):
        # The acceptance scenario: the retry-rate SLO discriminates the
        # late-lifetime faulted device from the healthy one.
        for cell in artifact.cells:
            if cell.condition == "healthy":
                assert cell.breaches == 0, cell
            else:
                assert cell.breaches >= 1, cell

    def test_faulted_cells_record_retries(self, artifact):
        for condition, op in (("healthy", int.__eq__), ("faulted", int.__lt__)):
            for system in ("baseline", "ida-e20"):
                cell = artifact.cell("hm_1", system, condition)
                assert op(0, cell.summary["read_retries"]) or (
                    condition == "healthy"
                    and cell.summary["read_retries"] == 0
                )


class TestExports:
    def test_format_health_renders_table_and_sparklines(self, artifact):
        text = format_health(artifact)
        assert "SLO breaches" in text
        assert "hm_1/ida-e20/faulted" in text
        assert "retry-rate [" in text
        assert "read-p99" in text

    def test_json_export_roundtrips(self, artifact):
        payload = health_to_json(artifact)
        assert payload["kind"] == "health_artifact"
        assert len(payload["cells"]) == 4
        restored = json.loads(json.dumps(payload))
        assert restored == payload

    def test_prometheus_export_labels_every_cell(self, artifact):
        text = health_to_prometheus(artifact)
        assert text.count("# TYPE device_wear_p99_erases gauge") == 1
        for cell in artifact.cells:
            needle = (
                f'condition="{cell.condition}",system="{cell.system}",'
                f'workload="{cell.workload}"'
            )
            assert needle in text, needle


class TestJobsParity:
    def test_health_series_identical_inline_vs_pool(self, artifact):
        pooled = run_health(scale=health_scale(), workload_names=["hm_1"], jobs=4)
        assert json.dumps(health_to_json(pooled), sort_keys=True) == json.dumps(
            health_to_json(artifact), sort_keys=True
        )


class TestEndToEndBreach:
    def test_breach_reaches_tracer_and_manifest(self, tmp_path):
        # One faulted IDA run with everything attached: the SLO breach
        # must appear in the registry-backed payload, in the trace as an
        # ``slo_breach`` event, and in the run manifest.
        scale = health_scale()
        name = "hm_1"
        spec = workload(name).scaled(scale.num_requests, scale.footprint_pages)
        late = DEFAULT_PHASES[1]
        plan = plan_for_cell(name, 1, 4, scale, 11)
        monitor = HealthMonitor(
            registry=MetricsRegistry(),
            slo=SloEngine(health_objectives(spec.duration_us)),
        )
        trace_path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(trace_path))
        result = run_workload(
            ida(0.2).with_retry(late.retry_fail_prob),
            workload(name),
            scale,
            tracer=tracer,
            faults=plan,
            health=monitor,
        )
        tracer.close()

        assert monitor.slo.breach_count >= 1
        events = [
            e for e in read_jsonl_trace(trace_path) if e["kind"] == "slo_breach"
        ]
        assert len(events) == monitor.slo.breach_count
        assert events[0]["objective"] in ("read-retry-rate", "read-p99")

        manifest = manifest_for_run(result, trace_path=trace_path)
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["health"]["slo"]["breaches"] == monitor.slo.breach_count
        assert manifest["health"]["summary"]["read_retries"] > 0
        json.dumps(manifest)
