"""Property-based tests: FaultPlan JSON serialisation is lossless.

A plan written by one process (the sweep driver, a CI job, a human) and
read by another must describe the *same* failures — every kind, every
trigger domain (timed, op-ordinal, and power_cut which can use either),
every optional field.  Hypothesis generates arbitrary valid plans and
checks ``from_dict(json(to_dict(plan))) == plan`` exactly.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.plan import PLAN_SCHEMA, FaultEvent, FaultKind, FaultPlan

_ordinals = st.integers(min_value=1, max_value=100_000)
_times = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)

_op_coupled = st.tuples(
    st.sampled_from(
        [
            FaultKind.PROGRAM_FAIL,
            FaultKind.ERASE_FAIL,
            FaultKind.UNCORRECTABLE_READ,
            FaultKind.ADJUST_INTERRUPT,
        ]
    ),
    _ordinals,
).map(lambda t: FaultEvent(kind=t[0], op_ordinal=t[1]))

_grown_bad = st.tuples(_times, st.integers(0, 350_207)).map(
    lambda t: FaultEvent(kind=FaultKind.GROWN_BAD, at_us=t[0], block=t[1])
)

_die_fail = st.tuples(_times, st.integers(0, 63)).map(
    lambda t: FaultEvent(kind=FaultKind.DIE_FAIL, at_us=t[0], die=t[1])
)

# power_cut is the one kind living in both trigger domains.
_power_cut = st.one_of(
    _times.map(lambda t: FaultEvent(kind=FaultKind.POWER_CUT, at_us=t)),
    _ordinals.map(lambda o: FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=o)),
)

_events = st.one_of(_op_coupled, _grown_bad, _die_fail, _power_cut)


@st.composite
def _plans(draw) -> FaultPlan:
    raw = draw(st.lists(_events, max_size=12))
    # FaultPlan rejects duplicate (kind, op_ordinal) pairs by design;
    # keep the first occurrence so every drawn plan is constructible.
    events, seen = [], set()
    for event in raw:
        key = (event.kind, event.op_ordinal)
        if event.op_ordinal is not None and key in seen:
            continue
        seen.add(key)
        events.append(event)
    return FaultPlan(
        events=tuple(events),
        name=draw(st.text(max_size=24)),
        seed=draw(st.none() | st.integers(0, 2**31 - 1)),
        read_reclaim_threshold=draw(st.none() | st.integers(1, 10_000)),
    )


@settings(max_examples=80, deadline=None)
@given(plan=_plans())
def test_json_round_trip_is_lossless(plan):
    wire = json.dumps(plan.to_dict())
    assert FaultPlan.from_dict(json.loads(wire)) == plan


@settings(max_examples=80, deadline=None)
@given(plan=_plans())
def test_serialised_form_is_tagged_and_versioned(plan):
    data = plan.to_dict()
    assert data["kind"] == "fault_plan"
    assert data["schema"] == PLAN_SCHEMA
    assert len(data["events"]) == len(plan.events)


@settings(max_examples=40, deadline=None)
@given(
    plan=_plans(),
    schema=st.one_of(
        st.integers().filter(lambda s: s != PLAN_SCHEMA),
        st.text(max_size=8),
    ),
)
def test_foreign_schema_versions_are_rejected(plan, schema):
    data = plan.to_dict()
    data["schema"] = schema
    with pytest.raises(ValueError, match="schema"):
        FaultPlan.from_dict(data)


@settings(max_examples=60, deadline=None)
@given(event=_events)
def test_event_dicts_only_carry_set_fields(event):
    data = event.to_dict()
    assert set(data) <= {"kind", "at_us", "op_ordinal", "block", "die"}
    for name in ("at_us", "op_ordinal", "block", "die"):
        assert (name in data) == (getattr(event, name) is not None)
    assert FaultEvent.from_dict(json.loads(json.dumps(data))) == event
